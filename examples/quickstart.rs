//! Quickstart: build a small semistructured database, query it, browse
//! it, and restructure it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use semistructured::{Database, Pred};

fn main() -> Result<(), String> {
    // 1. Data is self-describing: no schema needed up front. The literal
    //    syntax is the paper's nested-set notation; `@x = ...` introduces
    //    sharing and cycles.
    let db = Database::from_literal(
        r#"{
            Entry: {Movie: {Title: "Casablanca",
                            Year: 1942,
                            Cast: {Actors: "Bogart", Actors: "Bacall"},
                            Director: "Curtiz"}},
            Entry: {Movie: {Title: "Play it again, Sam",
                            Year: 1972,
                            Cast: {Credit: {Actors: "Allen"}},
                            Director: "Ross"}}
        }"#,
    )?;
    println!("database: {}", db.stats());

    // 2. Query with path expressions; variables tie paths together.
    let r = db.query(
        r#"select {Pair: {Title: T, Director: D}}
           from db.Entry.Movie M, M.Title T, M.Director D
           where exists M.Cast"#,
    )?;
    println!("\ntitles and directors:\n{}", r.to_literal());

    // 3. Regular path expressions cope with heterogeneous structure: both
    //    cast representations in one query.
    let actors = db.query("select A from db.Entry.Movie.Cast.(Actors | Credit.Actors) A")?;
    println!("\nall actors:\n{}", actors.to_literal());

    // 4. Browse without knowing the schema (§1.3).
    let hits = db.find_string("Casablanca");
    println!("\n\"Casablanca\" found at {} place(s)", hits.len());
    for h in &hits {
        let path: Vec<String> = h
            .path
            .iter()
            .map(|l| l.display(db.graph().symbols()).to_string())
            .collect();
        println!("  via path {}", path.join("."));
    }

    // 5. Deep restructuring: flatten the Credit wrapper so both movies
    //    share one cast shape.
    let flat = db.collapse_edges(Pred::Symbol("Credit".into()));
    println!("\nafter collapsing Credit:\n{}", flat.to_literal());

    // 6. Discover structure (§5): extract a schema and verify conformance.
    let schema = db.extract_schema();
    println!("\nextracted {}", schema);
    assert!(db.conforms_to(&schema));
    // The flattened DB has a different shape, so it may or may not conform.
    println!("flattened conforms: {}", flat.conforms_to(&schema));
    Ok(())
}
