//! Data exchange (§1.2): OEM as the interchange substrate, and encoding
//! relational / object-oriented databases into the model.
//!
//! ```sh
//! cargo run --example exchange
//! ```

use semistructured::graph::bisim::graphs_bisimilar;
use semistructured::graph::encode::object::{AttrValue, ObjDb};
use semistructured::graph::encode::relational::{decode_relation, encode_style10, encode_style5};
use semistructured::graph::oem::OemDb;
use semistructured::{Database, Graph, Value};
use ssd_data::relational::orders_and_customers;

fn main() -> Result<(), String> {
    // --- Relational -> semistructured (both codings of §2) --------------
    let (orders, customers) = orders_and_customers(20, 5, 1);
    let mut g10 = Graph::new();
    encode_style10(&mut g10, &[orders.clone(), customers.clone()]);
    let mut g5 = Graph::new();
    encode_style5(&mut g5, std::slice::from_ref(&orders));
    println!(
        "style-[10] encoding: {} edges; style-[5]: {} edges",
        g10.edge_count(),
        g5.edge_count()
    );
    let back =
        decode_relation(&g10, "orders", &["id", "customer", "total"]).map_err(|e| e.to_string())?;
    assert_eq!(back.row_set(), orders.row_set());
    println!("relational round-trip: OK ({} orders)", back.rows.len());

    // Query the encoded relations through the semistructured language —
    // a join phrased as select-from-where:
    let db = Database::new(g10);
    let r = db.query(
        r#"select {pair: {who: C, total: T}}
           from db.orders.tup O, O.customer C, O.total T, db.customers.tup U, U.name N
           where C = N and T > 50000"#,
    )?;
    println!(
        "orders over 50000 joined to known customers: {}",
        r.graph().successors_by_name(r.graph().root(), "pair").len()
    );

    // --- Object-oriented -> semistructured (identity!) -------------------
    let mut odb = ObjDb::new();
    let movie = odb.add_object(
        "Movie",
        vec![("title", AttrValue::Base(Value::from("Casablanca")))],
    );
    let actor = odb.add_object(
        "Actor",
        vec![("name", AttrValue::Base(Value::from("Bogart")))],
    );
    odb.set_attr(movie, "cast", AttrValue::RefSet(vec![actor]))
        .map_err(|e| e.to_string())?;
    odb.set_attr(actor, "appears_in", AttrValue::Ref(movie))
        .map_err(|e| e.to_string())?;
    odb.add_extent("movies", vec![movie]);
    let og = odb.to_graph().map_err(|e| e.to_string())?;
    println!(
        "OO encoding: cyclic = {} (object identity preserved as node identity)",
        og.has_cycle()
    );

    // --- OEM round trip ---------------------------------------------------
    // OEM labels are strings, so integer array labels coarsen to their
    // string form; round-trips are exact for string-labeled data. Build a
    // reference-only view (cast as a single Ref) to demonstrate.
    let mut odb2 = ObjDb::new();
    let m2 = odb2.add_object(
        "Movie",
        vec![("title", AttrValue::Base(Value::from("Casablanca")))],
    );
    let a2 = odb2.add_object(
        "Actor",
        vec![("name", AttrValue::Base(Value::from("Bogart")))],
    );
    odb2.set_attr(m2, "star", AttrValue::Ref(a2))
        .map_err(|e| e.to_string())?;
    odb2.set_attr(a2, "appears_in", AttrValue::Ref(m2))
        .map_err(|e| e.to_string())?;
    odb2.add_extent("movies", vec![m2]);
    let og2 = odb2.to_graph().map_err(|e| e.to_string())?;
    let oem = OemDb::from_graph(&og2);
    let back = oem.to_graph().map_err(|e| e.to_string())?;
    println!(
        "OEM round-trip bisimilar (cyclic, reference-only DB): {}",
        graphs_bisimilar(&og2, &back)
    );

    // --- Cross-database union (the edge-labeled model's party trick) ------
    let other = Database::from_literal(r#"{archive: {format: "OEM", items: 2}}"#)?;
    let merged = semistructured::graph::ops::graph_union(&og, other.graph());
    println!(
        "union of the two databases has {} root edges",
        merged.out_degree(merged.root())
    );
    Ok(())
}
