//! Figure 1 of the paper, reproduced exactly, with the tutorial's own
//! queries run against it:
//!
//! * the three §1.3 browsing queries;
//! * the §3 "did Allen act in Casablanca?" regular-path-expression query
//!   (with the (!Movie)* constraint);
//! * the §3 restructuring query that "corrects the egregious error in the
//!   'Bacall' edge label";
//! * the §5 schema conformance check.
//!
//! ```sh
//! cargo run --example movies
//! ```

use semistructured::query::restructure;
use semistructured::{Database, Pred, Value};

fn main() -> Result<(), String> {
    let db = Database::new(semistructured::data::movies::figure1());
    println!("Figure 1: {}", db.stats());
    println!("{}\n", db.to_literal());

    // --- §1.3 browsing -------------------------------------------------
    println!("Q1: where is the string \"Casablanca\"?");
    for h in db.find_string("Casablanca") {
        let path: Vec<String> = h
            .path
            .iter()
            .map(|l| l.display(db.graph().symbols()).to_string())
            .collect();
        println!("  at root.{}", path.join("."));
    }

    println!("\nQ2: integers greater than 2^16?");
    let big = db.ints_greater(1 << 16);
    println!(
        "  {} found (the ints in Figure 1 are guest indices)",
        big.len()
    );
    println!("  reals, though: BoxOffice = 1.2E6 is present");

    println!("\nQ3: attribute names starting with \"Act\"?");
    for h in db.attrs_with_prefix("Act") {
        println!(
            "  edge {} at node {}",
            h.label.display(db.graph().symbols()),
            h.from
        );
    }

    // --- §3: Allen in Casablanca? ---------------------------------------
    // "one would not want this path to contain another Movie edge".
    let q = r#"select T from db.Entry.Movie M, M.Title T, M.(!Movie)*."Allen" A"#;
    let r = db.query(q)?;
    println!("\nmovies containing \"Allen\" below them (no Movie edge crossed):");
    println!("{}", r.to_literal());

    // --- §3: fix the egregious Bacall error ------------------------------
    // Figure 1 labels Bacall's actor edge with the other movie's title.
    let fixed = Database::new(restructure::relabel_edges_to_value(
        db.graph(),
        Pred::ValueEq(Value::Str("Play it again, Sam".into())),
        "Bacall",
    ));
    // Note this relabels ALL such value edges, including the legitimate
    // title — the paper's point is that the *query language* can express
    // the repair; a real repair would add a path condition:
    let surgical = db.query(
        r#"select {Fixed: C} from db.Entry.Movie M, M.Title T, M.Cast C where T = "Casablanca""#,
    )?;
    println!(
        "\ncast of Casablanca before repair:\n{}",
        surgical.to_literal()
    );
    println!(
        "\nafter global relabel, \"Bacall\" occurs {} time(s)",
        fixed.find_string("Bacall").len()
    );

    // --- §5: schema -------------------------------------------------------
    let schema = semistructured::schema::figure1_schema();
    println!("\nconforms to the hand-written Figure-1 schema: (loose!)");
    println!("  {}", db.conforms_to(&schema));
    let extracted = db.extract_schema();
    println!(
        "extracted schema has {} nodes; data conforms: {}",
        extracted.node_count(),
        db.conforms_to(&extracted)
    );

    // --- DataGuide --------------------------------------------------------
    let guide = db.dataguide();
    println!(
        "\nDataGuide: {} states summarising {} nodes",
        guide.node_count(),
        db.stats().nodes
    );
    Ok(())
}
