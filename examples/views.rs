//! Views, the rewrite language, and JSON exchange working together.
//!
//! ```sh
//! cargo run --example views
//! ```

use semistructured::query::views::ViewCatalog;
use semistructured::Database;

fn main() -> Result<(), String> {
    // Ingest JSON (the modern face of §1.2's data exchange).
    let db = Database::from_json(
        r#"{
          "catalog": [
            {"title": "Casablanca",        "year": 1942, "cast": ["Bogart", "Bacall"]},
            {"title": "Play it again, Sam","year": 1972, "cast": ["Allen", "Keaton"]},
            {"title": "Annie Hall",        "year": 1977, "cast": ["Allen", "Keaton"]}
          ]
        }"#,
    )?;
    println!("imported: {}", db.stats());

    // Rewrite: rename `cast` to `performers` everywhere (deep relabel in
    // the surface transformation language).
    let shaped = db.rewrite(
        r#"rewrite
             case cast  => { performers: recur }
             otherwise  => { _: recur }"#,
    )?;
    println!("\nafter relabeling:\n{}", shaped.to_literal());

    // Define views; the second composes with the first through an
    // ordinary path. JSON array slots carry integer labels, so `%`
    // wildcards step over them.
    let mut catalog = ViewCatalog::new();
    catalog
        .define(
            "seventies",
            r#"select {movie: M} from db.catalog.% M, M.year Y where Y >= 1970"#,
        )
        .map_err(|e| e.to_string())?;
    catalog
        .define(
            "allen_films",
            r#"select {title: T} from db.seventies.movie M, M.title T,
                      M.performers.%."Allen" A"#,
        )
        .map_err(|e| e.to_string())?;
    let extended = catalog
        .materialize(shaped.graph())
        .map_err(|e| e.to_string())?;
    let ext_db = Database::new(extended);

    let r = ext_db.query("select T from db.allen_films.title T")?;
    println!("\nAllen films of the seventies:\n{}", r.to_literal());

    // Export a view back to JSON for the next system in the pipeline.
    let export = ext_db.query(r#"select {film: T} from db.allen_films.title T"#)?;
    let json = Database::new(export.graph().clone())
        .to_json()
        .map_err(|e| e.to_string())?;
    println!("\nas JSON: {json}");
    Ok(())
}
