//! ACeDB-style ragged biology trees (§1.1): arbitrary depth, loose
//! structure, schema discovery.
//!
//! ```sh
//! cargo run --example biology
//! ```

use semistructured::Database;
use ssd_data::acedb::{acedb, max_depth, AcedbConfig};

fn main() -> Result<(), String> {
    let g = acedb(&AcedbConfig {
        objects: 100,
        max_depth: 12,
        branching: 3,
        seed: 11,
    });
    let depth = max_depth(&g);
    let db = Database::new(g);
    println!("ACeDB-like database: {}, max depth {depth}", db.stats());

    // "Trees of arbitrary depth ... cannot be queried using conventional
    // techniques" — but a regular path expression reaches any depth:
    let deep_refs = db.query("select R from db.Gene.%*.Reference R")?;
    println!(
        "Reference sections at ANY depth: {}",
        deep_refs.graph().out_degree(deep_refs.graph().root())
    );

    // Loose structure: which genes have sequences with homologies?
    let r = db.query("select {Name: N} from db.Gene G, G.Name N, G.%*.Homology H")?;
    println!(
        "genes with a Homology somewhere below: {}",
        r.graph().successors_by_name(r.graph().root(), "Name").len()
    );

    // Discover the schema (§5) and check how loose it is.
    let schema = db.extract_schema();
    println!(
        "extracted schema: {} nodes / {} predicate edges (data graph: {} nodes)",
        schema.node_count(),
        schema.edge_count(),
        db.stats().nodes
    );
    assert!(db.conforms_to(&schema));

    // The DataGuide summarises every label path in the data.
    let guide = db.dataguide();
    println!(
        "DataGuide: {} states; every path of length <= 3: {} distinct paths",
        guide.node_count(),
        guide.paths_up_to(3).len()
    );

    // Type predicates (§2 self-describing data): find integer annotations.
    let ints = db.ints_greater(90_000);
    println!("integer annotations > 90000: {}", ints.len());
    Ok(())
}
