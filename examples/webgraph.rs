//! Querying a web-like graph (§1.1's motivating example) with graph
//! datalog and parallel decomposition.
//!
//! ```sh
//! cargo run --example webgraph
//! ```

use semistructured::query::decompose::{eval_decomposed, Partition};
use semistructured::query::{eval_rpe, Rpe, Step};
use semistructured::Database;
use ssd_data::webgraph::{web_graph, WebGraphConfig};

fn main() -> Result<(), String> {
    let g = web_graph(&WebGraphConfig {
        pages: 500,
        mean_links: 5,
        skew: 0.8,
        seed: 7,
    });
    let db = Database::new(g);
    println!("web graph: {}", db.stats());

    // Pages reachable from page 0 through links only — a recursive query,
    // i.e. "graph datalog" (§3).
    let eval = db.datalog(
        r#"start(P) :- edge(_R, page, P), edge(P, title, T), edge(T, "Page 0", _L).
           reach(P) :- start(P).
           reach(Q) :- reach(P), edge(P, link, Q).
           hub(P)   :- reach(P), edge(_X, link, P), edge(_Y, link, P)."#,
    )?;
    println!(
        "pages link-reachable from \"Page 0\": {} (of 500); {} iterations",
        eval.count("reach"),
        eval.iterations
    );

    // The same reachability as a regular path expression.
    let rpe = Rpe::seq(vec![Rpe::symbol("page"), Rpe::symbol("link").star()]);
    let hits = eval_rpe(db.graph(), db.graph().root(), &rpe);
    println!("pages reachable via page.link*: {}", hits.len());

    // Parallel decomposition (§4, [35]): partition into sites, evaluate
    // per-site summaries in parallel, combine.
    for k in [1, 2, 4, 8] {
        let part = Partition::hash(db.graph(), k);
        let par = eval_decomposed(db.graph(), &rpe, &part);
        assert_eq!(par.len(), hits.len());
        println!(
            "decomposed over {k} site(s): same {} results, {} cross edges",
            par.len(),
            part.cross_edges(db.graph())
        );
    }

    // Text search over the whole graph without a schema.
    let deep = Rpe::seq(vec![
        Rpe::step(Step::wildcard()).star(),
        Rpe::step(Step::value("Page 42")),
    ]);
    let found = eval_rpe(db.graph(), db.graph().root(), &deep);
    println!("\"Page 42\" occurrences: {}", found.len());
    Ok(())
}
