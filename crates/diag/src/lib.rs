//! # ssd-diag — shared diagnostics core
//!
//! One `Diagnostic` type used by every front end in the stack (the
//! select-query language, regular path expressions, and graph datalog), so
//! static analysis reports look the same everywhere: a stable `SSD0xx`
//! code, a severity, a message, an optional byte span into the source the
//! user actually typed, and an optional suggestion.
//!
//! Rendering follows the rustc layout:
//!
//! ```text
//! error[SSD001]: unbound variable `X`
//!   --> query:1:8
//!    |
//!  1 | select X from db.Entry E
//!    |        ^
//!    = help: bind `X` in a from-clause, e.g. `db.path X`
//! ```

use std::fmt;

/// Half-open byte range into the analysed source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Single-position span (caret on one byte).
    pub fn at(pos: usize) -> Span {
        Span::new(pos, pos + 1)
    }

    /// The smallest span covering both.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    pub fn len(self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

/// How bad a finding is. `Error` refuses evaluation; `Warning` lets it run
/// (unless `--deny-warnings`); `Note` is informational only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. The numeric bands group by front end:
/// `SSD00x` variable analysis, `SSD01x` schema-aware path typing,
/// `SSD02x` datalog, `SSD03x` static cost analysis, `SSD05x` the
/// columnar triple index and its batched access-path planner (see
/// `ssd-index`); the `SSD1xx` band is
/// *runtime* governance (budget exhaustion, cancellation, panic isolation
/// — see `ssd-guard`); the `SSD2xx` band is the query-serving scheduler
/// (session quotas, admission, queueing, wire protocol — see
/// `ssd-serve`); the `SSD4xx` band is the durable storage layer (WAL
/// recovery, torn-tail truncation, read-only rejection — see
/// `ssd-store`); the `SSD9xx` band is the workspace invariant checker
/// over our *own* Rust sources (`ssd lint` — see `ssd-lint` and
/// docs/LINTS.md). Codes are append-only; never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Variable referenced but bound by no from-clause binding.
    UnboundVariable,
    /// Variable used as a binding source before the binding that defines it.
    UseBeforeBind,
    /// Same variable bound by two bindings (shadowing is not allowed).
    DuplicateBinding,
    /// Binding variable never used in select head, where clause, or a
    /// later from-clause source.
    UnusedBinding,
    /// Label variable in an illegal path position (under `|`, `*`, `+`,
    /// `?`, or not the final step).
    LabelVarMisuse,
    /// Schema certifies the binding's path matches nothing: the query part
    /// is provably empty before touching data.
    EmptyPath,
    /// Datalog rule violates range restriction (unsafe variable).
    DatalogUnsafe,
    /// Predicate used with conflicting arities.
    DatalogArityMismatch,
    /// Program has recursion through negation (not stratifiable).
    DatalogNotStratifiable,
    /// Body predicate that no rule defines and no EDB relation provides.
    DatalogUndefinedPredicate,
    /// Rule head unreachable from the program's result predicate.
    DatalogUnreachableRule,
    /// Wildcard `_` in a rule head derives nothing meaningful.
    DatalogHeadWildcard,
    /// Variable occurring exactly once in a rule (likely a typo).
    DatalogSingletonVariable,
    /// Static cost analysis proves the query exceeds its budget: even the
    /// *lower* bound of the fuel or memory envelope is above the limit.
    CostExceedsBudget,
    /// Static cost analysis cannot bound the query: Kleene star over a
    /// cyclic schema region, or a recursive datalog stratum.
    UnboundedCost,
    /// Two from-clause bindings share no variable: the enumeration is a
    /// cross product.
    CrossProductJoin,
    /// The cost estimate was widened (imprecise); carries the reason.
    ImpreciseEstimate,
    /// Strict admission rejected the query before evaluation started, so
    /// `--partial` (a run-time degradation mode) was never consulted.
    AdmissionOverridesPartial,
    /// The batched index executor declined the query (unsupported path
    /// shape, or statistics say the interpreter wins) and evaluation
    /// fell back to the one-binding-at-a-time interpreter.
    IndexFallback,
    /// The dictionary encoder ran out of dense u32 ids while interning
    /// labels — the graph has more distinct labels than the index can
    /// address.
    DictionaryOverflow,
    /// A workload-harness scenario produced an unexpected error while
    /// replaying against the server (`ssd bench`): the op failed for a
    /// reason the scenario does not anticipate (cancellation of a
    /// `cancel` op is expected; SSD101 on a read is not).
    WorkloadScenarioFailed,
    /// The benchmark regression checker found a fresh `ssd bench` run
    /// worse than the committed baseline beyond the configured
    /// tolerance (p99 latency or throughput per scenario).
    PerfRegression,
    /// The committed benchmark baseline could not be compared: the file
    /// is malformed, has a different schema version, or was recorded at
    /// a different scale/scenario than the fresh run.
    BaselineMismatch,
    /// Evaluation ran out of its deterministic step (fuel) budget.
    StepLimitExceeded,
    /// Evaluation exceeded its byte-accounted memory budget.
    MemoryLimitExceeded,
    /// Evaluation exceeded its wall-clock deadline.
    DeadlineExceeded,
    /// Evaluation exceeded its recursion / derivation depth limit.
    DepthLimitExceeded,
    /// Evaluation was cancelled via a cooperative cancellation token.
    Cancelled,
    /// A deterministic fault-injection point fired (testing only).
    FaultInjected,
    /// Partial-results mode stopped early; the result is truncated.
    TruncatedResult,
    /// Recursive-descent parser hit its nesting depth limit.
    ParseDepthExceeded,
    /// An engine bug (panic) was caught at the CLI isolation boundary.
    EnginePanic,
    /// The session's remaining quota cannot cover the job (ssd-serve).
    SessionQuotaExhausted,
    /// The server's run queue is full — backpressure rejection.
    QueueFull,
    /// The job was admitted but is waiting in the run queue.
    JobQueued,
    /// The job was submitted while the server is shutting down.
    ServerShuttingDown,
    /// A job id named by `CANCEL` (or awaited) is not known.
    UnknownJob,
    /// A malformed wire-protocol frame or command.
    ProtocolError,
    /// A budget refund exceeded its outstanding split grant and was
    /// clamped — a scheduler bookkeeping bug worth surfacing.
    RefundExceedsGrant,
    /// WAL recovery found an unterminated or unverifiable tail (a torn
    /// or short write from a crash) and truncated it back to the last
    /// committed transaction boundary.
    WalTornTail,
    /// A WAL frame's CRC32 did not match its payload: on-disk
    /// corruption. Recovery keeps the intact committed prefix and
    /// discards everything from the corrupt frame on.
    WalChecksumMismatch,
    /// Recovery replayed the committed transactions of the WAL; carries
    /// how many were reapplied on top of the base snapshot.
    RecoveryReplayed,
    /// A mutation was rejected because the store is read-only: the
    /// server was started without a data directory, or a prior I/O
    /// failure poisoned the write path.
    ReadOnlyStore,
    /// `ssd lint` L1: the SSD code registry, the docs tables, and the
    /// test suite disagree (undefined, undocumented, duplicated,
    /// untested, or non-contiguous codes).
    RegistryDrift,
    /// `ssd lint` L2: an evaluator entry point has no governed
    /// `*_with`/`*_guarded` variant, or guarded code calls an
    /// ungoverned sibling, bypassing the `Guard`.
    GuardBypass,
    /// `ssd lint` L3: a non-test `unwrap`/`expect`/`panic!`/
    /// `unreachable!` site beyond the crate's audited budget and
    /// without an `// lint: allow(panic)` annotation.
    PanicSite,
    /// `ssd lint` L4: a `.lock()` acquisition out of declared hierarchy
    /// order, an undeclared lock, or a blocking call (`join`/`recv`/
    /// `send`) made while a lock is held.
    LockOrderViolation,
    /// `ssd lint` L5: a tracer span that can leak or close early — an
    /// `open_detached` with no `close_detached` in the same function,
    /// or a span value discarded at the open site.
    SpanLeak,
    /// `ssd lint` L6: an interprocedural lock-order inversion — a
    /// function holds a lock across a call whose transitive callees
    /// acquire an equal or outer rank of `LOCK_ORDER`.
    InterprocLockInversion,
    /// `ssd lint` L7: a blocking operation (channel send/recv, thread
    /// join, fsync, WAL append) is reachable through a call made while
    /// a lock is held.
    BlockingUnderLock,
    /// `ssd lint` L8: a cross-thread atomic is accessed with
    /// `Ordering::Relaxed` without a declared reason (or mixes Relaxed
    /// with stronger orderings on the same flag).
    AtomicOrderingUndeclared,
    /// `ssd lint` L9: a path publishes a new store generation without
    /// being dominated by a WAL append + fsync — apply-before-log
    /// breaks the commit protocol.
    PublishBeforeLog,
    /// `ssd lint` L10: a raw I/O call in the store that no registered
    /// `wal.*` fault point reaches, so the crash matrix cannot
    /// exercise its failure path.
    FaultCoverageGap,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnboundVariable => "SSD001",
            Code::UseBeforeBind => "SSD002",
            Code::DuplicateBinding => "SSD003",
            Code::UnusedBinding => "SSD004",
            Code::LabelVarMisuse => "SSD005",
            Code::EmptyPath => "SSD010",
            Code::DatalogUnsafe => "SSD020",
            Code::DatalogArityMismatch => "SSD021",
            Code::DatalogNotStratifiable => "SSD022",
            Code::DatalogUndefinedPredicate => "SSD023",
            Code::DatalogUnreachableRule => "SSD024",
            Code::DatalogHeadWildcard => "SSD025",
            Code::DatalogSingletonVariable => "SSD026",
            Code::CostExceedsBudget => "SSD030",
            Code::UnboundedCost => "SSD031",
            Code::CrossProductJoin => "SSD032",
            Code::ImpreciseEstimate => "SSD033",
            Code::AdmissionOverridesPartial => "SSD034",
            Code::IndexFallback => "SSD050",
            Code::DictionaryOverflow => "SSD051",
            Code::WorkloadScenarioFailed => "SSD060",
            Code::PerfRegression => "SSD061",
            Code::BaselineMismatch => "SSD062",
            Code::StepLimitExceeded => "SSD101",
            Code::MemoryLimitExceeded => "SSD102",
            Code::DeadlineExceeded => "SSD103",
            Code::DepthLimitExceeded => "SSD104",
            Code::Cancelled => "SSD105",
            Code::FaultInjected => "SSD106",
            Code::TruncatedResult => "SSD107",
            Code::ParseDepthExceeded => "SSD110",
            Code::EnginePanic => "SSD111",
            Code::SessionQuotaExhausted => "SSD200",
            Code::QueueFull => "SSD201",
            Code::JobQueued => "SSD202",
            Code::ServerShuttingDown => "SSD203",
            Code::UnknownJob => "SSD204",
            Code::ProtocolError => "SSD210",
            Code::RefundExceedsGrant => "SSD211",
            Code::WalTornTail => "SSD400",
            Code::WalChecksumMismatch => "SSD401",
            Code::RecoveryReplayed => "SSD402",
            Code::ReadOnlyStore => "SSD403",
            Code::RegistryDrift => "SSD901",
            Code::GuardBypass => "SSD902",
            Code::PanicSite => "SSD903",
            Code::LockOrderViolation => "SSD904",
            Code::SpanLeak => "SSD905",
            Code::InterprocLockInversion => "SSD910",
            Code::BlockingUnderLock => "SSD911",
            Code::AtomicOrderingUndeclared => "SSD912",
            Code::PublishBeforeLog => "SSD913",
            Code::FaultCoverageGap => "SSD914",
        }
    }

    /// Default severity; individual diagnostics may not override this —
    /// one code, one severity, so `--deny-warnings` is predictable.
    pub fn severity(self) -> Severity {
        match self {
            Code::UnboundVariable
            | Code::UseBeforeBind
            | Code::DuplicateBinding
            | Code::LabelVarMisuse
            | Code::DatalogUnsafe
            | Code::DatalogArityMismatch
            | Code::DatalogNotStratifiable
            | Code::DatalogHeadWildcard
            | Code::StepLimitExceeded
            | Code::MemoryLimitExceeded
            | Code::DeadlineExceeded
            | Code::DepthLimitExceeded
            | Code::Cancelled
            | Code::FaultInjected
            | Code::ParseDepthExceeded
            | Code::EnginePanic
            | Code::SessionQuotaExhausted
            | Code::QueueFull
            | Code::ServerShuttingDown
            | Code::UnknownJob
            | Code::ProtocolError
            | Code::WalChecksumMismatch
            | Code::ReadOnlyStore
            | Code::RegistryDrift
            | Code::GuardBypass
            | Code::LockOrderViolation
            | Code::SpanLeak
            | Code::InterprocLockInversion
            | Code::BlockingUnderLock
            | Code::AtomicOrderingUndeclared
            | Code::PublishBeforeLog
            | Code::FaultCoverageGap
            | Code::DictionaryOverflow
            | Code::WorkloadScenarioFailed
            | Code::PerfRegression
            | Code::CostExceedsBudget => Severity::Error,
            Code::UnusedBinding
            | Code::EmptyPath
            | Code::DatalogUndefinedPredicate
            | Code::DatalogUnreachableRule
            | Code::DatalogSingletonVariable
            | Code::UnboundedCost
            | Code::CrossProductJoin
            | Code::RefundExceedsGrant
            | Code::PanicSite
            | Code::WalTornTail
            | Code::BaselineMismatch
            | Code::TruncatedResult => Severity::Warning,
            Code::ImpreciseEstimate
            | Code::AdmissionOverridesPartial
            | Code::IndexFallback
            | Code::JobQueued
            | Code::RecoveryReplayed => Severity::Note,
        }
    }

    /// True for the `SSD1xx`/`SSD2xx` bands: runtime codes produced
    /// during evaluation or serving, as opposed to static-analysis
    /// codes (`SSD0xx`) and source lints (`SSD9xx`).
    pub fn is_runtime(self) -> bool {
        self.as_str() >= "SSD100" && !self.is_lint()
    }

    /// True for the `SSD9xx` band: findings of the workspace invariant
    /// checker (`ssd lint`) over our own Rust sources.
    pub fn is_lint(self) -> bool {
        self.as_str() >= "SSD900"
    }

    /// Every code, in rendering order (used by docs and tests).
    pub fn all() -> &'static [Code] {
        &[
            Code::UnboundVariable,
            Code::UseBeforeBind,
            Code::DuplicateBinding,
            Code::UnusedBinding,
            Code::LabelVarMisuse,
            Code::EmptyPath,
            Code::DatalogUnsafe,
            Code::DatalogArityMismatch,
            Code::DatalogNotStratifiable,
            Code::DatalogUndefinedPredicate,
            Code::DatalogUnreachableRule,
            Code::DatalogHeadWildcard,
            Code::DatalogSingletonVariable,
            Code::CostExceedsBudget,
            Code::UnboundedCost,
            Code::CrossProductJoin,
            Code::ImpreciseEstimate,
            Code::AdmissionOverridesPartial,
            Code::IndexFallback,
            Code::DictionaryOverflow,
            Code::WorkloadScenarioFailed,
            Code::PerfRegression,
            Code::BaselineMismatch,
            Code::StepLimitExceeded,
            Code::MemoryLimitExceeded,
            Code::DeadlineExceeded,
            Code::DepthLimitExceeded,
            Code::Cancelled,
            Code::FaultInjected,
            Code::TruncatedResult,
            Code::ParseDepthExceeded,
            Code::EnginePanic,
            Code::SessionQuotaExhausted,
            Code::QueueFull,
            Code::JobQueued,
            Code::ServerShuttingDown,
            Code::UnknownJob,
            Code::ProtocolError,
            Code::RefundExceedsGrant,
            Code::WalTornTail,
            Code::WalChecksumMismatch,
            Code::RecoveryReplayed,
            Code::ReadOnlyStore,
            Code::RegistryDrift,
            Code::GuardBypass,
            Code::PanicSite,
            Code::LockOrderViolation,
            Code::SpanLeak,
            Code::InterprocLockInversion,
            Code::BlockingUnderLock,
            Code::AtomicOrderingUndeclared,
            Code::PublishBeforeLog,
            Code::FaultCoverageGap,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
            suggestion: None,
        }
    }

    #[must_use]
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    #[must_use]
    pub fn with_span_opt(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// One-line form: `error[SSD001]: unbound variable `X``.
    pub fn headline(&self) -> String {
        format!("{}[{}]: {}", self.severity, self.code, self.message)
    }

    /// Full rustc-style rendering against the source the span indexes.
    pub fn render(&self, source: &str, origin: &str) -> String {
        let mut out = self.headline();
        out.push('\n');
        if let Some(span) = self.span {
            let (line_no, col, line_text) = locate(source, span.start);
            let gutter = format!("{}", line_no).len().max(2);
            out.push_str(&format!(
                "{:gutter$}--> {}:{}:{}\n",
                "",
                origin,
                line_no,
                col,
                gutter = gutter
            ));
            out.push_str(&format!("{:gutter$} |\n", "", gutter = gutter));
            out.push_str(&format!(
                "{:>gutter$} | {}\n",
                line_no,
                line_text,
                gutter = gutter
            ));
            let in_line = line_text.len().saturating_sub(col - 1);
            let width = span.len().min(in_line.max(1)).max(1);
            out.push_str(&format!(
                "{:gutter$} | {}{}\n",
                "",
                " ".repeat(col - 1),
                "^".repeat(width),
                gutter = gutter
            ));
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("   = help: {s}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.headline())
    }
}

/// 1-based line, 1-based column (in bytes), and the text of that line.
fn locate(source: &str, pos: usize) -> (usize, usize, &str) {
    let pos = pos.min(source.len());
    let before = &source[..pos];
    let line_no = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[pos..].find('\n').map_or(source.len(), |i| pos + i);
    (line_no, pos - line_start + 1, &source[line_start..line_end])
}

/// Helpers over a batch of findings.
pub trait DiagnosticSink {
    fn has_errors(&self) -> bool;
    fn error_count(&self) -> usize;
    fn warning_count(&self) -> usize;
    fn render_all(&self, source: &str, origin: &str) -> String;
    fn sorted_by_span(self) -> Self;
}

impl DiagnosticSink for Vec<Diagnostic> {
    fn has_errors(&self) -> bool {
        self.iter().any(Diagnostic::is_error)
    }

    fn error_count(&self) -> usize {
        self.iter().filter(|d| d.is_error()).count()
    }

    fn warning_count(&self) -> usize {
        self.iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    fn render_all(&self, source: &str, origin: &str) -> String {
        self.iter()
            .map(|d| d.render(source, origin))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn sorted_by_span(mut self) -> Self {
        self.sort_by_key(|d| (d.span.map_or(usize::MAX, |s| s.start), d.code));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in Code::all() {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("SSD"));
        }
        assert!(Code::all().len() >= 8, "need at least 8 distinct codes");
    }

    #[test]
    fn cost_band_codes_and_severities() {
        assert_eq!(Code::CostExceedsBudget.as_str(), "SSD030");
        assert_eq!(Code::CostExceedsBudget.severity(), Severity::Error);
        assert_eq!(Code::UnboundedCost.as_str(), "SSD031");
        assert_eq!(Code::UnboundedCost.severity(), Severity::Warning);
        assert_eq!(Code::CrossProductJoin.as_str(), "SSD032");
        assert_eq!(Code::CrossProductJoin.severity(), Severity::Warning);
        assert_eq!(Code::ImpreciseEstimate.as_str(), "SSD033");
        assert_eq!(Code::ImpreciseEstimate.severity(), Severity::Note);
        assert!(!Code::CostExceedsBudget.is_runtime());
        assert!(!Code::ImpreciseEstimate.is_runtime());
    }

    #[test]
    fn serve_band_codes_and_severities() {
        assert_eq!(Code::SessionQuotaExhausted.as_str(), "SSD200");
        assert_eq!(Code::QueueFull.as_str(), "SSD201");
        assert_eq!(Code::JobQueued.as_str(), "SSD202");
        assert_eq!(Code::ServerShuttingDown.as_str(), "SSD203");
        assert_eq!(Code::UnknownJob.as_str(), "SSD204");
        assert_eq!(Code::ProtocolError.as_str(), "SSD210");
        assert_eq!(Code::JobQueued.severity(), Severity::Note);
        assert_eq!(Code::SessionQuotaExhausted.severity(), Severity::Error);
        assert!(Code::SessionQuotaExhausted.is_runtime());
        assert_eq!(Code::AdmissionOverridesPartial.as_str(), "SSD034");
        assert_eq!(Code::AdmissionOverridesPartial.severity(), Severity::Note);
        assert!(!Code::AdmissionOverridesPartial.is_runtime());
    }

    #[test]
    fn index_band_codes_and_severities() {
        assert_eq!(Code::IndexFallback.as_str(), "SSD050");
        assert_eq!(Code::IndexFallback.severity(), Severity::Note);
        assert_eq!(Code::DictionaryOverflow.as_str(), "SSD051");
        assert_eq!(Code::DictionaryOverflow.severity(), Severity::Error);
        for c in [Code::IndexFallback, Code::DictionaryOverflow] {
            assert!(!c.is_runtime(), "{c}: index codes are static-band codes");
            assert!(!c.is_lint());
        }
    }

    #[test]
    fn workload_band_codes_and_severities() {
        assert_eq!(Code::WorkloadScenarioFailed.as_str(), "SSD060");
        assert_eq!(Code::WorkloadScenarioFailed.severity(), Severity::Error);
        assert_eq!(Code::PerfRegression.as_str(), "SSD061");
        assert_eq!(Code::PerfRegression.severity(), Severity::Error);
        assert_eq!(Code::BaselineMismatch.as_str(), "SSD062");
        assert_eq!(Code::BaselineMismatch.severity(), Severity::Warning);
        for c in [
            Code::WorkloadScenarioFailed,
            Code::PerfRegression,
            Code::BaselineMismatch,
        ] {
            assert!(!c.is_runtime(), "{c}: harness codes are tool-band codes");
            assert!(!c.is_lint());
        }
    }

    #[test]
    fn store_band_codes_and_severities() {
        assert_eq!(Code::WalTornTail.as_str(), "SSD400");
        assert_eq!(Code::WalChecksumMismatch.as_str(), "SSD401");
        assert_eq!(Code::RecoveryReplayed.as_str(), "SSD402");
        assert_eq!(Code::ReadOnlyStore.as_str(), "SSD403");
        assert_eq!(Code::WalTornTail.severity(), Severity::Warning);
        assert_eq!(Code::WalChecksumMismatch.severity(), Severity::Error);
        assert_eq!(Code::RecoveryReplayed.severity(), Severity::Note);
        assert_eq!(Code::ReadOnlyStore.severity(), Severity::Error);
        for c in [
            Code::WalTornTail,
            Code::WalChecksumMismatch,
            Code::RecoveryReplayed,
            Code::ReadOnlyStore,
        ] {
            assert!(c.is_runtime(), "{c}: store codes are runtime codes");
            assert!(!c.is_lint());
        }
    }

    #[test]
    fn lint_band_codes_and_severities() {
        assert_eq!(Code::RegistryDrift.as_str(), "SSD901");
        assert_eq!(Code::GuardBypass.as_str(), "SSD902");
        assert_eq!(Code::PanicSite.as_str(), "SSD903");
        assert_eq!(Code::LockOrderViolation.as_str(), "SSD904");
        assert_eq!(Code::SpanLeak.as_str(), "SSD905");
        assert_eq!(Code::InterprocLockInversion.as_str(), "SSD910");
        assert_eq!(Code::BlockingUnderLock.as_str(), "SSD911");
        assert_eq!(Code::AtomicOrderingUndeclared.as_str(), "SSD912");
        assert_eq!(Code::PublishBeforeLog.as_str(), "SSD913");
        assert_eq!(Code::FaultCoverageGap.as_str(), "SSD914");
        assert_eq!(Code::PanicSite.severity(), Severity::Warning);
        assert_eq!(Code::RegistryDrift.severity(), Severity::Error);
        for c in [
            Code::RegistryDrift,
            Code::GuardBypass,
            Code::PanicSite,
            Code::LockOrderViolation,
            Code::SpanLeak,
            Code::InterprocLockInversion,
            Code::BlockingUnderLock,
            Code::AtomicOrderingUndeclared,
            Code::PublishBeforeLog,
            Code::FaultCoverageGap,
        ] {
            assert!(c.is_lint());
            assert!(!c.is_runtime(), "{c}: lints are static, not runtime");
        }
        assert!(!Code::StepLimitExceeded.is_lint());
        assert!(Code::StepLimitExceeded.is_runtime());
    }

    #[test]
    fn render_points_at_span() {
        let src = "select X from db.Entry E";
        let d = Diagnostic::new(Code::UnboundVariable, "unbound variable `X`")
            .with_span(Span::new(7, 8))
            .with_suggestion("bind `X` in a from-clause");
        let shown = d.render(src, "query");
        assert!(shown.contains("error[SSD001]"), "{shown}");
        assert!(shown.contains("query:1:8"), "{shown}");
        assert!(shown.contains("select X from db.Entry E"), "{shown}");
        assert!(shown.contains("= help:"), "{shown}");
        let caret_line = shown.lines().find(|l| l.contains('^')).expect("caret line");
        assert_eq!(
            caret_line.find('^'),
            caret_line.find("| ").map(|i| i + 2 + 7)
        );
    }

    #[test]
    fn render_multiline_source() {
        let src = "a(X) :- b(X).\nc(Y) :- d(Y).";
        let d = Diagnostic::new(Code::DatalogUndefinedPredicate, "undefined predicate `d`")
            .with_span(Span::new(22, 26));
        let shown = d.render(src, "program");
        assert!(shown.contains("program:2:9"), "{shown}");
        assert!(shown.contains("c(Y) :- d(Y)."), "{shown}");
    }

    #[test]
    fn sink_counts() {
        let v = vec![
            Diagnostic::new(Code::UnusedBinding, "w"),
            Diagnostic::new(Code::UnboundVariable, "e"),
        ];
        assert!(v.has_errors());
        assert_eq!(v.error_count(), 1);
        assert_eq!(v.warning_count(), 1);
        let sorted = v.sorted_by_span();
        assert_eq!(sorted.len(), 2);
    }
}
