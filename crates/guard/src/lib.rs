//! Execution governance for the semistructured-data engine.
//!
//! Every query construct in the stack — regular path expressions over
//! cyclic graphs, structural recursion, datalog fixpoints, DataGuide
//! subset construction — can blow up without warning (DataGuides are
//! exponential in the worst case). This crate provides the *runtime*
//! counterpart to the static guarantees of `ssd-analyze`: a [`Budget`]
//! describes limits (fuel, memory, deadline, depth, cancellation), a
//! [`Guard`] enforces them from inside evaluation loops, and exhaustion
//! surfaces as a structured [`Exhausted`] value carrying an SSD1xx
//! diagnostic code instead of a hang, an OOM kill, or a panic.
//!
//! Design points:
//!
//! - **Deterministic fuel.** The primary limit is a step counter ticked at
//!   every edge visit / binding / derivation, so the same query over the
//!   same data exhausts at the same point on every run — unlike a pure
//!   wall-clock timeout.
//! - **Cheap when inactive.** An unlimited guard costs one branch per
//!   tick; deadlines and cancellation flags are only polled every
//!   [`CHECK_INTERVAL`] steps so `Instant::now()` and atomic loads stay
//!   off the hot path.
//! - **Graceful degradation.** In [`Budget::partial`] mode, exhaustion is
//!   recorded on the guard and [`Guard::tick`] returns `Ok(false)`
//!   ("stop, keep what you have") so evaluators can return a well-formed
//!   partial result plus a truncation warning.
//! - **Deterministic fault injection.** A budget can carry named fail
//!   points ("fail on the Nth hit of site X"); evaluators call
//!   [`Guard::fail_point`] at their seams. Tests use this to prove every
//!   evaluator surfaces exhaustion at every seam, without process-global
//!   state or cargo features.
//!
//! The guard uses interior mutability (`Cell`) so evaluators can share
//! `&Guard` freely; it is intentionally **not** `Sync`. Only the
//! [`CancelToken`] crosses threads.

use ssd_diag::{Code, Diagnostic};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks pass between deadline / cancellation polls.
pub const CHECK_INTERVAL: u64 = 1024;

/// A shareable cooperative cancellation flag.
///
/// Clone it, hand one copy to another thread (or a signal handler), and
/// attach the other to a [`Budget`]; evaluation stops promptly — at the
/// next poll interval — after [`CancelToken::cancel`] is called.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        // lint: allow(atomic) — monotonic advisory flag; observers only poll it and no data is published under it, so no ordering is needed
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        // lint: allow(atomic) — see `cancel`: polling an advisory flag guards no data, so Relaxed is sufficient
        self.0.load(Ordering::Relaxed)
    }
}

/// Why evaluation stopped early. Each variant maps to an SSD1xx code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exhausted {
    /// The deterministic fuel counter ran out (SSD101).
    Steps { limit: u64 },
    /// The byte-accounted memory ceiling was reached (SSD102).
    Memory { limit: u64 },
    /// The wall-clock deadline passed (SSD103).
    Deadline { timeout: Duration },
    /// Recursion / derivation depth exceeded the limit (SSD104).
    Depth { limit: usize },
    /// The cancellation token was set (SSD105).
    Cancelled,
    /// A configured fault-injection point fired (SSD106).
    Fault { site: String },
}

impl Exhausted {
    /// The diagnostic code for this exhaustion kind.
    pub fn code(&self) -> Code {
        match self {
            Exhausted::Steps { .. } => Code::StepLimitExceeded,
            Exhausted::Memory { .. } => Code::MemoryLimitExceeded,
            Exhausted::Deadline { .. } => Code::DeadlineExceeded,
            Exhausted::Depth { .. } => Code::DepthLimitExceeded,
            Exhausted::Cancelled => Code::Cancelled,
            Exhausted::Fault { .. } => Code::FaultInjected,
        }
    }

    /// Human-readable cause, without the code prefix.
    pub fn message(&self) -> String {
        match self {
            Exhausted::Steps { limit } => {
                format!("evaluation exceeded the step budget of {limit} step(s)")
            }
            Exhausted::Memory { limit } => {
                format!("evaluation exceeded the memory budget of {limit} byte(s)")
            }
            Exhausted::Deadline { timeout } => {
                format!("evaluation exceeded the deadline of {timeout:?}")
            }
            Exhausted::Depth { limit } => {
                format!("evaluation exceeded the depth limit of {limit}")
            }
            Exhausted::Cancelled => "evaluation was cancelled".to_string(),
            Exhausted::Fault { site } => {
                format!("injected fault at '{site}' (testing only)")
            }
        }
    }

    /// As a full [`Diagnostic`] (no span: exhaustion is a runtime event,
    /// not a source location).
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::new(self.code(), self.message())
    }

    /// The rendered one-line form, e.g.
    /// `error[SSD101]: evaluation exceeded the step budget of 10 step(s)`.
    pub fn headline(&self) -> String {
        self.diagnostic().headline()
    }
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.headline())
    }
}

impl std::error::Error for Exhausted {}

/// An upper bound that may be infinite: Kleene star over a cyclic schema
/// region (or a recursive datalog stratum) has no finite match bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bound {
    /// A finite upper bound (in the unit of the enclosing interval).
    Finite(u64),
    /// No finite bound exists.
    Unbounded,
}

impl Bound {
    /// The finite value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Unbounded => None,
        }
    }

    /// Saturating addition; `Unbounded` absorbs.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Saturating multiplication; `Unbounded` absorbs (even `0 × ∞` stays
    /// `Unbounded`, keeping the bound sound without case analysis).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_mul(b)),
            _ => Bound::Unbounded,
        }
    }

    /// The smaller of the two bounds (`Unbounded` is the identity).
    #[must_use]
    pub fn min(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.min(b)),
            (Bound::Finite(a), Bound::Unbounded) => Bound::Finite(a),
            (Bound::Unbounded, b) => b,
        }
    }

    /// The larger of the two bounds (`Unbounded` absorbs).
    #[must_use]
    pub fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
            _ => Bound::Unbounded,
        }
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => f.write_str("unbounded"),
        }
    }
}

impl Default for Bound {
    fn default() -> Bound {
        Bound::Finite(0)
    }
}

/// A lower/upper interval in some cost unit. The lower bound is always
/// finite; the upper may be [`Bound::Unbounded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Interval {
    /// Guaranteed minimum (a sound *under*-approximation).
    pub lo: u64,
    /// Guaranteed maximum (a sound *over*-approximation).
    pub hi: Bound,
}

impl Interval {
    /// The exact interval `[n, n]`.
    pub fn exact(n: u64) -> Interval {
        Interval {
            lo: n,
            hi: Bound::Finite(n),
        }
    }

    /// The interval `[lo, hi]`.
    pub fn new(lo: u64, hi: Bound) -> Interval {
        Interval { lo, hi }
    }

    /// `[0, ∞)` — the "know nothing" interval.
    pub fn unknown() -> Interval {
        Interval {
            lo: 0,
            hi: Bound::Unbounded,
        }
    }

    /// Component-wise saturating addition.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.add(other.hi),
        }
    }

    /// Component-wise saturating multiplication.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_mul(other.lo),
            hi: self.hi.mul(other.hi),
        }
    }

    /// Is the upper bound finite?
    pub fn is_bounded(self) -> bool {
        matches!(self.hi, Bound::Finite(_))
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The result of static cost analysis for one query / RPE / datalog
/// program: interval bounds in exactly the units the [`Guard`] accounts —
/// `fuel` in steps ([`Guard::tick`]), `memory` in bytes
/// ([`Guard::alloc`]) — plus the estimated result cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostEnvelope {
    /// How many results (matches / assignments / derived tuples).
    pub cardinality: Interval,
    /// Guard steps the evaluation will consume.
    pub fuel: Interval,
    /// Guard-accounted bytes the evaluation will consume.
    pub memory: Interval,
}

impl CostEnvelope {
    /// Component-wise sum (sequential composition of two evaluations).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: CostEnvelope) -> CostEnvelope {
        CostEnvelope {
            cardinality: self.cardinality.add(other.cardinality),
            fuel: self.fuel.add(other.fuel),
            memory: self.memory.add(other.memory),
        }
    }
}

impl std::fmt::Display for CostEnvelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cardinality {}, fuel {}, memory {} bytes",
            self.cardinality, self.fuel, self.memory
        )
    }
}

/// One configured fault-injection site: the fault fires on hits
/// `nth..nth+times` (1-based) of the site, i.e. `times` consecutive
/// failures starting at the `nth` hit. The spec syntax is `site=N`
/// (one-shot, `times == 1`) or `site=N:M` (`times == M`) — repeated
/// failures are what recovery tests need to prove that, e.g., an fsync
/// that keeps failing never acknowledges a commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailPoint {
    pub site: String,
    /// 1-based hit index at which the fault first fires.
    pub nth: u64,
    /// How many consecutive hits fire, starting at `nth`.
    pub times: u64,
}

impl FailPoint {
    pub fn new(site: &str, nth: u64, times: u64) -> FailPoint {
        FailPoint {
            site: site.to_string(),
            nth: nth.max(1),
            times: times.max(1),
        }
    }
}

/// Advance the countdown for `site` in `points` by one hit; true when
/// the configured fault fires at this hit. Shared by [`Guard::fail_point`]
/// and the thread-safe I/O fault seams in `ssd-store`, so both layers
/// count hits identically.
pub fn fail_point_fires(points: &mut Vec<FailPoint>, site: &str) -> bool {
    let Some(i) = points.iter().position(|p| p.site == site) else {
        return false;
    };
    if points[i].nth > 1 {
        points[i].nth -= 1;
        return false;
    }
    points[i].times -= 1;
    if points[i].times == 0 {
        points.remove(i);
    }
    true
}

/// Declarative resource limits for one evaluation. `Default` is
/// unlimited; builder methods narrow it. Create a [`Guard`] with
/// [`Budget::guard`] at the start of each evaluation.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Fuel: max edge-visits / bindings / derivations.
    pub max_steps: Option<u64>,
    /// Byte-accounted memory ceiling for evaluator-owned structures.
    pub max_memory_bytes: Option<u64>,
    /// Wall-clock deadline, measured from [`Budget::guard`].
    pub timeout: Option<Duration>,
    /// Max recursion / derivation depth.
    pub max_depth: Option<usize>,
    /// Graceful degradation: return partial results instead of an error.
    pub partial: bool,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault injection sites; see [`FailPoint`].
    pub fail_points: Vec<FailPoint>,
    /// Fuel handed out by [`Budget::split`] and not yet refunded — lets
    /// [`Budget::refund`] detect a refund exceeding its grant.
    granted_steps: u64,
    /// Memory handed out by [`Budget::split`] and not yet refunded.
    granted_memory: u64,
}

impl Budget {
    /// No limits at all (same as `Budget::default()`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A practically-unlimited but *active* budget: limits so large they
    /// never trip, but the resulting [`Guard`] takes the full accounting
    /// path, so `steps_used`/`memory_used` report real consumption.
    /// Traced runs (`--trace`, `explain --analyze`) use this when the
    /// caller set no budget, so actual fuel/memory are still observable.
    pub fn metered() -> Budget {
        Budget::unlimited()
            .max_steps(u64::MAX >> 1)
            .max_memory_bytes(u64::MAX >> 1)
    }

    /// Cap the deterministic step counter.
    pub fn max_steps(mut self, steps: u64) -> Budget {
        self.max_steps = Some(steps);
        self
    }

    /// Cap evaluator-accounted memory, in bytes.
    pub fn max_memory_bytes(mut self, bytes: u64) -> Budget {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Cap evaluator-accounted memory, in mebibytes.
    pub fn max_memory_mb(self, mb: u64) -> Budget {
        self.max_memory_bytes(mb.saturating_mul(1024 * 1024))
    }

    /// Set a wall-clock deadline.
    pub fn timeout(mut self, d: Duration) -> Budget {
        self.timeout = Some(d);
        self
    }

    /// Cap recursion / derivation depth.
    pub fn max_depth(mut self, depth: usize) -> Budget {
        self.max_depth = Some(depth);
        self
    }

    /// Ask for partial results instead of hard errors on exhaustion.
    pub fn partial(mut self, yes: bool) -> Budget {
        self.partial = yes;
        self
    }

    /// Attach a cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Inject a one-shot fault at the `nth` (1-based) hit of `site`.
    pub fn fail_at(mut self, site: &str, nth: u64) -> Budget {
        self.fail_points.push(FailPoint::new(site, nth, 1));
        self
    }

    /// Inject `times` consecutive faults starting at the `nth` hit of
    /// `site` — the `site=N:M` spec form.
    pub fn fail_times(mut self, site: &str, nth: u64, times: u64) -> Budget {
        self.fail_points.push(FailPoint::new(site, nth, times));
        self
    }

    /// Parse a `site=N[:M],site=N[:M]` fault-point spec (the
    /// `SSD_FAILPOINTS` environment format used by the CLI): fire at the
    /// `N`th hit of `site`, and — with the `:M` suffix — keep firing for
    /// `M` consecutive hits. Unparseable entries are reported as `Err`.
    pub fn fail_points_from_spec(mut self, spec: &str) -> Result<Budget, String> {
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            match entry.split_once('=') {
                Some((site, n)) => {
                    let (nth_text, times_text) = match n.split_once(':') {
                        Some((a, b)) => (a, Some(b)),
                        None => (n, None),
                    };
                    let nth: u64 = nth_text
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fail point count in '{entry}'"))?;
                    let times: u64 = match times_text {
                        Some(t) => t
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad fail point repeat in '{entry}'"))?,
                        None => 1,
                    };
                    self.fail_points
                        .push(FailPoint::new(site.trim(), nth, times));
                }
                None => {
                    return Err(format!(
                        "bad fail point '{entry}' (want site=N or site=N:M)"
                    ))
                }
            }
        }
        Ok(self)
    }

    /// Does this budget constrain anything? Inactive budgets get the
    /// one-branch-per-tick fast path.
    pub fn is_active(&self) -> bool {
        self.max_steps.is_some()
            || self.max_memory_bytes.is_some()
            || self.timeout.is_some()
            || self.max_depth.is_some()
            || self.cancel.is_some()
            || !self.fail_points.is_empty()
    }

    /// Admission control: can an evaluation with this statically-derived
    /// [`CostEnvelope`] possibly fit the budget?
    ///
    /// Rejects (with an SSD030 diagnostic) only when the envelope's
    /// *lower* bound already exceeds a configured limit — i.e. when the
    /// evaluation is **guaranteed** to exhaust. Upper bounds (even
    /// `Unbounded` ones) never reject: the run may still finish early, and
    /// the [`Guard`] enforces the limit exactly at runtime anyway.
    pub fn admit(&self, envelope: &CostEnvelope) -> Result<(), Diagnostic> {
        if let Some(limit) = self.max_steps {
            if envelope.fuel.lo > limit {
                return Err(Diagnostic::new(
                    Code::CostExceedsBudget,
                    format!(
                        "query statically exceeds the step budget: \
                         needs at least {} step(s), limit is {limit}",
                        envelope.fuel.lo
                    ),
                )
                .with_suggestion(format!(
                    "raise --max-steps to at least {} or narrow the query",
                    envelope.fuel.lo
                )));
            }
        }
        if let Some(limit) = self.max_memory_bytes {
            if envelope.memory.lo > limit {
                return Err(Diagnostic::new(
                    Code::CostExceedsBudget,
                    format!(
                        "query statically exceeds the memory budget: \
                         needs at least {} byte(s), limit is {limit}",
                        envelope.memory.lo
                    ),
                )
                .with_suggestion(format!(
                    "raise --max-memory-mb to at least {} MiB or narrow the query",
                    envelope.memory.lo / (1024 * 1024) + 1
                )));
            }
        }
        Ok(())
    }

    /// Carve a sub-budget of `fuel` steps and `memory` bytes out of this
    /// budget, deducting both from the parent's limits.
    ///
    /// This is the session-quota seam used by `ssd-serve`: a session
    /// holds one `Budget` as its remaining quota and hands each admitted
    /// job a split-off slice; [`Budget::refund`] reclaims the unspent
    /// remainder when the job finishes. The arithmetic is checked — a
    /// request the parent cannot cover returns a [`SplitShortfall`] and
    /// leaves the parent untouched, so a failed split never leaks.
    ///
    /// An unlimited dimension (`None`) grants the request without
    /// deduction; the child is always finitely limited in both
    /// dimensions. The child inherits nothing else (no deadline, depth,
    /// partial mode, cancellation, or fault points) — callers compose
    /// those per job.
    pub fn split(&mut self, fuel: u64, memory: u64) -> Result<Budget, SplitShortfall> {
        if let Some(have) = self.max_steps {
            if fuel > have {
                return Err(SplitShortfall::Fuel { want: fuel, have });
            }
        }
        if let Some(have) = self.max_memory_bytes {
            if memory > have {
                return Err(SplitShortfall::Memory { want: memory, have });
            }
        }
        if let Some(have) = &mut self.max_steps {
            *have -= fuel;
        }
        if let Some(have) = &mut self.max_memory_bytes {
            *have -= memory;
        }
        self.granted_steps = self.granted_steps.saturating_add(fuel);
        self.granted_memory = self.granted_memory.saturating_add(memory);
        Ok(Budget::unlimited().max_steps(fuel).max_memory_bytes(memory))
    }

    /// Return unspent capacity from a [`Budget::split`] grant.
    ///
    /// Callers refund `granted − spent` (never more than was split off,
    /// never less than zero). A refund exceeding the outstanding grants is
    /// a caller bookkeeping bug: it trips a debug assertion, and in
    /// release builds the excess is clamped off and reported in the
    /// returned [`RefundOutcome`] so callers can surface a warning
    /// (SSD211) instead of silently inflating the budget. Unlimited
    /// dimensions ignore the refund, mirroring `split`'s no-deduction
    /// rule.
    pub fn refund(&mut self, fuel: u64, memory: u64) -> RefundOutcome {
        let fuel_excess = fuel.saturating_sub(self.granted_steps);
        let memory_excess = memory.saturating_sub(self.granted_memory);
        debug_assert!(
            fuel_excess == 0 && memory_excess == 0,
            "refund exceeds outstanding grant: \
             fuel {fuel} > {}, memory {memory} > {}",
            self.granted_steps,
            self.granted_memory,
        );
        let fuel = fuel - fuel_excess;
        let memory = memory - memory_excess;
        self.granted_steps -= fuel;
        self.granted_memory -= memory;
        if let Some(have) = &mut self.max_steps {
            *have = have.saturating_add(fuel);
        }
        if let Some(have) = &mut self.max_memory_bytes {
            *have = have.saturating_add(memory);
        }
        RefundOutcome {
            fuel_excess,
            memory_excess,
        }
    }

    /// Fuel and memory currently split off and not yet refunded.
    pub fn outstanding_grants(&self) -> (u64, u64) {
        (self.granted_steps, self.granted_memory)
    }

    /// Start enforcing this budget: the deadline clock starts now.
    pub fn guard(&self) -> Guard {
        Guard {
            active: self.is_active(),
            partial: self.partial,
            max_steps: self.max_steps,
            max_memory: self.max_memory_bytes,
            max_depth: self.max_depth,
            timeout: self.timeout,
            deadline: self.timeout.map(|t| Instant::now() + t),
            cancel: self.cancel.clone(),
            steps: Cell::new(0),
            memory: Cell::new(0),
            fail_points: RefCell::new(self.fail_points.clone()),
            truncation: RefCell::new(None),
        }
    }
}

/// What [`Budget::refund`] did with an over-refund: the portions of the
/// requested refund that exceeded the outstanding grants and were clamped
/// off. All-zero (the normal case) means the refund was applied in full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefundOutcome {
    /// Fuel refund in excess of the outstanding grant (not applied).
    pub fuel_excess: u64,
    /// Memory refund in excess of the outstanding grant (not applied).
    pub memory_excess: u64,
}

impl RefundOutcome {
    /// True when any part of the refund was clamped off — a caller
    /// bookkeeping bug worth a warning.
    pub fn clamped(&self) -> bool {
        self.fuel_excess > 0 || self.memory_excess > 0
    }
}

/// Why a [`Budget::split`] could not be honoured. The parent budget is
/// left unchanged when this is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitShortfall {
    /// The parent's remaining fuel cannot cover the request.
    Fuel { want: u64, have: u64 },
    /// The parent's remaining memory cannot cover the request.
    Memory { want: u64, have: u64 },
}

impl std::fmt::Display for SplitShortfall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitShortfall::Fuel { want, have } => {
                write!(f, "cannot split off {want} step(s): only {have} remain")
            }
            SplitShortfall::Memory { want, have } => {
                write!(f, "cannot split off {want} byte(s): only {have} remain")
            }
        }
    }
}

impl std::error::Error for SplitShortfall {}

/// Runtime enforcement state for one evaluation. Create with
/// [`Budget::guard`]; share as `&Guard` (deliberately not `Sync`).
#[derive(Debug)]
pub struct Guard {
    active: bool,
    partial: bool,
    max_steps: Option<u64>,
    max_memory: Option<u64>,
    max_depth: Option<usize>,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    steps: Cell<u64>,
    memory: Cell<u64>,
    /// Remaining-hit countdowns per fault site; a site is removed once
    /// its configured fires are exhausted, so injection is deterministic.
    fail_points: RefCell<Vec<FailPoint>>,
    /// Set when partial mode swallowed an exhaustion.
    truncation: RefCell<Option<Exhausted>>,
}

impl Default for Guard {
    fn default() -> Guard {
        Budget::unlimited().guard()
    }
}

impl Guard {
    /// An unlimited guard — the cheap stand-in used by the infallible
    /// wrapper APIs. Never reports exhaustion.
    pub fn unlimited() -> Guard {
        Guard::default()
    }

    /// Is any limit being enforced?
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Is graceful degradation on?
    pub fn is_partial(&self) -> bool {
        self.partial
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.get()
    }

    /// Bytes accounted so far.
    pub fn memory_used(&self) -> u64 {
        self.memory.get()
    }

    /// If partial mode stopped an evaluation early, why.
    pub fn truncation(&self) -> Option<Exhausted> {
        self.truncation.borrow().clone()
    }

    /// Record a truncation cause (first one wins).
    pub fn note_truncation(&self, why: Exhausted) {
        let mut t = self.truncation.borrow_mut();
        if t.is_none() {
            *t = Some(why);
        }
    }

    /// Resolve an exhaustion according to the degradation mode: in
    /// partial mode it is recorded and `Ok(false)` ("stop, keep the
    /// partial result") is returned; otherwise it is the error.
    fn resolve(&self, why: Exhausted) -> Result<bool, Exhausted> {
        if self.partial {
            self.note_truncation(why);
            Ok(false)
        } else {
            Err(why)
        }
    }

    /// Consume `n` steps of fuel.
    ///
    /// Returns `Ok(true)` to continue, `Ok(false)` to stop and keep the
    /// partial result (partial mode), or `Err` on exhaustion. Deadline
    /// and cancellation are polled every [`CHECK_INTERVAL`] steps.
    #[inline]
    pub fn tick(&self, n: u64) -> Result<bool, Exhausted> {
        if !self.active {
            return Ok(true);
        }
        if self.truncation.borrow().is_some() {
            // Already truncated: stay stopped.
            return Ok(false);
        }
        let before = self.steps.get();
        let now = before.saturating_add(n);
        self.steps.set(now);
        if let Some(limit) = self.max_steps {
            if now > limit {
                return self.resolve(Exhausted::Steps { limit });
            }
        }
        // Poll the expensive checks once per interval (or on big jumps).
        if before / CHECK_INTERVAL != now / CHECK_INTERVAL || before == 0 {
            self.poll()?;
            if self.truncation.borrow().is_some() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Poll deadline and cancellation immediately (fixpoint-round
    /// boundaries call this for promptness regardless of tick count).
    pub fn poll(&self) -> Result<(), Exhausted> {
        if !self.active {
            return Ok(());
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return self.resolve(Exhausted::Cancelled).map(|_| ());
            }
        }
        if let (Some(deadline), Some(timeout)) = (self.deadline, self.timeout) {
            if Instant::now() > deadline {
                return self.resolve(Exhausted::Deadline { timeout }).map(|_| ());
            }
        }
        Ok(())
    }

    /// Account `bytes` of evaluator-owned memory.
    ///
    /// Same contract as [`Guard::tick`]: `Ok(true)` continue, `Ok(false)`
    /// stop-partial, `Err` exhausted.
    #[inline]
    pub fn alloc(&self, bytes: u64) -> Result<bool, Exhausted> {
        if !self.active {
            return Ok(true);
        }
        if self.truncation.borrow().is_some() {
            return Ok(false);
        }
        let now = self.memory.get().saturating_add(bytes);
        self.memory.set(now);
        if let Some(limit) = self.max_memory {
            if now > limit {
                return self.resolve(Exhausted::Memory { limit });
            }
        }
        Ok(true)
    }

    /// Check a recursion / derivation depth against the limit.
    #[inline]
    pub fn enter_depth(&self, depth: usize) -> Result<bool, Exhausted> {
        if !self.active {
            return Ok(true);
        }
        if self.truncation.borrow().is_some() {
            return Ok(false);
        }
        if let Some(limit) = self.max_depth {
            if depth > limit {
                return self.resolve(Exhausted::Depth { limit });
            }
        }
        Ok(true)
    }

    /// A named fault-injection seam. Counts hits of `site`; when a
    /// configured countdown reaches zero the injected fault fires (for
    /// as many consecutive hits as the fail point asked — see
    /// [`FailPoint`]). Free when no fault is configured for any site.
    pub fn fail_point(&self, site: &str) -> Result<bool, Exhausted> {
        if !self.active {
            return Ok(true);
        }
        if self.truncation.borrow().is_some() {
            return Ok(false);
        }
        if self.fail_points.borrow().is_empty() {
            return Ok(true);
        }
        let fire = fail_point_fires(&mut self.fail_points.borrow_mut(), site);
        if fire {
            return self.resolve(Exhausted::Fault {
                site: site.to_string(),
            });
        }
        Ok(true)
    }

    /// Convenience for evaluators that cannot produce partial results
    /// (e.g. single-answer lookups): like [`Guard::tick`] but partial
    /// mode also surfaces the error.
    pub fn tick_hard(&self, n: u64) -> Result<(), Exhausted> {
        match self.tick(n) {
            Ok(true) => Ok(()),
            Ok(false) => Err(self.truncation().unwrap_or(Exhausted::Steps { limit: 0 })),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_stops() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            assert_eq!(g.tick(1), Ok(true));
        }
        assert_eq!(g.alloc(u64::MAX), Ok(true));
        assert_eq!(g.enter_depth(usize::MAX), Ok(true));
        assert_eq!(g.fail_point("anything"), Ok(true));
        assert!(g.poll().is_ok());
        // Inactive guards do not even count.
        assert_eq!(g.steps_used(), 0);
    }

    #[test]
    fn step_budget_is_deterministic() {
        for _ in 0..3 {
            let g = Budget::unlimited().max_steps(10).guard();
            let mut survived = 0;
            for _ in 0..100 {
                match g.tick(1) {
                    Ok(true) => survived += 1,
                    Ok(false) => unreachable!("not partial"),
                    Err(e) => {
                        assert_eq!(e, Exhausted::Steps { limit: 10 });
                        break;
                    }
                }
            }
            assert_eq!(survived, 10);
        }
    }

    #[test]
    fn memory_budget_trips() {
        let g = Budget::unlimited().max_memory_bytes(100).guard();
        assert_eq!(g.alloc(60), Ok(true));
        assert_eq!(g.alloc(60), Err(Exhausted::Memory { limit: 100 }));
    }

    #[test]
    fn mb_helper_scales() {
        let b = Budget::unlimited().max_memory_mb(2);
        assert_eq!(b.max_memory_bytes, Some(2 * 1024 * 1024));
    }

    #[test]
    fn depth_limit_trips() {
        let g = Budget::unlimited().max_depth(3).guard();
        assert_eq!(g.enter_depth(3), Ok(true));
        assert_eq!(g.enter_depth(4), Err(Exhausted::Depth { limit: 3 }));
    }

    #[test]
    fn deadline_trips() {
        let g = Budget::unlimited()
            .timeout(Duration::from_millis(0))
            .guard();
        std::thread::sleep(Duration::from_millis(2));
        // The first tick polls immediately.
        assert!(matches!(g.tick(1), Err(Exhausted::Deadline { .. })));
    }

    #[test]
    fn cancellation_observed_at_poll() {
        let token = CancelToken::new();
        let g = Budget::unlimited().cancel_token(token.clone()).guard();
        assert_eq!(g.tick(1), Ok(true));
        token.cancel();
        assert_eq!(g.poll(), Err(Exhausted::Cancelled));
    }

    #[test]
    fn cancellation_observed_within_interval() {
        let token = CancelToken::new();
        let g = Budget::unlimited().cancel_token(token.clone()).guard();
        token.cancel();
        let mut stopped_at = None;
        for i in 0..(2 * CHECK_INTERVAL) {
            if g.tick(1).is_err() {
                stopped_at = Some(i);
                break;
            }
        }
        let at = stopped_at.expect("cancellation must be seen within one interval");
        assert!(at <= CHECK_INTERVAL, "seen at {at}");
    }

    #[test]
    fn partial_mode_records_truncation_and_stays_stopped() {
        let g = Budget::unlimited().max_steps(5).partial(true).guard();
        let mut continues = 0;
        for _ in 0..20 {
            match g.tick(1) {
                Ok(true) => continues += 1,
                Ok(false) => {}
                Err(e) => panic!("partial mode must not error, got {e}"),
            }
        }
        assert_eq!(continues, 5);
        assert_eq!(g.truncation(), Some(Exhausted::Steps { limit: 5 }));
        // Once truncated, every facility reports "stop".
        assert_eq!(g.alloc(1), Ok(false));
        assert_eq!(g.enter_depth(1), Ok(false));
        assert_eq!(g.fail_point("x"), Ok(false));
    }

    #[test]
    fn fail_point_fires_on_nth_hit_once() {
        let g = Budget::unlimited().fail_at("seam", 3).guard();
        assert_eq!(g.fail_point("seam"), Ok(true));
        assert_eq!(g.fail_point("other"), Ok(true));
        assert_eq!(g.fail_point("seam"), Ok(true));
        assert_eq!(
            g.fail_point("seam"),
            Err(Exhausted::Fault {
                site: "seam".into()
            })
        );
        // One-shot: the site is disarmed after firing.
        assert_eq!(g.fail_point("seam"), Ok(true));
    }

    #[test]
    fn fail_point_fires_m_times_starting_at_nth() {
        // `seam=2:3`: hits 2, 3, and 4 fire; hits 1 and 5 pass.
        let g = Budget::unlimited().fail_times("seam", 2, 3).guard();
        assert_eq!(g.fail_point("seam"), Ok(true));
        for _ in 0..3 {
            assert!(g.fail_point("seam").is_err());
        }
        assert_eq!(g.fail_point("seam"), Ok(true));
    }

    #[test]
    fn fail_point_spec_parses() {
        let b = Budget::unlimited()
            .fail_points_from_spec("a=1, b=20")
            .unwrap();
        assert_eq!(
            b.fail_points,
            vec![FailPoint::new("a", 1, 1), FailPoint::new("b", 20, 1)]
        );
        assert!(Budget::unlimited().fail_points_from_spec("nope").is_err());
        assert!(Budget::unlimited().fail_points_from_spec("a=x").is_err());
        assert!(Budget::unlimited().fail_points_from_spec("").is_ok());
    }

    #[test]
    fn fail_point_spec_parses_repeat_form() {
        let b = Budget::unlimited()
            .fail_points_from_spec("a=1:5, b=3")
            .unwrap();
        assert_eq!(
            b.fail_points,
            vec![FailPoint::new("a", 1, 5), FailPoint::new("b", 3, 1)]
        );
        assert!(Budget::unlimited().fail_points_from_spec("a=1:").is_err());
        assert!(Budget::unlimited().fail_points_from_spec("a=1:x").is_err());
        // `times` is clamped to at least one fire.
        let b = Budget::unlimited().fail_points_from_spec("a=1:0").unwrap();
        assert_eq!(b.fail_points, vec![FailPoint::new("a", 1, 1)]);
    }

    #[test]
    fn fail_point_fires_helper_counts_like_the_guard() {
        let mut points = vec![FailPoint::new("io", 2, 2)];
        assert!(!fail_point_fires(&mut points, "io"));
        assert!(!fail_point_fires(&mut points, "other"));
        assert!(fail_point_fires(&mut points, "io"));
        assert!(fail_point_fires(&mut points, "io"));
        assert!(points.is_empty());
        assert!(!fail_point_fires(&mut points, "io"));
    }

    #[test]
    fn exhausted_headlines_carry_codes() {
        assert!(Exhausted::Steps { limit: 1 }
            .headline()
            .contains("error[SSD101]"));
        assert!(Exhausted::Memory { limit: 1 }
            .headline()
            .contains("error[SSD102]"));
        assert!(Exhausted::Deadline {
            timeout: Duration::from_secs(1)
        }
        .headline()
        .contains("error[SSD103]"));
        assert!(Exhausted::Depth { limit: 1 }
            .headline()
            .contains("error[SSD104]"));
        assert!(Exhausted::Cancelled.headline().contains("error[SSD105]"));
        assert!(Exhausted::Fault { site: "s".into() }
            .headline()
            .contains("error[SSD106]"));
    }

    #[test]
    fn bound_arithmetic_saturates_and_absorbs() {
        assert_eq!(Bound::Finite(2).add(Bound::Finite(3)), Bound::Finite(5));
        assert_eq!(Bound::Finite(2).mul(Bound::Finite(3)), Bound::Finite(6));
        assert_eq!(
            Bound::Finite(u64::MAX).add(Bound::Finite(1)),
            Bound::Finite(u64::MAX)
        );
        assert_eq!(Bound::Finite(0).mul(Bound::Unbounded), Bound::Unbounded);
        assert_eq!(Bound::Unbounded.add(Bound::Finite(1)), Bound::Unbounded);
        assert_eq!(Bound::Finite(7).min(Bound::Unbounded), Bound::Finite(7));
        assert_eq!(Bound::Finite(7).max(Bound::Unbounded), Bound::Unbounded);
        assert_eq!(Bound::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn interval_arithmetic_is_componentwise() {
        let a = Interval::new(1, Bound::Finite(4));
        let b = Interval::new(2, Bound::Unbounded);
        assert_eq!(a.add(b), Interval::new(3, Bound::Unbounded));
        assert_eq!(
            a.mul(Interval::exact(3)),
            Interval::new(3, Bound::Finite(12))
        );
        assert!(a.is_bounded());
        assert!(!Interval::unknown().is_bounded());
        assert_eq!(a.to_string(), "[1, 4]");
    }

    #[test]
    fn admit_rejects_only_on_lower_bound() {
        let budget = Budget::unlimited().max_steps(100).max_memory_bytes(1000);
        let fits = CostEnvelope {
            fuel: Interval::new(10, Bound::Unbounded),
            memory: Interval::new(0, Bound::Unbounded),
            ..CostEnvelope::default()
        };
        assert!(budget.admit(&fits).is_ok(), "upper bounds never reject");
        let over_fuel = CostEnvelope {
            fuel: Interval::new(101, Bound::Finite(200)),
            ..CostEnvelope::default()
        };
        let d = budget.admit(&over_fuel).unwrap_err();
        assert_eq!(d.code, Code::CostExceedsBudget);
        assert!(d.headline().contains("SSD030"), "{}", d.headline());
        let over_mem = CostEnvelope {
            memory: Interval::new(2000, Bound::Finite(2000)),
            ..CostEnvelope::default()
        };
        let d = budget.admit(&over_mem).unwrap_err();
        assert!(d.message.contains("memory"), "{}", d.message);
        assert!(Budget::unlimited().admit(&over_fuel).is_ok());
    }

    #[test]
    fn split_deducts_and_refund_reclaims() {
        let mut session = Budget::unlimited().max_steps(100).max_memory_bytes(1000);
        let job = session.split(30, 400).unwrap();
        assert_eq!(job.max_steps, Some(30));
        assert_eq!(job.max_memory_bytes, Some(400));
        assert_eq!(session.max_steps, Some(70));
        assert_eq!(session.max_memory_bytes, Some(600));
        assert_eq!(session.outstanding_grants(), (30, 400));
        // The job spent 10 steps and 100 bytes; reclaim the rest.
        let outcome = session.refund(20, 300);
        assert!(!outcome.clamped());
        assert_eq!(session.max_steps, Some(90));
        assert_eq!(session.max_memory_bytes, Some(900));
        assert_eq!(session.outstanding_grants(), (10, 100));
    }

    #[test]
    fn split_shortfall_leaves_parent_untouched() {
        let mut session = Budget::unlimited().max_steps(10).max_memory_bytes(5);
        assert_eq!(
            session.split(11, 0).err(),
            Some(SplitShortfall::Fuel { want: 11, have: 10 })
        );
        // Fuel would fit but memory cannot: nothing may be deducted.
        assert_eq!(
            session.split(10, 6).err(),
            Some(SplitShortfall::Memory { want: 6, have: 5 })
        );
        assert_eq!(session.max_steps, Some(10));
        assert_eq!(session.max_memory_bytes, Some(5));
        assert!(session.split(10, 5).is_ok());
        assert_eq!(session.max_steps, Some(0));
    }

    #[test]
    fn split_from_unlimited_grants_without_deduction() {
        let mut session = Budget::unlimited();
        let job = session.split(1_000, 1 << 20).unwrap();
        assert_eq!(job.max_steps, Some(1_000));
        assert!(session.max_steps.is_none());
        session.refund(1_000, 1 << 20);
        assert!(
            session.max_steps.is_none(),
            "refund to unlimited is a no-op"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "refund exceeds outstanding grant")
    )]
    fn over_refund_is_a_debug_assertion() {
        // Refunding more than was split off is a caller bookkeeping bug:
        // debug builds assert (this test), release builds clamp and report
        // the excess via RefundOutcome (checked below when assertions are
        // off).
        let mut b = Budget::unlimited().max_steps(50);
        let _job = b.split(10, 0).unwrap();
        let outcome = b.refund(25, 3);
        // Only reached without debug assertions.
        assert_eq!(outcome.fuel_excess, 15);
        assert_eq!(outcome.memory_excess, 3);
        assert!(outcome.clamped());
        assert_eq!(b.max_steps, Some(50), "excess must not inflate the budget");
        panic!("refund exceeds outstanding grant (release-mode check done)");
    }

    #[test]
    fn metered_budget_counts_without_limiting() {
        let b = Budget::metered();
        assert!(b.is_active());
        let g = b.guard();
        assert!(g.tick(1_000).unwrap());
        assert!(g.alloc(1 << 30).unwrap());
        assert_eq!(g.steps_used(), 1_000);
        assert_eq!(g.memory_used(), 1 << 30);
        assert!(g.truncation().is_none());
    }

    #[test]
    fn split_child_inherits_nothing_else() {
        let token = CancelToken::new();
        let mut session = Budget::unlimited()
            .max_steps(100)
            .max_memory_bytes(100)
            .timeout(Duration::from_secs(5))
            .max_depth(3)
            .partial(true)
            .cancel_token(token)
            .fail_at("seam", 1);
        let job = session.split(1, 1).unwrap();
        assert!(job.timeout.is_none());
        assert!(job.max_depth.is_none());
        assert!(!job.partial);
        assert!(job.cancel.is_none());
        assert!(job.fail_points.is_empty());
    }

    #[test]
    fn tick_hard_surfaces_partial_exhaustion() {
        let g = Budget::unlimited().max_steps(1).partial(true).guard();
        assert!(g.tick_hard(1).is_ok());
        assert!(matches!(g.tick_hard(1), Err(Exhausted::Steps { .. })));
    }
}
