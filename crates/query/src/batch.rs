//! Batched (columnar) execution of select queries over the triple index.
//!
//! The interpreter in [`crate::lang::eval`] enumerates assignments one at
//! a time, re-walking each binding's path with an NFA product-BFS per
//! enclosing prefix. This module executes the same queries as a pipeline
//! of operators exchanging *columnar binding batches* — each batch is a
//! set of partial assignments, one `u32`-encoded node column per bound
//! variable:
//!
//! ```text
//! Scan(binding 0) → MergeJoin(binding 1) → ... → Filter → Project
//! ```
//!
//! * **Scan** walks binding 0's label path from the root through the
//!   [`TripleIndex`], one sorted frontier per step.
//! * **MergeJoin** extends each batch with binding *i*'s column: the
//!   distinct source nodes are probed in ascending order against the SPO
//!   run with a resumable galloping cursor (a merge join of frontier and
//!   run), and match lists are memoised per source node.
//! * **Filter** evaluates the full `where` clause per surviving row with
//!   the interpreter's own [`eval_cond`] — semantically the
//!   no-pushdown interpreter, so *any* condition is batchable.
//! * **Project** feeds each surviving assignment through the
//!   interpreter's constructor ([`construct_edges`]), so result graphs
//!   are built by exactly the same code in both paths.
//!
//! The planner ([`plan_access`]) decides per query whether this path
//! applies (pure label-sequence binding paths, no label variables) and
//! per *step* which permutation to use: an SPO gallop driven by the
//! current frontier, or a POS scan of the label's run when statistics say
//! the label is rarer than the frontier is wide. Anything else falls back
//! to the interpreter, noted as `SSD050`.
//!
//! Resource accounting mirrors the interpreter: the guard is ticked per
//! key touched and per row processed, batch memory is charged by encoded
//! bytes, and each constructed result costs [`CONSTRUCT_COST`].

use crate::lang::ast::{Cond, SelectQuery, Source};
use crate::lang::eval::{
    binding_profiles, construct_edges, eval_cond, exh, finish_select_trace, note_truncation,
    BindVal, EvalOptions, EvalStats, CONSTRUCT_COST,
};
use crate::rpe::Rpe;
use ssd_diag::{Code, Diagnostic};
use ssd_graph::{Graph, Label, NodeId};
use ssd_guard::Guard;
use ssd_index::TripleIndex;
use ssd_schema::{DataStats, Pred};
use ssd_trace::Phase;
use std::collections::HashMap;

/// Rows per exchanged batch.
pub const BATCH_ROWS: usize = 1024;

/// Bytes one batch cell (an encoded node id) is charged at.
pub const CELL_BYTES: u64 = 4;

/// Flat cost the planner charges the batched path for pipeline setup, in
/// estimated-edges-touched units; below this the interpreter wins on
/// constant factors alone (tiny graphs).
const BATCH_SETUP_COST: u64 = 512;

/// Estimated cost multiplier of touching one edge in the interpreter's
/// NFA product-BFS (hash-set state tracking, per-edge allocation) versus
/// one galloped key in a sorted run.
const NFA_EDGE_OVERHEAD: u64 = 8;

/// Which permutation answers one path step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStrategy {
    /// Gallop `spo.range2(s, p)` per frontier node, cursor-resumed in
    /// ascending `s` order (merge join of frontier × SPO).
    SpoGallop,
    /// Scan the label's whole POS run and keep keys whose source is in
    /// the frontier — cheaper when the label is rarer than the frontier
    /// is wide.
    PosScan,
}

/// One planned path step: the dictionary id of its label (`None` when the
/// label does not occur in the data — the step matches nothing) and the
/// permutation chosen for it.
#[derive(Debug, Clone)]
pub struct StepPlan {
    pub label: Option<u32>,
    pub strategy: StepStrategy,
}

/// Where a planned binding's walk starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingSource {
    /// The database root.
    Root,
    /// The column of an earlier binding.
    Col(usize),
}

/// Access plan for one binding: start point plus one [`StepPlan`] per
/// path step.
#[derive(Debug, Clone)]
pub struct BindingPlan {
    pub source: BindingSource,
    pub steps: Vec<StepPlan>,
    /// Estimated matches one walk of this binding produces.
    pub est_matches: u64,
}

impl BindingPlan {
    /// Short access-path name for `ssd explain`: which permutations this
    /// binding reads.
    pub fn access(&self) -> String {
        let spo = self
            .steps
            .iter()
            .any(|s| s.strategy == StepStrategy::SpoGallop);
        let pos = self
            .steps
            .iter()
            .any(|s| s.strategy == StepStrategy::PosScan);
        match (spo, pos) {
            (true, true) => "index(spo+pos)".to_owned(),
            (false, true) => "index(pos)".to_owned(),
            _ => "index(spo)".to_owned(),
        }
    }
}

/// A full query access plan plus the planner's cost estimates (in
/// estimated-edges-touched units) for both execution paths.
#[derive(Debug, Clone)]
pub struct AccessPlan {
    pub bindings: Vec<BindingPlan>,
    pub est_cost_batched: u64,
    pub est_cost_interp: u64,
}

impl AccessPlan {
    /// Does the cost model say the batched path beats the interpreter?
    pub fn wins(&self) -> bool {
        self.est_cost_batched < self.est_cost_interp
    }

    /// Why the interpreter was kept despite a batchable shape — the
    /// SSD050 note body for a cost-based fallback.
    pub fn keep_interpreter_reason(&self) -> String {
        format!(
            "statistics favour the interpreter (estimated cost {} vs batched {})",
            self.est_cost_interp, self.est_cost_batched
        )
    }
}

/// The SSD050 note recorded when a query falls back to the interpreter.
pub fn fallback_note(reason: &str) -> Diagnostic {
    Diagnostic::new(
        Code::IndexFallback,
        format!("batched index execution unavailable: {reason}"),
    )
}

/// Flatten an RPE into a label sequence, or say why it is not batchable.
fn flatten_steps(path: &Rpe, out: &mut Vec<Pred>) -> Result<(), String> {
    match path {
        Rpe::Epsilon => Ok(()),
        Rpe::Step(s) => {
            if s.label_var.is_some() {
                return Err("binds a label variable".to_owned());
            }
            match &s.pred {
                Pred::Symbol(_) | Pred::ValueEq(_) => {
                    out.push(s.pred.clone());
                    Ok(())
                }
                other => Err(format!("uses predicate `{other}`")),
            }
        }
        Rpe::Seq(a, b) => {
            flatten_steps(a, out)?;
            flatten_steps(b, out)
        }
        Rpe::Alt(..) => Err("uses alternation".to_owned()),
        Rpe::Star(..) => Err("uses Kleene star".to_owned()),
        Rpe::Plus(..) => Err("uses one-or-more repetition".to_owned()),
        Rpe::Opt(..) => Err("uses an optional step".to_owned()),
    }
}

/// Plan index access for `query`, choosing a permutation per step from
/// `stats` and the index's exact label counts. `Err` carries the reason
/// the query's shape is not batchable (the SSD050 note body); a
/// successful plan still carries cost estimates so the caller can decide
/// whether the index actually *wins* ([`AccessPlan::wins`]).
pub fn plan_access(
    g: &Graph,
    index: &TripleIndex,
    stats: &DataStats,
    query: &SelectQuery,
) -> Result<AccessPlan, String> {
    if query.bindings.is_empty() {
        return Err("query has no bindings".to_owned());
    }
    let avg_fanout = (stats.edges_reachable / stats.nodes_reachable.max(1)).max(1);
    let log_n = (usize::BITS - index.len().leading_zeros()).max(1) as u64;
    let mut bindings: Vec<BindingPlan> = Vec::with_capacity(query.bindings.len());
    // Rows the pipeline carries into each binding's join (the number of
    // times the interpreter would re-walk that binding's path).
    let mut prefix_rows: u64 = 1;
    let mut est_cost_batched: u64 = BATCH_SETUP_COST;
    let mut est_cost_interp: u64 = 0;
    for b in &query.bindings {
        let mut preds: Vec<Pred> = Vec::new();
        flatten_steps(&b.path, &mut preds)
            .map_err(|why| format!("path for binding {} {why}", b.var))?;
        let source = match &b.source {
            Source::Db if bindings.is_empty() => BindingSource::Root,
            Source::Db => {
                return Err(format!(
                    "binding {} is db-rooted but not first; interpreter required",
                    b.var
                ));
            }
            Source::Var(v) => {
                let col = query
                    .bindings
                    .iter()
                    .position(|e| &e.var == v)
                    .ok_or_else(|| format!("binding {} starts from unbound {v}", b.var))?;
                BindingSource::Col(col)
            }
        };
        // Frontier width of one walk: the root for db-rooted bindings,
        // one source node per memoised walk otherwise.
        let mut frontier: u64 = 1;
        let mut steps: Vec<StepPlan> = Vec::with_capacity(preds.len());
        let mut walk_batched: u64 = 0;
        let mut walk_interp: u64 = 0;
        for p in &preds {
            let label = pred_label(g, p);
            let id = label.and_then(|l| index.label_id(&l));
            let count = id.map(|i| index.label_count(i) as u64).unwrap_or(0);
            // Cross-check against the schema-layer selectivity estimate;
            // the exact index count wins, the stats feed the comparison
            // when a label is missing from the index's generation.
            let est_count = count
                .max((stats.label_selectivity(&pred_key(p)) * stats.edges_reachable as f64) as u64);
            let out = est_count
                .min(frontier.saturating_mul(stats.max_fanout.max(1)))
                .max(1);
            let strategy = if est_count < frontier {
                StepStrategy::PosScan
            } else {
                StepStrategy::SpoGallop
            };
            walk_batched += match strategy {
                StepStrategy::SpoGallop => frontier.saturating_mul(log_n).saturating_add(out),
                StepStrategy::PosScan => est_count.max(1),
            };
            walk_interp += frontier.saturating_mul(avg_fanout).max(1) * NFA_EDGE_OVERHEAD;
            steps.push(StepPlan {
                label: id,
                strategy,
            });
            frontier = out;
        }
        est_cost_batched = est_cost_batched.saturating_add(walk_batched.max(1));
        est_cost_interp =
            est_cost_interp.saturating_add(prefix_rows.saturating_mul(walk_interp.max(1)));
        bindings.push(BindingPlan {
            source,
            steps,
            est_matches: frontier,
        });
        prefix_rows = prefix_rows.saturating_mul(frontier.max(1));
    }
    Ok(AccessPlan {
        bindings,
        est_cost_batched,
        est_cost_interp,
    })
}

/// The single concrete label a batchable step predicate matches.
fn pred_label(g: &Graph, p: &Pred) -> Option<Label> {
    match p {
        Pred::Symbol(name) => Some(Label::symbol(g.symbols(), name)),
        Pred::ValueEq(v) => Some(Label::Value(v.clone())),
        _ => None,
    }
}

/// The step's key in [`DataStats::label_counts`] (displayed label form).
fn pred_key(p: &Pred) -> String {
    match p {
        Pred::Symbol(name) => name.clone(),
        other => other.to_string(),
    }
}

/// A columnar batch of partial assignments: one node column per bound
/// binding, all columns the same length.
#[derive(Debug, Default)]
struct Batch {
    cols: Vec<Vec<u32>>,
}

impl Batch {
    fn rows(&self) -> usize {
        self.cols.first().map(|c| c.len()).unwrap_or(0)
    }
}

/// Tick the guard, downgrading partial-mode stops to a dead pipeline
/// (mirrors the interpreter's quiet `Ok(false)` handling).
fn gtick(guard: &Guard, n: u64, live: &mut bool) -> Result<(), String> {
    if *live && !guard.tick(n).map_err(exh)? {
        *live = false;
    }
    Ok(())
}

fn galloc(guard: &Guard, bytes: u64, live: &mut bool) -> Result<(), String> {
    if *live && !guard.alloc(bytes).map_err(exh)? {
        *live = false;
    }
    Ok(())
}

/// Charge binding nesting depth: operator `i` of the pipeline sits where
/// the interpreter's enumerator would recurse to depth `i`, so depth
/// budgets bound both execution paths identically.
fn gdepth(guard: &Guard, depth: usize, live: &mut bool) -> Result<(), String> {
    if *live && !guard.enter_depth(depth).map_err(exh)? {
        *live = false;
    }
    Ok(())
}

/// Walk a label path from `sources` (sorted ascending) through the index,
/// one frontier per step, returning the sorted, deduplicated match set.
fn walk(
    index: &TripleIndex,
    plan: &BindingPlan,
    sources: &[u32],
    guard: &Guard,
    live: &mut bool,
) -> Result<Vec<u32>, String> {
    let mut frontier: Vec<u32> = sources.to_vec();
    frontier.sort_unstable();
    frontier.dedup();
    for step in &plan.steps {
        if !*live || frontier.is_empty() {
            return Ok(Vec::new());
        }
        let Some(p) = step.label else {
            // Label absent from the data: the step matches nothing.
            return Ok(Vec::new());
        };
        let mut next: Vec<u32> = Vec::new();
        match step.strategy {
            StepStrategy::SpoGallop => {
                let run = index.spo();
                let mut cursor = 0usize;
                for &s in &frontier {
                    let (start, end) = run.range2_from(cursor, s, p);
                    cursor = end;
                    gtick(guard, (end - start) as u64 + 1, live)?;
                    if !*live {
                        return Ok(Vec::new());
                    }
                    next.extend(run.as_slice()[start..end].iter().map(|k| k[2]));
                }
            }
            StepStrategy::PosScan => {
                let keys = index.by_label(p);
                gtick(guard, keys.len() as u64 + 1, live)?;
                if !*live {
                    return Ok(Vec::new());
                }
                next.extend(
                    keys.iter()
                        .filter(|k| frontier.binary_search(&k[2]).is_ok())
                        .map(|k| k[1]),
                );
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    Ok(frontier)
}

/// Chunk a joined column set into batches of at most [`BATCH_ROWS`] rows,
/// charging the guard for the encoded bytes of each.
fn emit_batches(
    cols: Vec<Vec<u32>>,
    guard: &Guard,
    live: &mut bool,
    out: &mut Vec<Batch>,
) -> Result<(), String> {
    let rows = cols.first().map(|c| c.len()).unwrap_or(0);
    let width = cols.len();
    let mut start = 0usize;
    while start < rows && *live {
        let end = (start + BATCH_ROWS).min(rows);
        let batch = Batch {
            cols: cols.iter().map(|c| c[start..end].to_vec()).collect(),
        };
        galloc(
            guard,
            (end - start) as u64 * width as u64 * CELL_BYTES,
            live,
        )?;
        out.push(batch);
        start = end;
    }
    Ok(())
}

/// Evaluate `query` over `g` through the batched operator pipeline,
/// following `plan`. Produces the same result graph as
/// [`crate::lang::evaluate_select`] (the equivalence the golden tests
/// pin): identical assignment sets, identical condition semantics,
/// identical construction code.
pub fn evaluate_batched(
    g: &Graph,
    index: &TripleIndex,
    query: &SelectQuery,
    plan: &AccessPlan,
    opts: &EvalOptions<'_>,
) -> Result<(Graph, EvalStats), String> {
    let unlimited = Guard::unlimited();
    let guard = opts.guard.unwrap_or(&unlimited);
    let mut sp = ssd_trace::span(opts.tracer, Phase::Eval, "select.batched", Some(guard));
    let analysis = {
        let _a = ssd_trace::span(opts.tracer, Phase::Analyze, "analyze", Some(guard));
        crate::analyze::analyze_query(query, None, None)
    };
    if analysis.has_errors() {
        let errors: Vec<String> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.headline())
            .collect();
        return Err(errors.join("; "));
    }
    if plan.bindings.len() != query.bindings.len() {
        return Err("access plan does not match query bindings".to_owned());
    }
    let mut result = Graph::with_symbols(g.symbols_handle());
    let mut stats = EvalStats {
        warnings: analysis
            .diagnostics
            .iter()
            .filter(|d| !d.is_error())
            .map(|d| d.headline())
            .collect(),
        per_binding: binding_profiles(query),
        ..EvalStats::default()
    };
    let mut live = true;

    // Scan: binding 0 walked once from the root.
    let mut batches: Vec<Batch> = Vec::new();
    {
        let mut op = ssd_trace::span(opts.tracer, Phase::Index, "scan", Some(guard));
        let fuel_before = guard.steps_used();
        gdepth(guard, 1, &mut live)?;
        stats.rpe_evals += 1;
        let matches = walk(index, &plan.bindings[0], &[index.root()], guard, &mut live)?;
        if let Some(bp) = stats.per_binding.get_mut(0) {
            bp.tried += 1;
            bp.matched += matches.len() as u64;
            bp.fuel += guard.steps_used().saturating_sub(fuel_before);
        }
        op.field("var", query.bindings[0].var.as_str());
        op.field("access", plan.bindings[0].access().as_str());
        op.field("rows", matches.len());
        emit_batches(vec![matches], guard, &mut live, &mut batches)?;
        op.field("batches", batches.len());
    }

    // MergeJoin: one operator per remaining binding, match lists memoised
    // per distinct source node.
    for (i, bplan) in plan.bindings.iter().enumerate().skip(1) {
        let mut op = ssd_trace::span(opts.tracer, Phase::Index, "merge-join", Some(guard));
        let BindingSource::Col(src_col) = bplan.source else {
            return Err(format!(
                "binding {} is db-rooted but not first; interpreter required",
                query.bindings[i].var
            ));
        };
        let fuel_before = guard.steps_used();
        gdepth(guard, i + 1, &mut live)?;
        let mut memo: HashMap<u32, Vec<u32>> = HashMap::new();
        let (mut rows_in, mut rows_out, mut batches_in) = (0u64, 0u64, 0u64);
        let mut joined: Vec<Batch> = Vec::new();
        for batch in &batches {
            if !live {
                break;
            }
            batches_in += 1;
            rows_in += batch.rows() as u64;
            // Probe distinct sources in ascending order so SPO cursors
            // only ever move forward (the merge-join order).
            let mut fresh: Vec<u32> = batch.cols[src_col]
                .iter()
                .copied()
                .filter(|s| !memo.contains_key(s))
                .collect();
            fresh.sort_unstable();
            fresh.dedup();
            for s in fresh {
                stats.rpe_evals += 1;
                let matches = walk(index, bplan, &[s], guard, &mut live)?;
                if let Some(bp) = stats.per_binding.get_mut(i) {
                    bp.tried += 1;
                    bp.matched += matches.len() as u64;
                }
                memo.insert(s, matches);
                if !live {
                    break;
                }
            }
            if !live {
                break;
            }
            // Expand rows by their match lists, columnar.
            let width = batch.cols.len();
            let mut cols: Vec<Vec<u32>> = vec![Vec::new(); width + 1];
            for r in 0..batch.rows() {
                let matches = &memo[&batch.cols[src_col][r]];
                for m in matches {
                    for (col, src) in cols.iter_mut().zip(&batch.cols) {
                        col.push(src[r]);
                    }
                    cols[width].push(*m);
                }
            }
            rows_out += cols[width].len() as u64;
            emit_batches(cols, guard, &mut live, &mut joined)?;
        }
        if let Some(bp) = stats.per_binding.get_mut(i) {
            bp.fuel += guard.steps_used().saturating_sub(fuel_before);
        }
        op.field("var", query.bindings[i].var.as_str());
        op.field("access", bplan.access().as_str());
        op.field("batches", batches_in);
        op.field("rows_in", rows_in);
        op.field("rows_out", rows_out);
        batches = joined;
    }

    // Filter: the whole where-clause per row, interpreter semantics.
    let conjuncts: Vec<&Cond> = query
        .condition
        .as_ref()
        .map(|c| c.conjuncts())
        .unwrap_or_default();
    let mut env: HashMap<String, BindVal> = HashMap::new();
    if !conjuncts.is_empty() {
        let mut op = ssd_trace::span(opts.tracer, Phase::Index, "filter", Some(guard));
        let (mut rows_in, mut rows_out) = (0u64, 0u64);
        let mut filtered: Vec<Batch> = Vec::new();
        for batch in &batches {
            if !live {
                break;
            }
            rows_in += batch.rows() as u64;
            gtick(guard, batch.rows() as u64, &mut live)?;
            let mut keep: Vec<usize> = Vec::new();
            for r in 0..batch.rows() {
                if !live {
                    break;
                }
                env.clear();
                for (c, b) in query.bindings.iter().enumerate() {
                    env.insert(
                        b.var.clone(),
                        BindVal::Tree(NodeId::from_index(batch.cols[c][r] as usize)),
                    );
                }
                let mut ok = true;
                for c in &conjuncts {
                    if !eval_cond(g, c, &env, guard, &mut stats)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    keep.push(r);
                }
            }
            rows_out += keep.len() as u64;
            let cols: Vec<Vec<u32>> = batch
                .cols
                .iter()
                .map(|col| keep.iter().map(|&r| col[r]).collect())
                .collect();
            emit_batches(cols, guard, &mut live, &mut filtered)?;
        }
        op.field("rows_in", rows_in);
        op.field("rows_out", rows_out);
        // Every row that reached the filter was a complete assignment.
        stats.assignments_tried += rows_in as usize;
        batches = filtered;
    } else {
        stats.assignments_tried += batches.iter().map(Batch::rows).sum::<usize>();
    }

    // Project: construct one result tree per surviving assignment.
    {
        let mut op = ssd_trace::span(opts.tracer, Phase::Index, "project", Some(guard));
        let atom_leaf = result.add_node();
        let mut copy_memo: HashMap<NodeId, NodeId> = HashMap::new();
        let mut rows = 0u64;
        for batch in &batches {
            if !live {
                break;
            }
            gtick(guard, batch.rows() as u64, &mut live)?;
            for r in 0..batch.rows() {
                if !live {
                    break;
                }
                galloc(guard, CONSTRUCT_COST, &mut live)?;
                if !live {
                    break;
                }
                env.clear();
                for (c, b) in query.bindings.iter().enumerate() {
                    env.insert(
                        b.var.clone(),
                        BindVal::Tree(NodeId::from_index(batch.cols[c][r] as usize)),
                    );
                }
                stats.results_constructed += 1;
                rows += 1;
                let edges = construct_edges(
                    g,
                    &query.construct,
                    &env,
                    &mut result,
                    atom_leaf,
                    &mut copy_memo,
                )?;
                let root = result.root();
                for (label, to) in edges {
                    result.add_edge(root, label, to);
                }
            }
        }
        op.field("rows", rows);
    }

    result.gc();
    note_truncation(guard, &mut stats);
    finish_select_trace(opts.tracer, &mut sp, &stats);
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::eval::evaluate_select;
    use crate::lang::parser::parse_query;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::parse_graph;

    fn movie_db() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                                Cast: {Actors: "Bogart", Actors: "Bacall"},
                                Director: "Curtiz",
                                Year: 1942}},
                Entry: {Movie: {Title: "Play it again, Sam",
                                Cast: {Credit: {Actors: "Allen"}},
                                Director: "Allen",
                                Year: 1972}},
                Entry: {TV_Show: {Title: "Annie Hall Special",
                                  Episode: 3}}}"#,
        )
        .unwrap()
    }

    fn both_ways(g: &Graph, src: &str) -> (Graph, Graph) {
        let q = parse_query(src).unwrap();
        let index = TripleIndex::build(g).unwrap();
        let stats = DataStats::collect(g);
        let plan = plan_access(g, &index, &stats, &q).unwrap();
        let opts = EvalOptions::default();
        let (batched, _) = evaluate_batched(g, &index, &q, &plan, &opts).unwrap();
        let (interp, _) = evaluate_select(g, &q, &opts).unwrap();
        (batched, interp)
    }

    #[test]
    fn batched_matches_interpreter_on_scans_joins_and_filters() {
        let g = movie_db();
        for q in [
            "select T from db.Entry.Movie.Title T",
            "select {Title: T} from db.Entry.Movie M, M.Title T",
            r#"select {Pair: {T: T, D: D}} from db.Entry.Movie M, M.Title T, M.Director D"#,
            r#"select T from db.Entry.Movie M, M.Title T, M.Year Y where Y < 1950"#,
            r#"select {Found: M} from db.Entry.Movie M, M.Title T where T = "Casablanca""#,
            r#"select T from db.Entry.Movie M, M.Title T where exists M.Cast.Actors"#,
            r#"select {hit: 1} from db.Entry.Movie M"#,
            "select T from db.Nope.Title T",
        ] {
            let (batched, interp) = both_ways(&g, q);
            assert!(graphs_bisimilar(&batched, &interp), "diverged on {q}");
        }
    }

    #[test]
    fn planner_rejects_unbatchable_shapes() {
        let g = movie_db();
        let index = TripleIndex::build(&g).unwrap();
        let stats = DataStats::collect(&g);
        for (q, why) in [
            ("select T from db.Entry.%.Title T", "predicate"),
            ("select T from db.%*.Title T", "Kleene star"),
            (r#"select L from db.Entry.Movie.^L X"#, "label variable"),
            ("select T from db.(Movie|TV_Show).Title T", "alternation"),
        ] {
            let q = parse_query(q).unwrap();
            let err = plan_access(&g, &index, &stats, &q).unwrap_err();
            assert!(err.contains(why), "{err:?} should mention {why}");
        }
    }

    #[test]
    fn planner_chooses_pos_for_rare_labels() {
        // 40 wide entries but only one Rare edge: after the Entry step the
        // frontier is wide, so the Rare step should scan POS instead of
        // galloping SPO per frontier node.
        let mut src = String::from("{");
        for i in 0..40 {
            src.push_str(&format!("Entry: {{N: {i}}}, "));
        }
        src.push_str("Entry: {Rare: 1}}");
        let g = parse_graph(&src).unwrap();
        let index = TripleIndex::build(&g).unwrap();
        let stats = DataStats::collect(&g);
        let q = parse_query("select X from db.Entry.Rare X").unwrap();
        let plan = plan_access(&g, &index, &stats, &q).unwrap();
        assert_eq!(plan.bindings[0].steps[0].strategy, StepStrategy::SpoGallop);
        assert_eq!(plan.bindings[0].steps[1].strategy, StepStrategy::PosScan);
        let (batched, interp) = {
            let opts = EvalOptions::default();
            let (b, _) = evaluate_batched(&g, &index, &q, &plan, &opts).unwrap();
            let (i, _) = evaluate_select(&g, &q, &opts).unwrap();
            (b, i)
        };
        assert!(graphs_bisimilar(&batched, &interp));
    }

    #[test]
    fn fallback_note_is_ssd050() {
        let d = fallback_note("path for binding T uses Kleene star");
        assert_eq!(d.code, Code::IndexFallback);
        assert_eq!(d.code.as_str(), "SSD050");
        assert!(!d.is_error(), "SSD050 is a note, not an error");
    }

    #[test]
    fn guard_fuel_is_charged_and_exhaustion_reported() {
        let g = movie_db();
        let q = parse_query("select T from db.Entry.Movie.Title T").unwrap();
        let index = TripleIndex::build(&g).unwrap();
        let stats = DataStats::collect(&g);
        let plan = plan_access(&g, &index, &stats, &q).unwrap();
        let guard = ssd_guard::Budget::unlimited().max_steps(3).guard();
        let opts = EvalOptions::default().with_guard(&guard);
        let err = evaluate_batched(&g, &index, &q, &plan, &opts).unwrap_err();
        assert!(err.contains("SSD1"), "exhaustion headline expected: {err}");
    }
}
