//! # ssd-query — querying and transforming semistructured data (§3, §4)
//!
//! The query-language layer of the PODS '97 reproduction:
//!
//! * [`rpe`] — regular path expressions: AST, Thompson NFA, subset DFA,
//!   and product-reachability evaluation over data graphs.
//! * [`lang`] — the UnQL/Lorel-flavoured select-from-where surface
//!   language: parser, validator, evaluator with optimizer knobs.
//! * [`recursion`] — structural recursion (UnQL's computational core):
//!   the horizontal `ext` and vertical `gext` operators, evaluated with
//!   the ε-edge graph-transformation technique of \[10\] so they are total
//!   on cyclic data.
//! * [`restructure`] — deep restructuring built on `gext`: relabel,
//!   delete, collapse, short-circuit.
//! * [`browse`] — the §1.3 browsing queries, scan-based and index-based.
//! * [`optimizer`] — query rewrites and the DataGuide/schema pruning hook.
//! * [`decompose`] — parallel query decomposition over graph "sites"
//!   (\[35\]).
//! * [`relational_fragment`] — the SPJRU fragment compiled onto the graph
//!   engine, cross-checked against a native relational evaluator (the
//!   "UnQL restricted to relational data = relational algebra" claim).
//! * [`views`] — named queries materialised in definition order, with
//!   view-of-view composition (\[4\]).
//! * [`analyze`] — the `ssd-analyze` static-analysis pass: rustc-style
//!   diagnostics (SSD0xx codes with source spans) over queries, RPEs, and
//!   graph-datalog programs; backs `ssd check` and gates evaluation.

pub mod analyze;
pub mod batch;
pub mod browse;
pub mod decompose;
pub mod lang;
pub mod optimizer;
pub mod recursion;
pub mod relational_fragment;
pub mod restructure;
pub mod rpe;
pub mod views;

pub use analyze::{analyze_query, analyze_query_src, PathTypes, QueryAnalysis};
pub use batch::{evaluate_batched, plan_access, AccessPlan, BindingPlan, StepStrategy};
pub use lang::{
    evaluate_select, parse_query, parse_query_spanned, BindingProfile, EvalOptions, EvalStats,
    SelectQuery,
};
pub use rpe::{eval_rpe, Nfa, Rpe, Step};
