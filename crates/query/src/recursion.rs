//! Structural recursion — the second computational strategy of §3.
//!
//! "Here the starting point is that of structural recursion ... there are
//! natural forms of computation associated with the type. For
//! semistructured data one starts with the natural form of recursion
//! associated with the recursive datatype of labeled trees. However, some
//! restrictions need to be placed for such recursive programs to be
//! well-defined: we want them to be well-defined on graphs with cycles.
//! These restrictions give rise to an algebra that can be viewed as having
//! two components: a "horizontal" component that expresses computations
//! across the edges of a given node ...; and a "vertical" component that
//! expresses computations that go to arbitrary depths in the graph."
//!
//! The vertical operator here is UnQL's `gext(f)`: `f` maps each edge
//! `(l, t)` to a tree template whose leaves may refer to the *recursive
//! result* on `t`; the results of all edges of a node are unioned. The
//! restriction making this total on cyclic data is exactly the template
//! discipline: recursion appears only at leaf positions, so evaluation is
//! a *graph transformation* — each input node maps to one output node,
//! cycles map to cycles. Edge-collapsing templates produce ε-edges which a
//! final elimination pass removes; this is "the basic graph transformation
//! technique" of \[10\] that §4 credits with enabling optimization.

use ssd_graph::ops::copy_subgraph;
use ssd_graph::{Graph, Label, NodeId, Value};
use ssd_guard::{Exhausted, Guard};
use ssd_schema::Pred;
use std::collections::{HashMap, HashSet, VecDeque};

/// Fault-injection seam: hit once per input node processed by `gext`.
pub const FP_GEXT_NODE: &str = "recursion.node";

/// Approximate bytes one ε-graph node costs.
const EPS_NODE_COST: u64 = 64;

/// A label position in a template.
#[derive(Debug, Clone, PartialEq)]
pub enum TLabel {
    /// The original edge label.
    Orig,
    Symbol(String),
    Value(Value),
}

/// A tree position in a template.
#[derive(Debug, Clone, PartialEq)]
pub enum TTree {
    /// The recursive result on the edge's target (the vertical call).
    Recur,
    /// A verbatim copy of the edge's original target subtree (recursion
    /// stops here).
    Keep,
    /// The empty tree `{}`.
    Empty,
    /// An atom.
    Atom(Value),
    /// A constructed node.
    Node(Vec<(TLabel, TTree)>),
}

/// What an input edge contributes to the output of its source node.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeTemplate {
    /// Nothing: the edge (and, unless reachable otherwise, its subtree)
    /// disappears.
    Delete,
    /// The recursive result of the target, spliced in place (collapse the
    /// edge). Realized as an ε-edge, eliminated afterwards.
    Collapse,
    /// A set of labeled children.
    Edges(Vec<(TLabel, TTree)>),
}

impl EdgeTemplate {
    /// The identity contribution: `{orig-label: recur}`.
    pub fn identity() -> EdgeTemplate {
        EdgeTemplate::Edges(vec![(TLabel::Orig, TTree::Recur)])
    }

    /// Relabel to a fixed symbol, keep recursing.
    pub fn relabel_symbol(name: &str) -> EdgeTemplate {
        EdgeTemplate::Edges(vec![(TLabel::Symbol(name.to_owned()), TTree::Recur)])
    }

    /// Relabel to a fixed value, keep recursing.
    pub fn relabel_value(v: impl Into<Value>) -> EdgeTemplate {
        EdgeTemplate::Edges(vec![(TLabel::Value(v.into()), TTree::Recur)])
    }
}

/// One case of a transducer: the first case whose predicate matches the
/// edge label fires.
#[derive(Debug, Clone)]
pub struct Case {
    pub pred: Pred,
    pub template: EdgeTemplate,
}

/// A structural-recursion transducer.
#[derive(Debug, Clone)]
pub struct Transducer {
    pub cases: Vec<Case>,
    /// Fired when no case matches. Defaults to [`EdgeTemplate::identity`].
    pub default: EdgeTemplate,
}

impl Default for Transducer {
    fn default() -> Self {
        Transducer {
            cases: Vec::new(),
            default: EdgeTemplate::identity(),
        }
    }
}

impl Transducer {
    pub fn new() -> Transducer {
        Transducer::default()
    }

    /// Add a case (first match wins).
    pub fn case(mut self, pred: Pred, template: EdgeTemplate) -> Transducer {
        self.cases.push(Case { pred, template });
        self
    }

    /// Replace the default template.
    pub fn otherwise(mut self, template: EdgeTemplate) -> Transducer {
        self.default = template;
        self
    }

    fn template_for(&self, label: &Label, g: &Graph) -> &EdgeTemplate {
        self.cases
            .iter()
            .find(|c| c.pred.matches(label, g.symbols()))
            .map(|c| &c.template)
            .unwrap_or(&self.default)
    }
}

/// Internal build graph with optional-label (ε) edges.
struct EpsGraph {
    edges: Vec<Vec<(Option<Label>, usize)>>,
}

impl EpsGraph {
    fn new() -> EpsGraph {
        EpsGraph { edges: Vec::new() }
    }

    fn add_node(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.edges.len() - 1
    }

    fn add_edge(&mut self, from: usize, label: Option<Label>, to: usize) {
        let e = (label, to);
        if !self.edges[from].contains(&e) {
            self.edges[from].push(e);
        }
    }
}

/// Evaluation state for one gext run.
struct GextState<'g> {
    g: &'g Graph,
    eps: EpsGraph,
    out_of: HashMap<NodeId, usize>,
    /// Keep-copies materialised after the main pass: (eps node, source).
    keeps: Vec<(usize, NodeId)>,
    queue: VecDeque<NodeId>,
}

impl<'g> GextState<'g> {
    fn out_node(&mut self, n: NodeId) -> usize {
        if let Some(&o) = self.out_of.get(&n) {
            return o;
        }
        let o = self.eps.add_node();
        self.out_of.insert(n, o);
        self.queue.push_back(n);
        o
    }

    fn resolve_label(&self, tl: &TLabel, orig: &Label) -> Label {
        match tl {
            TLabel::Orig => orig.clone(),
            TLabel::Symbol(name) => Label::symbol(self.g.symbols(), name),
            TLabel::Value(v) => Label::Value(v.clone()),
        }
    }

    fn apply_template(
        &mut self,
        template: &EdgeTemplate,
        label: &Label,
        target: NodeId,
        out_n: usize,
    ) {
        match template {
            EdgeTemplate::Delete => {}
            EdgeTemplate::Collapse => {
                let out_t = self.out_node(target);
                self.eps.add_edge(out_n, None, out_t);
            }
            EdgeTemplate::Edges(entries) => {
                for (tl, tt) in entries {
                    let l = self.resolve_label(tl, label);
                    let child = self.instantiate_tree(tt, label, target);
                    self.eps.add_edge(out_n, Some(l), child);
                }
            }
        }
    }

    fn instantiate_tree(&mut self, tt: &TTree, label: &Label, target: NodeId) -> usize {
        match tt {
            TTree::Recur => self.out_node(target),
            TTree::Keep => {
                let n = self.eps.add_node();
                self.keeps.push((n, target));
                n
            }
            TTree::Empty => self.eps.add_node(),
            TTree::Atom(v) => {
                let n = self.eps.add_node();
                let leaf = self.eps.add_node();
                self.eps.add_edge(n, Some(Label::Value(v.clone())), leaf);
                n
            }
            TTree::Node(entries) => {
                let n = self.eps.add_node();
                for (tl, sub) in entries {
                    let l = self.resolve_label(tl, label);
                    let child = self.instantiate_tree(sub, label, target);
                    self.eps.add_edge(n, Some(l), child);
                }
                n
            }
        }
    }
}

/// Vertical structural recursion: apply `t` to every edge reachable from
/// `root`, unioning contributions per node. Total on cyclic inputs; the
/// output of a cyclic input is cyclic (never infinite).
pub fn gext(g: &Graph, root: NodeId, t: &Transducer) -> Graph {
    // An unlimited guard never reports exhaustion.
    match gext_guarded(g, root, t, &Guard::unlimited()) {
        Ok(out) => out,
        Err(_) => Graph::with_symbols(g.symbols_handle()),
    }
}

/// As [`gext`], under a resource [`Guard`]: fuel is ticked per input node
/// and per edge processed (main pass and ε-elimination), memory accounted
/// per ε-graph node. In partial mode exhaustion yields the transformation
/// of the subgraph visited so far — still a well-formed graph.
pub fn gext_guarded(
    g: &Graph,
    root: NodeId,
    t: &Transducer,
    guard: &Guard,
) -> Result<Graph, Exhausted> {
    let mut st = GextState {
        g,
        eps: EpsGraph::new(),
        out_of: HashMap::new(),
        keeps: Vec::new(),
        queue: VecDeque::new(),
    };
    let root_out = st.out_node(root);
    let mut processed: HashSet<NodeId> = HashSet::new();
    'main: while let Some(n) = st.queue.pop_front() {
        if !processed.insert(n) {
            continue;
        }
        if !(guard.tick(1)? && guard.fail_point(FP_GEXT_NODE)?) {
            break 'main;
        }
        let out_n = st.out_of[&n];
        let eps_before = st.eps.edges.len();
        for e in g.edges(n).to_vec() {
            if !guard.tick(1)? {
                break 'main;
            }
            let template = t.template_for(&e.label, g).clone();
            st.apply_template(&template, &e.label, e.to, out_n);
        }
        let grown = (st.eps.edges.len() - eps_before) as u64;
        if !guard.alloc(grown * EPS_NODE_COST)? {
            break 'main;
        }
    }

    // ε-elimination: real edges of each node = non-ε edges reachable
    // through ε* from it.
    let eps = &st.eps;
    let closure = |start: usize| -> Vec<usize> {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(s) = stack.pop() {
            for (l, to) in &eps.edges[s] {
                if l.is_none() && !seen.contains(to) {
                    seen.push(*to);
                    stack.push(*to);
                }
            }
        }
        seen
    };
    let mut result = Graph::with_symbols(g.symbols_handle());
    let mut node_map: Vec<NodeId> = Vec::with_capacity(eps.edges.len());
    for i in 0..eps.edges.len() {
        if i == root_out {
            node_map.push(result.root());
        } else {
            node_map.push(result.add_node());
        }
    }
    'elim: for i in 0..eps.edges.len() {
        let from = node_map[i];
        for c in closure(i) {
            if !guard.tick(1)? {
                break 'elim;
            }
            for (l, to) in &eps.edges[c] {
                if let Some(label) = l {
                    result.add_edge(from, label.clone(), node_map[*to]);
                }
            }
        }
    }
    // Materialise Keep copies.
    for (eps_node, src) in st.keeps {
        if !guard.tick(1)? {
            break;
        }
        let copied = copy_subgraph(g, src, &mut result);
        let edges = result.edges(copied).to_vec();
        let target = node_map[eps_node];
        for e in edges {
            result.add_edge(target, e.label, e.to);
        }
    }
    result.gc();
    Ok(result)
}

/// Horizontal structural recursion (`ext`): apply the transducer to the
/// edges of `root` only; `Recur` positions behave like `Keep` (no descent)
/// and `Collapse` splices the target's original edge set. This is the
/// fixed-depth "computation across the edges of a given node".
pub fn ext(g: &Graph, root: NodeId, t: &Transducer) -> Graph {
    // An unlimited guard never reports exhaustion.
    match ext_guarded(g, root, t, &Guard::unlimited()) {
        Ok(out) => out,
        Err(_) => Graph::with_symbols(g.symbols_handle()),
    }
}

/// As [`ext`], under a resource [`Guard`]: fuel is ticked per top-level
/// edge. In partial mode exhaustion yields the edges transformed so far.
pub fn ext_guarded(
    g: &Graph,
    root: NodeId,
    t: &Transducer,
    guard: &Guard,
) -> Result<Graph, Exhausted> {
    let mut result = Graph::with_symbols(g.symbols_handle());
    let out_root = result.root();
    for e in g.edges(root).to_vec() {
        if !guard.tick(1)? {
            break;
        }
        let template = t.template_for(&e.label, g).clone();
        match template {
            EdgeTemplate::Delete => {}
            EdgeTemplate::Collapse => {
                let copied = copy_subgraph(g, e.to, &mut result);
                for ce in result.edges(copied).to_vec() {
                    result.add_edge(out_root, ce.label, ce.to);
                }
            }
            EdgeTemplate::Edges(entries) => {
                for (tl, tt) in &entries {
                    let label = match tl {
                        TLabel::Orig => e.label.clone(),
                        TLabel::Symbol(name) => Label::symbol(result.symbols(), name),
                        TLabel::Value(v) => Label::Value(v.clone()),
                    };
                    let child = build_shallow_tree(tt, &e.label, e.to, g, &mut result);
                    result.add_edge(out_root, label, child);
                }
            }
        }
    }
    result.gc();
    Ok(result)
}

fn build_shallow_tree(
    tt: &TTree,
    orig_label: &Label,
    target: NodeId,
    g: &Graph,
    result: &mut Graph,
) -> NodeId {
    match tt {
        TTree::Recur | TTree::Keep => copy_subgraph(g, target, result),
        TTree::Empty => result.add_node(),
        TTree::Atom(v) => {
            let n = result.add_node();
            result.add_value_edge(n, v.clone());
            n
        }
        TTree::Node(entries) => {
            let n = result.add_node();
            for (tl, sub) in entries {
                let label = match tl {
                    TLabel::Orig => orig_label.clone(),
                    TLabel::Symbol(name) => Label::symbol(result.symbols(), name),
                    TLabel::Value(v) => Label::Value(v.clone()),
                };
                let child = build_shallow_tree(sub, orig_label, target, g, result);
                result.add_edge(n, label, child);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::parse_graph;

    fn identity() -> Transducer {
        Transducer::new()
    }

    #[test]
    fn identity_gext_is_bisimilar() {
        for src in [
            "{}",
            r#"{a: 1, b: {c: {d: "x"}}}"#,
            "@x = {next: @x, stop: 1}",
            "{a: @s = {v: 1}, b: @s}",
        ] {
            let g = parse_graph(src).unwrap();
            let out = gext(&g, g.root(), &identity());
            assert!(graphs_bisimilar(&g, &out), "identity broke {src}");
        }
    }

    #[test]
    fn relabel_fixes_bacall() {
        // §3: "in UnQL one can write a query that corrects the egregious
        // error in the "Bacall" edge label" (Figure 1 labels her edge
        // "Play it again, Sam" by mistake; here we relabel a bad label).
        let g = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: "Bacal"}}"#).unwrap();
        let t = Transducer::new().case(
            Pred::ValueEq(Value::Str("Bacal".into())),
            EdgeTemplate::relabel_value("Bacall"),
        );
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: "Bacall"}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn relabel_symbols_deeply() {
        let g = parse_graph("{a: {a: {a: 1}}}").unwrap();
        let t = Transducer::new().case(Pred::Symbol("a".into()), EdgeTemplate::relabel_symbol("b"));
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{b: {b: {b: 1}}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn delete_edges_prunes_subtrees() {
        let g = parse_graph(r#"{keep: {secret: 1, open: 2}, secret: 3}"#).unwrap();
        let t = Transducer::new().case(Pred::Symbol("secret".into()), EdgeTemplate::Delete);
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{keep: {open: 2}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn collapse_splices_children() {
        // Collapsing Cast edges lifts actors up to the movie.
        let g = parse_graph(r#"{Movie: {Cast: {Actors: "B", Actors: "L"}, Title: "C"}}"#).unwrap();
        let t = Transducer::new().case(Pred::Symbol("Cast".into()), EdgeTemplate::Collapse);
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph(r#"{Movie: {Actors: "B", Actors: "L", Title: "C"}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn collapse_chain_of_collapses() {
        let g = parse_graph("{a: {b: {c: {v: 1}}}}").unwrap();
        let t = Transducer::new()
            .case(Pred::Symbol("a".into()), EdgeTemplate::Collapse)
            .case(Pred::Symbol("b".into()), EdgeTemplate::Collapse)
            .case(Pred::Symbol("c".into()), EdgeTemplate::Collapse);
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{v: 1}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn collapse_everything_on_cycle_is_empty() {
        // Collapsing every edge of a pure cycle leaves the empty tree.
        let g = parse_graph("@x = {next: @x}").unwrap();
        let t = Transducer::new().otherwise(EdgeTemplate::Collapse);
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn collapse_on_cycle_with_data_keeps_data() {
        let g = parse_graph("@x = {next: @x, v: 1}").unwrap();
        let t = Transducer::new().case(Pred::Symbol("next".into()), EdgeTemplate::Collapse);
        let out = gext(&g, g.root(), &t);
        // next edges vanish; v edge remains (once, by set semantics).
        let expect = parse_graph("{v: 1}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn cyclic_input_produces_cyclic_output() {
        let g = parse_graph("@x = {a: @x}").unwrap();
        let t = Transducer::new().case(Pred::Symbol("a".into()), EdgeTemplate::relabel_symbol("b"));
        let out = gext(&g, g.root(), &t);
        assert!(out.has_cycle());
        let expect = parse_graph("@x = {b: @x}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn wrap_edges_in_metadata() {
        // Each edge becomes {orig-label: {found: recur}}.
        let g = parse_graph("{a: {b: 1}}").unwrap();
        let t = Transducer::new().otherwise(EdgeTemplate::Edges(vec![(
            TLabel::Orig,
            TTree::Node(vec![(TLabel::Symbol("found".into()), TTree::Recur)]),
        )]));
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{a: {found: {b: {found: {1: {found: {}}}}}}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn keep_stops_recursion() {
        // Relabel only top-level a-edges; below them, keep verbatim
        // (so nested a-edges survive).
        let g = parse_graph("{a: {a: 1}}").unwrap();
        let t = Transducer::new().case(
            Pred::Symbol("a".into()),
            EdgeTemplate::Edges(vec![(TLabel::Symbol("b".into()), TTree::Keep)]),
        );
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{b: {a: 1}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn atom_and_empty_templates() {
        let g = parse_graph("{a: {junk: 1}, b: 2}").unwrap();
        let t = Transducer::new()
            .case(
                Pred::Symbol("a".into()),
                EdgeTemplate::Edges(vec![(
                    TLabel::Symbol("flag".into()),
                    TTree::Atom(Value::Bool(true)),
                )]),
            )
            .case(
                Pred::Symbol("b".into()),
                EdgeTemplate::Edges(vec![(TLabel::Orig, TTree::Empty)]),
            );
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph("{flag: true, b: {}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn ext_applies_only_at_top_level() {
        let g = parse_graph("{a: {a: 1}, b: 2}").unwrap();
        let t = Transducer::new().case(Pred::Symbol("a".into()), EdgeTemplate::relabel_symbol("x"));
        let out = ext(&g, g.root(), &t);
        // Top-level a renamed; nested a untouched.
        let expect = parse_graph("{x: {a: 1}, b: 2}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn ext_collapse_splices_at_top() {
        let g = parse_graph("{wrap: {x: 1, y: 2}, z: 3}").unwrap();
        let t = Transducer::new().case(Pred::Symbol("wrap".into()), EdgeTemplate::Collapse);
        let out = ext(&g, g.root(), &t);
        let expect = parse_graph("{x: 1, y: 2, z: 3}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn ext_delete_filters_top_edges() {
        let g = parse_graph("{a: 1, b: 2}").unwrap();
        let t = Transducer::new().case(Pred::Symbol("a".into()), EdgeTemplate::Delete);
        let out = ext(&g, g.root(), &t);
        let expect = parse_graph("{b: 2}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn shared_subtrees_stay_shared() {
        let g = parse_graph("{p: @s = {v: 1}, q: @s}").unwrap();
        let out = gext(&g, g.root(), &identity());
        let p = out.successors_by_name(out.root(), "p")[0];
        let q = out.successors_by_name(out.root(), "q")[0];
        assert_eq!(p, q, "gext must preserve sharing (graph transformation)");
    }

    #[test]
    fn type_based_cases() {
        // Redact every string value to "###".
        let g = parse_graph(r#"{name: "Bogart", age: 42}"#).unwrap();
        let t = Transducer::new().case(
            Pred::Kind(ssd_graph::LabelKind::Str),
            EdgeTemplate::relabel_value("XXX"),
        );
        let out = gext(&g, g.root(), &t);
        let expect = parse_graph(r#"{name: "XXX", age: 42}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }
}
