//! Deep restructuring operations (§3).
//!
//! "The SQL or OQL like languages ... are not capable of performing complex
//! or 'deep' restructuring of the data. Simple examples of such operations
//! include deleting/collapsing edges with a certain property, relabeling
//! edges, or performing local interchanges. ... One can also perform a
//! number of global restructuring functions such as deleting edges with
//! certain properties or adding new edges to 'short-circuit' various
//! paths."
//!
//! All of these are thin wrappers over [`crate::recursion::gext`] except
//! [`shortcut`] and [`interchange`], which need to see two edges at once
//! and are implemented as direct graph transformations.

use crate::recursion::{gext, EdgeTemplate, Transducer};
use crate::rpe::{eval_rpe, Rpe};
use ssd_graph::ops::copy_subgraph;
use ssd_graph::{Graph, Label, NodeId};
use ssd_schema::Pred;

/// Relabel every edge matching `pred` to the symbol `new_name`.
///
/// This is the "correct the egregious error in the 'Bacall' edge label"
/// query of §3 in general form.
pub fn relabel_edges(g: &Graph, pred: Pred, new_name: &str) -> Graph {
    let t = Transducer::new().case(pred, EdgeTemplate::relabel_symbol(new_name));
    gext(g, g.root(), &t)
}

/// Relabel matching edges to a fixed value label.
pub fn relabel_edges_to_value(g: &Graph, pred: Pred, v: impl Into<ssd_graph::Value>) -> Graph {
    let t = Transducer::new().case(pred, EdgeTemplate::relabel_value(v));
    gext(g, g.root(), &t)
}

/// Delete every edge matching `pred` (and any subtree only reachable
/// through deleted edges).
pub fn delete_edges(g: &Graph, pred: Pred) -> Graph {
    let t = Transducer::new().case(pred, EdgeTemplate::Delete);
    gext(g, g.root(), &t)
}

/// Collapse every edge matching `pred`: the edge disappears and its
/// target's (transformed) children are spliced into its source.
pub fn collapse_edges(g: &Graph, pred: Pred) -> Graph {
    let t = Transducer::new().case(pred, EdgeTemplate::Collapse);
    gext(g, g.root(), &t)
}

/// Short-circuit: wherever an edge matching `first` is followed by an edge
/// matching `second`, add a direct edge labeled `shortcut_name` from the
/// source of the first to the target of the second. Original edges are
/// kept. (The "adding new edges to short-circuit various paths" of §3.)
pub fn shortcut(g: &Graph, first: &Pred, second: &Pred, shortcut_name: &str) -> Graph {
    let mut out = Graph::with_symbols(g.symbols_handle());
    let root = copy_subgraph(g, g.root(), &mut out);
    out.set_root(root);
    out.gc();
    let label = Label::symbol(out.symbols(), shortcut_name);
    let syms = out.symbols_handle();
    let mut additions: Vec<(NodeId, NodeId)> = Vec::new();
    for n in out.reachable() {
        for e1 in out.edges(n) {
            if first.matches(&e1.label, &syms) {
                for e2 in out.edges(e1.to) {
                    if second.matches(&e2.label, &syms) {
                        additions.push((n, e2.to));
                    }
                }
            }
        }
    }
    for (from, to) in additions {
        out.add_edge(from, label.clone(), to);
    }
    out
}

/// Local interchange: swap the order of two nested edge layers. Wherever
/// `outer.inner` occurs, the result has `inner.outer` (with the same final
/// target). E.g. `{Cast: {Actors: x}}` ⇒ `{Actors: {Cast: x}}`.
/// Non-matching edges are copied unchanged.
pub fn interchange(g: &Graph, outer: &Pred, inner: &Pred) -> Graph {
    let mut out = Graph::with_symbols(g.symbols_handle());
    let syms = g.symbols_handle();
    // Copy the graph wholesale first (preserves cycles/sharing), then for
    // each interchange site rewrite edges on the copy.
    let root = copy_subgraph(g, g.root(), &mut out);
    out.set_root(root);
    out.gc();
    let mut rewrites: Vec<(NodeId, Label, NodeId, Label, NodeId)> = Vec::new();
    for n in out.reachable() {
        for e1 in out.edges(n) {
            if outer.matches(&e1.label, &syms) {
                for e2 in out.edges(e1.to) {
                    if inner.matches(&e2.label, &syms) {
                        rewrites.push((n, e1.label.clone(), e1.to, e2.label.clone(), e2.to));
                    }
                }
            }
        }
    }
    for (src, outer_label, mid, inner_label, tgt) in rewrites {
        // Remove outer edge; add inner-first chain. The old mid node keeps
        // its other children (it may become unreachable if this was its
        // only parent and it has no other content).
        out.remove_edge(src, &outer_label, mid);
        out.remove_edge(mid, &inner_label, tgt);
        let fresh = out.add_node();
        out.add_edge(src, inner_label, fresh);
        out.add_edge(fresh, outer_label.clone(), tgt);
        // Any remaining children of the old middle node stay reachable
        // under the original outer edge so no data is lost.
        if !out.is_leaf(mid) {
            out.add_edge(src, outer_label, mid);
        }
    }
    out.gc();
    out
}

/// Select the subgraph reachable along `path` and re-root a fresh graph at
/// the union of the targets — "bringing information to the surface".
pub fn focus(g: &Graph, path: &Rpe) -> Graph {
    let targets = eval_rpe(g, g.root(), path);
    let mut out = Graph::with_symbols(g.symbols_handle());
    let mut edges = Vec::new();
    for t in targets {
        let img = copy_subgraph(g, t, &mut out);
        for e in out.edges(img).to_vec() {
            edges.push(e);
        }
    }
    let root = out.root();
    for e in edges {
        out.add_edge(root, e.label, e.to);
    }
    out.gc();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::parse_graph;
    use ssd_graph::Value;

    #[test]
    fn relabel_bacall() {
        // Figure 1 has the "egregious error": Bacall's edge is labeled
        // "Play it again, Sam". Fix it.
        let g = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: {"Play it again, Sam": {}}}}"#)
            .unwrap();
        let fixed = relabel_edges_to_value(
            &g,
            Pred::ValueEq(Value::Str("Play it again, Sam".into())),
            "Bacall",
        );
        let expect = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: "Bacall"}}"#).unwrap();
        assert!(graphs_bisimilar(&fixed, &expect));
    }

    #[test]
    fn delete_by_type() {
        // Remove every integer leaf.
        let g = parse_graph(r#"{a: 1, b: "keep", c: {d: 2, e: "keep2"}}"#).unwrap();
        let out = delete_edges(&g, Pred::Kind(ssd_graph::LabelKind::Int));
        let expect = parse_graph(r#"{a: {}, b: "keep", c: {d: {}, e: "keep2"}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn collapse_flattens_wrappers() {
        let g = parse_graph(r#"{Movie: {Cast: {Credit: {Actors: "Allen"}}}}"#).unwrap();
        let out = collapse_edges(&g, Pred::Symbol("Credit".into()));
        let expect = parse_graph(r#"{Movie: {Cast: {Actors: "Allen"}}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn collapse_unifies_heterogeneous_casts() {
        // After collapsing Credit edges, both cast representations of
        // Figure 1 look alike.
        let g = parse_graph(
            r#"{Movie: {Cast: {Actors: "Bogart"}},
                Movie: {Cast: {Credit: {Actors: "Allen"}}}}"#,
        )
        .unwrap();
        let out = collapse_edges(&g, Pred::Symbol("Credit".into()));
        let expect = parse_graph(
            r#"{Movie: {Cast: {Actors: "Bogart"}},
                Movie: {Cast: {Actors: "Allen"}}}"#,
        )
        .unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn shortcut_adds_direct_edges() {
        let g = parse_graph(r#"{Movie: {Cast: {Actors: "B"}}}"#).unwrap();
        let out = shortcut(
            &g,
            &Pred::Symbol("Cast".into()),
            &Pred::Symbol("Actors".into()),
            "CastMember",
        );
        // Original path intact.
        let movie = out.successors_by_name(out.root(), "Movie")[0];
        let cast = out.successors_by_name(movie, "Cast")[0];
        assert_eq!(out.successors_by_name(cast, "Actors").len(), 1);
        // New shortcut from the movie object straight to the actor node.
        let direct = out.successors_by_name(movie, "CastMember");
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0], out.successors_by_name(cast, "Actors")[0]);
    }

    #[test]
    fn shortcut_on_cycles_terminates() {
        let g = parse_graph("@x = {a: {b: @x}}").unwrap();
        let out = shortcut(
            &g,
            &Pred::Symbol("a".into()),
            &Pred::Symbol("b".into()),
            "ab",
        );
        assert!(out.has_cycle());
        assert_eq!(out.successors_by_name(out.root(), "ab").len(), 1);
    }

    #[test]
    fn interchange_swaps_layers() {
        let g = parse_graph(r#"{Cast: {Actors: "B"}}"#).unwrap();
        let out = interchange(
            &g,
            &Pred::Symbol("Cast".into()),
            &Pred::Symbol("Actors".into()),
        );
        let actors = out.successors_by_name(out.root(), "Actors");
        assert_eq!(actors.len(), 1);
        let cast = out.successors_by_name(actors[0], "Cast");
        assert_eq!(cast.len(), 1);
        assert_eq!(out.atomic_value(cast[0]), Some(&Value::Str("B".into())));
    }

    #[test]
    fn interchange_leaves_other_edges() {
        let g = parse_graph(r#"{Cast: {Actors: "B"}, Title: "C"}"#).unwrap();
        let out = interchange(
            &g,
            &Pred::Symbol("Cast".into()),
            &Pred::Symbol("Actors".into()),
        );
        assert_eq!(out.successors_by_name(out.root(), "Title").len(), 1);
    }

    #[test]
    fn focus_brings_information_to_surface() {
        let g =
            parse_graph(r#"{Entry: {Movie: {Title: "C"}}, Entry: {Movie: {Title: "S"}}}"#).unwrap();
        let out = focus(
            &g,
            &Rpe::seq(vec![Rpe::symbol("Entry"), Rpe::symbol("Movie")]),
        );
        assert_eq!(out.successors_by_name(out.root(), "Title").len(), 2);
    }

    #[test]
    fn focus_on_empty_match_is_empty() {
        let g = parse_graph("{a: 1}").unwrap();
        let out = focus(&g, &Rpe::symbol("nothing"));
        assert!(out.is_leaf(out.root()));
    }

    #[test]
    fn relabel_preserves_cycles() {
        let g = parse_graph("@e = {References: @e, Title: 1}").unwrap();
        let out = relabel_edges(&g, Pred::Symbol("References".into()), "SeeAlso");
        assert!(out.has_cycle());
        assert_eq!(out.successors_by_name(out.root(), "SeeAlso").len(), 1);
        assert_eq!(out.successors_by_name(out.root(), "References").len(), 0);
    }
}
