//! Parallel query decomposition over graph "sites" (§4, \[35\]).
//!
//! "In \[35\] it is shown how an analysis of the query, combined with some
//! segmentation of the graph into local 'sites' can be used to decompose a
//! query into independent, parallel sub-queries."
//!
//! We implement the idea for regular-path-expression reachability: the
//! graph is partitioned into `k` sites. Evaluation proceeds in *waves*:
//! each wave hands every site its pending entry pairs
//! `(node, automaton state)`; the sites expand them through their local
//! edges **in parallel** (one thread per active site), producing result
//! nodes and exit pairs for other sites; exits seed the next wave. Total
//! work matches the sequential product-BFS (each pair is expanded once,
//! globally deduplicated between waves), waves correspond to the
//! communication rounds of the distributed setting \[35\], and the result
//! is identical to [`crate::rpe::eval::eval_nfa`] — verified by tests and
//! benchmarked in E11.

use crate::rpe::nfa::{Nfa, StateId};
use crate::rpe::Rpe;
use ssd_graph::{Graph, NodeId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// A partition of the reachable nodes into sites.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `site_of[node.index()]` = site id (usize::MAX for unreachable).
    site_of: Vec<usize>,
    pub sites: usize,
}

impl Partition {
    /// Hash-partition the reachable nodes into `k` sites.
    pub fn hash(g: &Graph, k: usize) -> Partition {
        assert!(k > 0, "at least one site");
        let mut site_of = vec![usize::MAX; g.node_count()];
        for n in g.reachable() {
            site_of[n.index()] = n.index() % k;
        }
        Partition { site_of, sites: k }
    }

    /// BFS-order block partition: contiguous regions of the BFS order, so
    /// sites have locality (fewer cross edges than hash partitioning).
    pub fn blocks(g: &Graph, k: usize) -> Partition {
        assert!(k > 0, "at least one site");
        let order = g.reachable();
        let mut site_of = vec![usize::MAX; g.node_count()];
        let per = order.len().div_ceil(k);
        for (i, n) in order.iter().enumerate() {
            site_of[n.index()] = (i / per).min(k - 1);
        }
        Partition { site_of, sites: k }
    }

    /// Contiguous blocks of the raw node-id space. When the generator
    /// allocates logically-related nodes consecutively (as
    /// `ssd_data::webgraph::clustered_graph` does per cluster), this maps
    /// clusters to sites with minimal cross edges.
    pub fn index_blocks(g: &Graph, k: usize) -> Partition {
        assert!(k > 0, "at least one site");
        let mut site_of = vec![usize::MAX; g.node_count()];
        let per = g.node_count().div_ceil(k);
        for n in g.reachable() {
            site_of[n.index()] = (n.index() / per).min(k - 1);
        }
        Partition { site_of, sites: k }
    }

    pub fn site_of(&self, n: NodeId) -> usize {
        self.site_of[n.index()]
    }

    /// Number of edges crossing between different sites.
    pub fn cross_edges(&self, g: &Graph) -> usize {
        g.reachable()
            .into_iter()
            .flat_map(|n| {
                g.edges(n)
                    .iter()
                    .filter(|e| self.site_of(n) != self.site_of(e.to))
                    .collect::<Vec<_>>()
            })
            .count()
    }
}

/// What one site reports back after expanding a wave of entry pairs.
#[derive(Debug, Default)]
struct WaveResult {
    /// Result nodes discovered inside the site.
    accepting: Vec<NodeId>,
    /// Pairs whose node lies in another site (next wave's seeds).
    exits: Vec<(NodeId, StateId)>,
}

/// Evaluate `rpe` from the root using `k`-way decomposition with one
/// worker thread per active site per wave. Returns the same node set as
/// [`crate::rpe::eval_rpe`].
// lint: allow(guard) — decomposition experiment evaluator (E13); the governed production path is eval_rpe_guarded
pub fn eval_decomposed(g: &Graph, rpe: &Rpe, partition: &Partition) -> Vec<NodeId> {
    let nfa = Nfa::compile(rpe);
    eval_decomposed_nfa(g, &nfa, partition)
}

/// As [`eval_decomposed`] with a precompiled automaton.
// lint: allow(guard) — decomposition experiment evaluator (E13); the governed production path is eval_nfa_guarded
pub fn eval_decomposed_nfa(g: &Graph, nfa: &Nfa, partition: &Partition) -> Vec<NodeId> {
    let mut result: BTreeSet<NodeId> = BTreeSet::new();
    // Each site owns a persistent visited set; exactly one worker per
    // wave borrows it mutably (sites are disjoint), so no cross-thread
    // merging is ever needed — the only serial step per wave is exit
    // bucketing.
    let mut site_visited: Vec<HashSet<(NodeId, StateId)>> =
        (0..partition.sites).map(|_| HashSet::new()).collect();
    // Seed: the root under the start closure.
    let mut frontier: Vec<(NodeId, StateId)> = nfa
        .closure(nfa.start())
        .iter()
        .map(|&q| (g.root(), q))
        .collect();
    while !frontier.is_empty() {
        // Bucket the wave's pairs by site, deduplicating against each
        // site's history (the main thread owns all sets between waves).
        let mut per_site: Vec<Vec<(NodeId, StateId)>> = vec![Vec::new(); partition.sites];
        for (n, q) in frontier.drain(..) {
            let site = partition.site_of(n);
            if site_visited[site].insert((n, q)) {
                if q == nfa.accept() {
                    result.insert(n);
                }
                per_site[site].push((n, q));
            }
        }
        // Expand every active site in parallel; each worker gets its own
        // site's visited set by mutable borrow.
        let wave: Vec<WaveResult> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = site_visited
                .iter_mut()
                .zip(per_site.iter())
                .enumerate()
                .filter(|(_, (_, seeds))| !seeds.is_empty())
                .map(|(site, (visited, seeds))| {
                    scope.spawn(move |_| expand_site(g, nfa, partition, site, seeds, visited))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("site worker"))
                .collect()
        })
        .expect("crossbeam scope");
        // Communication round ([35]): exits seed the next wave.
        for w in wave {
            result.extend(w.accepting);
            frontier.extend(w.exits);
        }
    }
    result.into_iter().collect()
}

/// Work profile of a decomposed evaluation, for reasoning about
/// parallelism independently of the host's core count: per wave, each
/// active site expands some number of product pairs; the wall-clock lower
/// bound on any machine is the *critical path* (sum over waves of the
/// busiest site), while a single core pays the *total*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkProfile {
    /// Product pairs expanded per wave per active site.
    pub waves: Vec<Vec<usize>>,
    /// Sum of all site work.
    pub total_pairs: usize,
    /// Sum over waves of the maximum site work.
    pub critical_path_pairs: usize,
}

impl WorkProfile {
    /// The speedup an ideal machine with ≥ sites cores could reach.
    pub fn ideal_speedup(&self) -> f64 {
        self.total_pairs as f64 / self.critical_path_pairs.max(1) as f64
    }
}

/// Replay the decomposed evaluation sequentially, recording the work
/// profile (used by experiment E11's parallelism analysis).
pub fn decomposition_work_profile(g: &Graph, nfa: &Nfa, partition: &Partition) -> WorkProfile {
    let mut site_visited: Vec<HashSet<(NodeId, StateId)>> =
        (0..partition.sites).map(|_| HashSet::new()).collect();
    let mut frontier: Vec<(NodeId, StateId)> = nfa
        .closure(nfa.start())
        .iter()
        .map(|&q| (g.root(), q))
        .collect();
    let mut waves: Vec<Vec<usize>> = Vec::new();
    while !frontier.is_empty() {
        let mut per_site: Vec<Vec<(NodeId, StateId)>> = vec![Vec::new(); partition.sites];
        for (n, q) in frontier.drain(..) {
            let site = partition.site_of(n);
            if site_visited[site].insert((n, q)) {
                per_site[site].push((n, q));
            }
        }
        let mut wave_work = Vec::new();
        for (site, seeds) in per_site.iter().enumerate() {
            if seeds.is_empty() {
                continue;
            }
            let before = site_visited[site].len();
            let w = expand_site(g, nfa, partition, site, seeds, &mut site_visited[site]);
            wave_work.push(site_visited[site].len() - before + seeds.len());
            frontier.extend(w.exits);
        }
        if !wave_work.is_empty() {
            waves.push(wave_work);
        }
    }
    let total_pairs = waves.iter().flatten().sum();
    let critical_path_pairs = waves
        .iter()
        .map(|w| w.iter().max().copied().unwrap_or(0))
        .sum();
    WorkProfile {
        waves,
        total_pairs,
        critical_path_pairs,
    }
}

/// Expand one site's wave seeds through its local edges, updating the
/// site's persistent visited set in place.
fn expand_site(
    g: &Graph,
    nfa: &Nfa,
    partition: &Partition,
    site: usize,
    seeds: &[(NodeId, StateId)],
    visited: &mut HashSet<(NodeId, StateId)>,
) -> WaveResult {
    let symbols = g.symbols();
    let mut out = WaveResult::default();
    let mut queue: VecDeque<(NodeId, StateId)> = seeds.iter().copied().collect();
    while let Some((n, q)) = queue.pop_front() {
        for e in g.edges(n) {
            for (pred, t) in nfa.transitions_from(q) {
                if pred.matches(&e.label, symbols) {
                    for &ct in nfa.closure(*t) {
                        let pair = (e.to, ct);
                        if partition.site_of(e.to) == site {
                            if visited.insert(pair) {
                                if ct == nfa.accept() {
                                    out.accepting.push(e.to);
                                }
                                queue.push_back(pair);
                            }
                        } else {
                            out.exits.push(pair);
                        }
                    }
                }
            }
        }
    }
    out.exits.sort_unstable();
    out.exits.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpe::{eval_rpe, Step};
    use ssd_graph::literal::parse_graph;

    fn big_graph() -> Graph {
        // A few hundred nodes with shared structure and a cycle.
        let mut src = String::from("{");
        for i in 0..40 {
            src.push_str(&format!(
                "Entry: {{Movie: {{Title: \"m{i}\", Cast: {{Actors: \"a{}\", Actors: \"a{}\"}}}}}},",
                i % 7,
                (i + 3) % 7
            ));
        }
        src.push_str("Loop: @x = {next: {next: @x}, stop: 1}}");
        parse_graph(&src).unwrap()
    }

    fn queries() -> Vec<Rpe> {
        vec![
            Rpe::seq(vec![
                Rpe::symbol("Entry"),
                Rpe::symbol("Movie"),
                Rpe::symbol("Title"),
            ]),
            Rpe::step(Step::wildcard()).star(),
            Rpe::seq(vec![
                Rpe::symbol("Loop"),
                Rpe::symbol("next").star(),
                Rpe::symbol("stop"),
            ]),
            Rpe::seq(vec![
                Rpe::step(Step::wildcard()).star(),
                Rpe::symbol("Actors"),
            ]),
        ]
    }

    #[test]
    fn decomposed_matches_sequential_hash_partition() {
        let g = big_graph();
        for k in [1, 2, 4, 7] {
            let part = Partition::hash(&g, k);
            for rpe in queries() {
                let seq = eval_rpe(&g, g.root(), &rpe);
                let par = eval_decomposed(&g, &rpe, &part);
                assert_eq!(seq, par, "mismatch for {rpe} with k={k}");
            }
        }
    }

    #[test]
    fn decomposed_matches_sequential_block_partition() {
        let g = big_graph();
        for k in [2, 3, 8] {
            let part = Partition::blocks(&g, k);
            for rpe in queries() {
                let seq = eval_rpe(&g, g.root(), &rpe);
                let par = eval_decomposed(&g, &rpe, &part);
                assert_eq!(seq, par, "mismatch for {rpe} with k={k}");
            }
        }
    }

    #[test]
    fn single_site_is_sequential() {
        let g = parse_graph("{a: {b: 1}}").unwrap();
        let part = Partition::hash(&g, 1);
        assert_eq!(part.cross_edges(&g), 0);
        let rpe = Rpe::seq(vec![Rpe::symbol("a"), Rpe::symbol("b")]);
        assert_eq!(
            eval_decomposed(&g, &rpe, &part),
            eval_rpe(&g, g.root(), &rpe)
        );
    }

    #[test]
    fn block_partition_has_fewer_cross_edges_than_hash() {
        let g = big_graph();
        let hash = Partition::hash(&g, 4);
        let blocks = Partition::blocks(&g, 4);
        assert!(
            blocks.cross_edges(&g) <= hash.cross_edges(&g),
            "blocks {} vs hash {}",
            blocks.cross_edges(&g),
            hash.cross_edges(&g)
        );
    }

    #[test]
    fn partition_covers_reachable_nodes() {
        let g = big_graph();
        let part = Partition::hash(&g, 3);
        for n in g.reachable() {
            assert!(part.site_of(n) < 3);
        }
    }

    #[test]
    fn empty_rpe_on_partitioned_graph() {
        let g = big_graph();
        let part = Partition::hash(&g, 4);
        assert_eq!(eval_decomposed(&g, &Rpe::Epsilon, &part), vec![g.root()]);
    }
}

#[cfg(test)]
mod work_profile_tests {
    use super::*;
    use crate::rpe::Step;
    use ssd_data_free_helpers::*;

    mod ssd_data_free_helpers {
        use ssd_graph::Graph;

        /// Fan of `k` chains off the root (no external data dep).
        pub fn fan(k: usize, len: usize) -> Graph {
            let mut g = Graph::new();
            let root = g.root();
            for _ in 0..k {
                let mut cur = g.add_node();
                g.add_sym_edge(root, "enter", cur);
                for _ in 0..len {
                    let next = g.add_node();
                    g.add_sym_edge(cur, "step", next);
                    cur = next;
                }
                let leaf = g.add_node();
                g.add_sym_edge(cur, "stop", leaf);
            }
            g
        }
    }

    #[test]
    fn profile_totals_are_consistent() {
        let g = fan(4, 30);
        let rpe = Rpe::seq(vec![
            Rpe::step(Step::wildcard()).star(),
            Rpe::symbol("stop"),
        ]);
        let nfa = Nfa::compile(&rpe);
        let part = Partition::index_blocks(&g, 4);
        let profile = decomposition_work_profile(&g, &nfa, &part);
        assert_eq!(
            profile.total_pairs,
            profile.waves.iter().flatten().sum::<usize>()
        );
        assert!(profile.critical_path_pairs <= profile.total_pairs);
        assert!(profile.ideal_speedup() >= 1.0);
    }

    #[test]
    fn balanced_fan_has_parallelism() {
        // Four equal chains behind the root: with a per-chain partition,
        // ideal speedup approaches 4.
        let g = fan(4, 100);
        let rpe = Rpe::seq(vec![
            Rpe::step(Step::wildcard()).star(),
            Rpe::symbol("stop"),
        ]);
        let nfa = Nfa::compile(&rpe);
        let part = Partition::index_blocks(&g, 4);
        // Correctness first.
        let seq = crate::rpe::eval::eval_nfa(&g, g.root(), &nfa);
        assert_eq!(seq, eval_decomposed_nfa(&g, &nfa, &part));
        let profile = decomposition_work_profile(&g, &nfa, &part);
        // Index blocks put the root and the whole first chain in site 0,
        // so the first wave is serial; the remaining chains run in
        // parallel in wave 2 — the profile must still show net
        // parallelism (> 1x), just not the full 4x a chain-exact
        // partition would give.
        assert!(
            profile.ideal_speedup() > 1.2,
            "expected parallel work profile, got {:.2}x over {} waves",
            profile.ideal_speedup(),
            profile.waves.len()
        );
    }

    #[test]
    fn single_site_profile_is_serial() {
        let g = fan(3, 10);
        let nfa = Nfa::compile(&Rpe::step(Step::wildcard()).star());
        let part = Partition::hash(&g, 1);
        let profile = decomposition_work_profile(&g, &nfa, &part);
        assert_eq!(profile.critical_path_pairs, profile.total_pairs);
        assert!((profile.ideal_speedup() - 1.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Select-query decomposition: [35] decomposes *queries*, not just path
// reachability. For a select-from-where query the natural unit is the
// first binding: each of its matches seeds an independent residual
// sub-query; chunks of matches run on worker threads and their result
// trees union at the end.

use crate::lang::eval::evaluate_select_seeded;
use crate::lang::{evaluate_select, EvalOptions, SelectQuery};
use ssd_graph::ops;

/// Evaluate `query` with the matches of its first binding fanned out over
/// `workers` threads. The result is bisimilar to [`evaluate_select`]'s
/// (tests verify it); worthwhile when the residual per-match work
/// dominates.
// lint: allow(guard) — parallelism experiment (E14); per-worker governance lands with ROADMAP item 4
pub fn evaluate_select_parallel(
    g: &Graph,
    query: &SelectQuery,
    workers: usize,
) -> Result<Graph, String> {
    query.validate()?;
    assert!(workers > 0, "at least one worker");
    if query.bindings.is_empty() {
        let (r, _) = evaluate_select(g, query, &EvalOptions::default())?;
        return Ok(r);
    }
    // Binding 0 is necessarily db-rooted (no earlier variables exist).
    let first = &query.bindings[0];
    let matches: Vec<(Option<ssd_graph::Label>, NodeId)> =
        match first.path.split_trailing_label_var() {
            Some((prefix, step)) => {
                let mids = crate::rpe::eval_rpe(g, g.root(), &prefix);
                let mut out = Vec::new();
                for mid in mids {
                    for e in g.edges(mid) {
                        if step.matches(&e.label, g.symbols()) {
                            out.push((Some(e.label.clone()), e.to));
                        }
                    }
                }
                out.sort();
                out.dedup();
                out
            }
            None => crate::rpe::eval_rpe(g, g.root(), &first.path)
                .into_iter()
                .map(|n| (None, n))
                .collect(),
        };
    // Round-robin the matches into chunks.
    let k = workers.min(matches.len()).max(1);
    let mut chunks: Vec<Vec<(Option<ssd_graph::Label>, NodeId)>> = vec![Vec::new(); k];
    for (i, m) in matches.into_iter().enumerate() {
        chunks[i % k].push(m);
    }
    let partials: Vec<Result<Graph, String>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .filter(|c| !c.is_empty())
            .map(|chunk| {
                scope.spawn(move |_| -> Result<Graph, String> {
                    let mut acc = Graph::with_symbols(g.symbols_handle());
                    for (label, node) in chunk {
                        let (r, _) = evaluate_select_seeded(
                            g,
                            query,
                            *node,
                            label.clone(),
                            &EvalOptions::default(),
                        )?;
                        let img = ops::copy_subgraph(&r, r.root(), &mut acc);
                        let root = acc.root();
                        let u = ops::union(&mut acc, root, img);
                        acc.set_root(u);
                    }
                    Ok(acc)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("select worker"))
            .collect()
    })
    .expect("crossbeam scope");
    let mut out = Graph::with_symbols(g.symbols_handle());
    for p in partials {
        let p = p?;
        let img = ops::copy_subgraph(&p, p.root(), &mut out);
        let root = out.root();
        let u = ops::union(&mut out, root, img);
        out.set_root(u);
    }
    out.gc();
    Ok(out)
}

#[cfg(test)]
mod select_parallel_tests {
    use super::*;
    use crate::lang::parse_query;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::parse_graph;

    fn db() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "A", Year: 1942, Cast: {Actors: "x"}}},
                Entry: {Movie: {Title: "B", Year: 1972, Cast: {Actors: "y"}}},
                Entry: {Movie: {Title: "C", Year: 1977, Cast: {Actors: "x", Actors: "z"}}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = db();
        let queries = [
            "select T from db.Entry.Movie M, M.Title T",
            r#"select {p: {t: T}} from db.Entry.Movie M, M.Title T, M.Year Y where Y > 1950"#,
            r#"select {a: A} from db.Entry.Movie M, M.Cast.Actors A where A = "x""#,
            "select L from db.Entry.Movie.^L X",
        ];
        for src in queries {
            let q = parse_query(src).unwrap();
            let (seq, _) = evaluate_select(&g, &q, &EvalOptions::default()).unwrap();
            for workers in [1, 2, 4] {
                let par = evaluate_select_parallel(&g, &q, workers).unwrap();
                assert!(
                    graphs_bisimilar(&seq, &par),
                    "parallel({workers}) diverged on {src}"
                );
            }
        }
    }

    #[test]
    fn parallel_on_empty_matches() {
        let g = db();
        let q = parse_query("select T from db.Nothing.Title T").unwrap();
        let par = evaluate_select_parallel(&g, &q, 4).unwrap();
        assert!(par.is_leaf(par.root()));
    }

    #[test]
    fn seeded_skips_first_binding() {
        use crate::lang::eval::evaluate_select_seeded;
        let g = db();
        let q = parse_query("select T from db.Entry.Movie M, M.Title T").unwrap();
        // Seed with one specific movie node.
        let movies = crate::rpe::eval_rpe(
            &g,
            g.root(),
            &crate::rpe::Rpe::seq(vec![
                crate::rpe::Rpe::symbol("Entry"),
                crate::rpe::Rpe::symbol("Movie"),
            ]),
        );
        let (r, _) =
            evaluate_select_seeded(&g, &q, movies[0], None, &EvalOptions::default()).unwrap();
        assert_eq!(r.out_degree(r.root()), 1); // one title only
    }
}
