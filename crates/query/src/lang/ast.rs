//! Query abstract syntax.

use crate::rpe::Rpe;
use ssd_graph::{LabelKind, Value};
use std::collections::HashSet;
use std::fmt;

/// A select-from-where query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub construct: Construct,
    pub bindings: Vec<Binding>,
    pub condition: Option<Cond>,
}

/// One `from` binding: `source.path Var`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    pub source: Source,
    pub path: Rpe,
    /// The tree variable bound to each path target.
    pub var: String,
}

/// Where a binding's path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// The database root.
    Db,
    /// A previously bound tree variable.
    Var(String),
}

/// The select clause: a tree constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum Construct {
    /// `{l1: e1, ..., ln: en}`
    Node(Vec<(LabelExpr, Construct)>),
    /// A variable: a bound tree (copied) or a bound label (as an atom).
    Var(String),
    /// A constant atom.
    Atom(Value),
}

/// A label position in a constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelExpr {
    Symbol(String),
    Value(Value),
    /// `^L` — a bound label variable used as the edge label.
    LabelVar(String),
}

/// Conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    Cmp(Expr, CmpOp, Expr),
    /// `expr like "pat"` with `%` wildcards at either end.
    Like(Expr, String),
    /// Type predicate: `isint(X)`, `isstring(L)`, ...
    TypeIs(Expr, LabelKind),
    /// `exists Var.path`
    Exists(String, Rpe),
    Not(Box<Cond>),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
}

/// Scalar expressions in conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A tree or label variable.
    Var(String),
    Const(Value),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl SelectQuery {
    /// Static checks: bindings only reference earlier variables; label
    /// variables are placed legally; the construct and condition reference
    /// only bound variables. Returns the set of bound variables on success.
    pub fn validate(&self) -> Result<HashSet<&str>, String> {
        let mut bound: HashSet<&str> = HashSet::new();
        for (i, b) in self.bindings.iter().enumerate() {
            if let Source::Var(v) = &b.source {
                if !bound.contains(v.as_str()) {
                    return Err(format!(
                        "binding {i}: source variable {v} not bound by an earlier binding"
                    ));
                }
            }
            b.path.check_label_vars()?;
            for lv in b.path.label_vars() {
                if !bound.insert(lv) {
                    return Err(format!("label variable {lv} bound twice"));
                }
            }
            if !bound.insert(b.var.as_str()) {
                return Err(format!("variable {} bound twice", b.var));
            }
        }
        self.construct.check_vars(&bound)?;
        if let Some(c) = &self.condition {
            c.check_vars(&bound)?;
        }
        Ok(bound)
    }
}

impl Construct {
    fn check_vars(&self, bound: &HashSet<&str>) -> Result<(), String> {
        match self {
            Construct::Node(entries) => {
                for (l, c) in entries {
                    if let LabelExpr::LabelVar(v) = l {
                        if !bound.contains(v.as_str()) {
                            return Err(format!("unbound label variable ^{v} in construct"));
                        }
                    }
                    c.check_vars(bound)?;
                }
                Ok(())
            }
            Construct::Var(v) => {
                if bound.contains(v.as_str()) {
                    Ok(())
                } else {
                    Err(format!("unbound variable {v} in construct"))
                }
            }
            Construct::Atom(_) => Ok(()),
        }
    }
}

impl Cond {
    fn check_vars(&self, bound: &HashSet<&str>) -> Result<(), String> {
        let check_expr = |e: &Expr| match e {
            Expr::Var(v) if !bound.contains(v.as_str()) => {
                Err(format!("unbound variable {v} in condition"))
            }
            _ => Ok(()),
        };
        match self {
            Cond::Cmp(a, _, b) => {
                check_expr(a)?;
                check_expr(b)
            }
            Cond::Like(e, _) | Cond::TypeIs(e, _) => check_expr(e),
            Cond::Exists(v, path) => {
                if !bound.contains(v.as_str()) {
                    return Err(format!("unbound variable {v} in exists"));
                }
                // exists paths may not bind new variables.
                if !path.label_vars().is_empty() {
                    return Err("label variables not allowed inside exists".to_owned());
                }
                Ok(())
            }
            Cond::Not(c) => c.check_vars(bound),
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.check_vars(bound)?;
                b.check_vars(bound)
            }
        }
    }

    /// The variables a condition reads — used by the optimizer to decide
    /// how early a condition can be evaluated (selection pushdown, §4).
    pub fn vars(&self) -> HashSet<&str> {
        let mut out = HashSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut HashSet<&'a str>) {
        let expr = |e: &'a Expr, out: &mut HashSet<&'a str>| {
            if let Expr::Var(v) = e {
                out.insert(v.as_str());
            }
        };
        match self {
            Cond::Cmp(a, _, b) => {
                expr(a, out);
                expr(b, out);
            }
            Cond::Like(e, _) | Cond::TypeIs(e, _) => expr(e, out),
            Cond::Exists(v, _) => {
                out.insert(v.as_str());
            }
            Cond::Not(c) => c.collect_vars(out),
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Cond> {
        match self {
            Cond::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpe::{Rpe, Step};

    fn simple_query() -> SelectQuery {
        SelectQuery {
            construct: Construct::Var("T".into()),
            bindings: vec![
                Binding {
                    source: Source::Db,
                    path: Rpe::symbol("Movie"),
                    var: "M".into(),
                },
                Binding {
                    source: Source::Var("M".into()),
                    path: Rpe::symbol("Title"),
                    var: "T".into(),
                },
            ],
            condition: None,
        }
    }

    #[test]
    fn valid_query_passes() {
        let q = simple_query();
        let bound = q.validate().unwrap();
        assert!(bound.contains("M"));
        assert!(bound.contains("T"));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut q = simple_query();
        q.bindings.swap(0, 1);
        assert!(q.validate().is_err());
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut q = simple_query();
        q.bindings[1].var = "M".into();
        assert!(q.validate().is_err());
    }

    #[test]
    fn unbound_construct_var_rejected() {
        let mut q = simple_query();
        q.construct = Construct::Var("Z".into());
        assert!(q.validate().is_err());
    }

    #[test]
    fn unbound_condition_var_rejected() {
        let mut q = simple_query();
        q.condition = Some(Cond::Cmp(
            Expr::Var("Z".into()),
            CmpOp::Eq,
            Expr::Const(Value::Int(1)),
        ));
        assert!(q.validate().is_err());
    }

    #[test]
    fn label_var_binds_and_is_usable() {
        let mut q = simple_query();
        q.bindings.push(Binding {
            source: Source::Var("M".into()),
            path: Rpe::step(Step::label_var("L")),
            var: "X".into(),
        });
        q.condition = Some(Cond::Like(Expr::Var("L".into()), "act%".into()));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn misplaced_label_var_rejected() {
        let mut q = simple_query();
        q.bindings.push(Binding {
            source: Source::Var("M".into()),
            path: Rpe::step(Step::label_var("L")).star(),
            var: "X".into(),
        });
        assert!(q.validate().is_err());
    }

    #[test]
    fn cond_vars_and_conjuncts() {
        let c = Cond::And(
            Box::new(Cond::Cmp(
                Expr::Var("A".into()),
                CmpOp::Lt,
                Expr::Var("B".into()),
            )),
            Box::new(Cond::And(
                Box::new(Cond::TypeIs(Expr::Var("C".into()), LabelKind::Int)),
                Box::new(Cond::Exists("D".into(), Rpe::symbol("x"))),
            )),
        );
        let vars = c.vars();
        assert_eq!(vars.len(), 4);
        assert_eq!(c.conjuncts().len(), 3);
    }

    #[test]
    fn exists_with_label_var_rejected() {
        let mut q = simple_query();
        q.condition = Some(Cond::Exists("M".into(), Rpe::step(Step::label_var("L"))));
        assert!(q.validate().is_err());
    }
}

// ---------------------------------------------------------------------------
// Pretty-printing: `Display` emits the concrete syntax, so `parse ∘ print`
// is the identity on ASTs (tested here and in the property suite).

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select {} from ", self.construct)?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        if let Some(c) = &self.condition {
            write!(f, " where {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Source::Db => write!(f, "db")?,
            Source::Var(v) => write!(f, "{v}")?,
        }
        write!(f, ".{} {}", self.path, self.var)
    }
}

impl fmt::Display for Construct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Construct::Node(entries) => {
                write!(f, "{{")?;
                for (i, (l, c)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}: {c}")?;
                }
                write!(f, "}}")
            }
            Construct::Var(v) => write!(f, "{v}"),
            Construct::Atom(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for LabelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelExpr::Symbol(s) => write!(f, "{s}"),
            LabelExpr::Value(v) => write!(f, "{v}"),
            LabelExpr::LabelVar(v) => write!(f, "^{v}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Cond::Like(e, pat) => write!(f, "{e} like {pat:?}"),
            Cond::TypeIs(e, kind) => {
                let name = match kind {
                    LabelKind::Int => "isint",
                    LabelKind::Real => "isreal",
                    LabelKind::Str => "isstring",
                    LabelKind::Bool => "isbool",
                    LabelKind::Symbol => "issymbol",
                };
                write!(f, "{name}({e})")
            }
            Cond::Exists(v, path) => write!(f, "exists {v}.{path}"),
            Cond::Not(c) => write!(f, "not ({c})"),
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

#[cfg(test)]
mod display_tests {
    use crate::lang::parser::parse_query;

    /// print ∘ parse ∘ print = print (stability), and reparsing the
    /// printed form gives back an equal AST.
    fn round_trip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let shown = q1.to_string();
        let q2 = parse_query(&shown).unwrap_or_else(|e| panic!("reparse of {shown:?} failed: {e}"));
        assert_eq!(q1, q2, "AST changed through printing: {shown}");
        assert_eq!(shown, q2.to_string());
    }

    #[test]
    fn simple_queries_round_trip() {
        round_trip("select T from db.Entry.Movie.Title T");
        round_trip("select {t: T} from db.Entry.Movie M, M.Title T");
        round_trip("select X from db.%*.Cast.(Actors | Credit.Actors) X");
        round_trip(r#"select {^L: X} from db.Movie.^L X where L like "act%""#);
        round_trip(
            r#"select M from db.Movie M, M.Year Y
               where (Y >= 1940 and Y <= 1950) or not isint(Y) and exists M.Cast.Actors"#,
        );
        round_trip(r#"select X from db.Year.1942 X where X != "x""#);
        round_trip("select X from db.a?.b+.c* X");
        round_trip("select X from db.(!Movie)*.[int] X");
        round_trip(r#"select {n: 5, s: "str", b: true} from db.a X"#);
    }
}
