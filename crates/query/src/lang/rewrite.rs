//! Surface syntax for structural recursion — the "query language for
//! transformation" side of §3 ("building a sufficiently expressive
//! language for querying *and transformation*", abstract).
//!
//! ```text
//! rewrite
//!   case Credit            => collapse
//!   case "Play it again, Sam" => { "Bacall": recur }
//!   case secret            => delete
//!   case [int]             => { _: keep }
//!   otherwise              => { _: recur }
//! ```
//!
//! Each `case` pairs a label predicate (same step syntax as query paths:
//! identifiers, literals, `%`, `[int]`-style type tests, `!p`, `(p|q)`)
//! with a template:
//!
//! * `delete` — drop the edge (and anything only reachable through it);
//! * `collapse` — splice the target's transformed children into the source;
//! * `{ l1: t1, ... }` — constructed children, where a label position may
//!   be `_` (the original label), an identifier, or a literal, and a tree
//!   position may be `recur` (the recursive result), `keep` (the original
//!   subtree verbatim), a literal atom, or a nested `{...}`.
//!
//! The optional `otherwise` clause replaces the default (which is the
//! identity `{_: recur}`). Parsed rewrites compile to
//! [`Transducer`]s and run under [`gext`](crate::recursion::gext).

use crate::recursion::{EdgeTemplate, TLabel, TTree, Transducer};
use ssd_graph::{LabelKind, Value};
use ssd_schema::Pred;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteParseError {
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for RewriteParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rewrite parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for RewriteParseError {}

/// Parse the `rewrite` surface syntax into a transducer.
pub fn parse_rewrite(src: &str) -> Result<Transducer, RewriteParseError> {
    let mut p = P {
        src,
        pos: 0,
        depth: 0,
    };
    p.expect_keyword("rewrite")?;
    let mut t = Transducer::new();
    loop {
        if p.keyword("case") {
            let pred = p.pred()?;
            p.expect_tok("=>")?;
            let template = p.template()?;
            t = t.case(pred, template);
        } else if p.keyword("otherwise") {
            p.expect_tok("=>")?;
            let template = p.template()?;
            t = t.otherwise(template);
            break;
        } else {
            break;
        }
    }
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input after rewrite");
    }
    Ok(t)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn bump_depth(&mut self) -> Result<(), RewriteParseError> {
        self.depth += 1;
        if self.depth > ssd_graph::literal::MAX_PARSE_DEPTH {
            return Err(RewriteParseError {
                at: self.pos,
                message: ssd_diag::Diagnostic::new(
                    ssd_diag::Code::ParseDepthExceeded,
                    format!(
                        "transducer nests deeper than {} levels",
                        ssd_graph::literal::MAX_PARSE_DEPTH
                    ),
                )
                .headline(),
            });
        }
        Ok(())
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, RewriteParseError> {
        Err(RewriteParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let t = r.trim_start();
            self.pos += r.len() - t.len();
            if self.rest().starts_with("--") {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), RewriteParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected '{c}'"))
        }
    }

    fn expect_tok(&mut self, tok: &str) -> Result<(), RewriteParseError> {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            self.err(format!("expected '{tok}'"))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            let s = r[..end].to_owned();
            self.pos += end;
            Some(s)
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        let save = self.pos;
        match self.ident() {
            Some(id) if id == kw => true,
            _ => {
                self.pos = save;
                false
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), RewriteParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword '{kw}'"))
        }
    }

    fn string_lit(&mut self) -> Result<String, RewriteParseError> {
        self.expect('"')?;
        let r = self.rest();
        let mut out = String::new();
        let mut chars = r.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    _ => return self.err("bad escape"),
                },
                _ => out.push(c),
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<Value, RewriteParseError> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        let mut real = false;
        for (i, c) in r.char_indices() {
            match c {
                '0'..='9' => end = i + 1,
                '-' if i == 0 => end = i + 1,
                '.' if r[i + 1..]
                    .chars()
                    .next()
                    .is_some_and(|d| d.is_ascii_digit()) =>
                {
                    real = true;
                    end = i + 1;
                }
                _ => break,
            }
        }
        if end == 0 {
            return self.err("expected number");
        }
        let text = &r[..end];
        self.pos += end;
        if real {
            text.parse()
                .map(Value::Real)
                .or_else(|_| self.err("bad real"))
        } else {
            text.parse()
                .map(Value::Int)
                .or_else(|_| self.err("bad int"))
        }
    }

    /// Label predicates, with `|` alternation and `!` negation.
    fn pred(&mut self) -> Result<Pred, RewriteParseError> {
        let mut alts = vec![self.pred_atom()?];
        while self.eat('|') {
            alts.push(self.pred_atom()?);
        }
        Ok(match (alts.len(), alts.pop()) {
            (1, Some(only)) => only,
            (_, Some(last)) => {
                alts.push(last);
                Pred::Or(alts)
            }
            // Unreachable: alts starts with one element.
            (_, None) => Pred::Any,
        })
    }

    fn pred_atom(&mut self) -> Result<Pred, RewriteParseError> {
        self.bump_depth()?;
        let out = self.pred_atom_inner();
        self.depth -= 1;
        out
    }

    fn pred_atom_inner(&mut self) -> Result<Pred, RewriteParseError> {
        match self.peek() {
            Some('%') => {
                self.expect('%')?;
                Ok(Pred::Any)
            }
            Some('!') => {
                self.expect('!')?;
                let inner = self.pred_atom()?;
                Ok(Pred::Not(Box::new(inner)))
            }
            Some('(') => {
                self.expect('(')?;
                let p = self.pred()?;
                self.expect(')')?;
                Ok(p)
            }
            Some('[') => {
                self.expect('[')?;
                let kind = match self.ident().as_deref() {
                    Some("int") => LabelKind::Int,
                    Some("real") => LabelKind::Real,
                    Some("string") | Some("str") => LabelKind::Str,
                    Some("bool") => LabelKind::Bool,
                    Some("symbol") => LabelKind::Symbol,
                    _ => return self.err("expected type name in [...]"),
                };
                self.expect(']')?;
                Ok(Pred::Kind(kind))
            }
            Some('"') => Ok(Pred::ValueEq(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(Pred::ValueEq(self.number()?)),
            Some(c) if c.is_alphabetic() || c == '_' => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                match id.as_str() {
                    "true" => Ok(Pred::ValueEq(Value::Bool(true))),
                    "false" => Ok(Pred::ValueEq(Value::Bool(false))),
                    _ => Ok(Pred::Symbol(id)),
                }
            }
            _ => self.err("expected label predicate"),
        }
    }

    fn template(&mut self) -> Result<EdgeTemplate, RewriteParseError> {
        let save = self.pos;
        if let Some(id) = self.ident() {
            match id.as_str() {
                "delete" => return Ok(EdgeTemplate::Delete),
                "collapse" => return Ok(EdgeTemplate::Collapse),
                _ => self.pos = save,
            }
        }
        if self.peek() == Some('{') {
            let entries = self.tentries()?;
            return Ok(EdgeTemplate::Edges(entries));
        }
        self.err("expected 'delete', 'collapse', or '{...}' template")
    }

    fn tentries(&mut self) -> Result<Vec<(TLabel, TTree)>, RewriteParseError> {
        self.expect('{')?;
        let mut entries = Vec::new();
        if self.eat('}') {
            return Ok(entries);
        }
        loop {
            let label = self.tlabel()?;
            self.expect(':')?;
            let tree = self.ttree()?;
            entries.push((label, tree));
            if self.eat(',') {
                continue;
            }
            self.expect('}')?;
            break;
        }
        Ok(entries)
    }

    fn tlabel(&mut self) -> Result<TLabel, RewriteParseError> {
        match self.peek() {
            Some('_') => {
                self.expect('_')?;
                Ok(TLabel::Orig)
            }
            Some('"') => Ok(TLabel::Value(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(TLabel::Value(self.number()?)),
            Some(c) if c.is_alphabetic() => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                match id.as_str() {
                    "true" => Ok(TLabel::Value(Value::Bool(true))),
                    "false" => Ok(TLabel::Value(Value::Bool(false))),
                    _ => Ok(TLabel::Symbol(id)),
                }
            }
            _ => self.err("expected template label"),
        }
    }

    fn ttree(&mut self) -> Result<TTree, RewriteParseError> {
        self.bump_depth()?;
        let out = self.ttree_inner();
        self.depth -= 1;
        out
    }

    fn ttree_inner(&mut self) -> Result<TTree, RewriteParseError> {
        match self.peek() {
            Some('{') => {
                let entries = self.tentries()?;
                if entries.is_empty() {
                    Ok(TTree::Empty)
                } else {
                    Ok(TTree::Node(entries))
                }
            }
            Some('"') => Ok(TTree::Atom(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(TTree::Atom(self.number()?)),
            Some(c) if c.is_alphabetic() => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                match id.as_str() {
                    "recur" => Ok(TTree::Recur),
                    "keep" => Ok(TTree::Keep),
                    "true" => Ok(TTree::Atom(Value::Bool(true))),
                    "false" => Ok(TTree::Atom(Value::Bool(false))),
                    other => self.err(format!(
                        "expected recur/keep/literal/{{...}} in tree position, found '{other}'"
                    )),
                }
            }
            _ => self.err("expected template tree"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursion::gext;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::parse_graph;

    fn run(data: &str, rewrite: &str) -> ssd_graph::Graph {
        let g = parse_graph(data).unwrap();
        let t = parse_rewrite(rewrite).unwrap();
        gext(&g, g.root(), &t)
    }

    #[test]
    fn bare_rewrite_is_identity() {
        let g = parse_graph("{a: {b: 1}}").unwrap();
        let t = parse_rewrite("rewrite").unwrap();
        assert!(graphs_bisimilar(&g, &gext(&g, g.root(), &t)));
    }

    #[test]
    fn relabel_case() {
        let out = run("{a: {a: 1}}", "rewrite case a => {b: recur}");
        let expect = parse_graph("{b: {b: 1}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn delete_and_collapse_cases() {
        let out = run(
            r#"{Movie: {Cast: {Credit: {Actors: "Allen"}}, junk: 1}}"#,
            "rewrite case Credit => collapse case junk => delete",
        );
        let expect = parse_graph(r#"{Movie: {Cast: {Actors: "Allen"}}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn bacall_fix_in_surface_syntax() {
        let out = run(
            r#"{Cast: {Actors: "Bogart", Actors: "Play it again, Sam"}}"#,
            r#"rewrite case "Play it again, Sam" => {"Bacall": recur}"#,
        );
        let expect = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: "Bacall"}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn type_predicate_case() {
        let out = run(
            r#"{name: "x", age: 42}"#,
            r#"rewrite case [int] => {0: recur}"#,
        );
        let expect = parse_graph(r#"{name: "x", age: {0: {}}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn alternation_predicate() {
        let out = run("{a: 1, b: 2, c: 3}", "rewrite case a | b => delete");
        let expect = parse_graph("{c: 3}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn negated_predicate_with_otherwise() {
        // Keep only x edges; delete everything else.
        let out = run(
            "{x: {y: 1}, z: 2}",
            "rewrite case !x => delete otherwise => {_: recur}",
        );
        // !x matches y and z and the value edges below x... so x survives,
        // but its subtree loses y.
        let expect = parse_graph("{x: {}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn keep_and_nested_templates() {
        let out = run(
            "{wrap: {a: 1}}",
            r#"rewrite case wrap => {found: {inner: keep, tag: "w"}}"#,
        );
        let expect = parse_graph(r#"{found: {inner: {a: 1}, tag: "w"}}"#).unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn orig_label_underscore() {
        let out = run("{a: 1, b: 2}", "rewrite case % => {_: {}}");
        // Every edge keeps its label but loses its subtree.
        let expect = parse_graph("{a: {}, b: {}}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
    }

    #[test]
    fn works_on_cycles() {
        let out = run("@x = {next: @x}", "rewrite case next => {hop: recur}");
        let expect = parse_graph("@x = {hop: @x}").unwrap();
        assert!(graphs_bisimilar(&out, &expect));
        assert!(out.has_cycle());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_rewrite("").is_err());
        assert!(parse_rewrite("rewrite case").is_err());
        assert!(parse_rewrite("rewrite case a => bogus").is_err());
        assert!(parse_rewrite("rewrite case a => {b: nonsense}").is_err());
        assert!(parse_rewrite("rewrite extra").is_err());
        assert!(parse_rewrite("rewrite case a => delete trailing").is_err());
        assert!(parse_rewrite("rewrite otherwise => delete case a => delete").is_err());
    }

    #[test]
    fn comments_allowed() {
        let t =
            parse_rewrite("rewrite -- fix casts\n case Credit => collapse -- flatten\n").unwrap();
        assert_eq!(t.cases.len(), 1);
    }
}
