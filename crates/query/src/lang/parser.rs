//! Parser for the surface language.
//!
//! ```text
//! query     := "select" construct "from" binding ("," binding)* ("where" cond)?
//! binding   := source "." path WS var
//!            | source WS var                      -- bind the source itself? no: path required
//! source    := "db" | VAR
//! path      := seq
//! seq       := postfix ("." postfix)*
//! postfix   := primary ("*" | "+" | "?")*
//! primary   := IDENT | STRING | INT | "%" | "^" IDENT
//!            | "!" primary | "[" kind "]" | "(" alt ")"
//! alt       := seq ("|" seq)*
//! construct := "{" (labelexpr ":" construct) ("," ...)* "}" | VAR | literal
//! labelexpr := IDENT | STRING | INT | "^" IDENT
//! cond      := or ; or := and ("or" and)* ; and := unary ("and" unary)*
//! unary     := "not" unary | "(" cond ")" | atom-cond
//! atom-cond := expr op expr | expr "like" STRING
//!            | ("isint"|"isreal"|"isstring"|"isbool"|"issymbol") "(" VAR ")"
//!            | "exists" VAR "." path
//! ```
//!
//! Identifiers are case-sensitive; `db`, keywords are reserved. Variables
//! and symbols share the identifier syntax — occurrence position
//! disambiguates, exactly as in Lorel.

use super::ast::{Binding, CmpOp, Cond, Construct, Expr, LabelExpr, SelectQuery, Source};
use super::spans::{BindingSpans, OccSite, QuerySpans, VarOcc};
use crate::rpe::{Rpe, Step};
use ssd_diag::Span;
use ssd_graph::{LabelKind, Value};
use ssd_schema::Pred;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for QueryParseError {}

const KEYWORDS: &[&str] = &[
    "select", "from", "where", "and", "or", "not", "like", "exists", "db", "true", "false",
    "isint", "isreal", "isstring", "isbool", "issymbol",
];

/// Parse a select-from-where query; also runs [`SelectQuery::validate`].
pub fn parse_query(src: &str) -> Result<SelectQuery, QueryParseError> {
    let (q, _) = parse_query_spanned(src)?;
    q.validate().map_err(|m| QueryParseError {
        at: src.len(),
        message: m,
    })?;
    Ok(q)
}

/// Parse without validating, additionally returning the span side table.
/// This is the static analyzer's entry point: it wants the raw AST even
/// when name resolution would fail, so it can report *all* problems with
/// precise source locations instead of the first one.
pub fn parse_query_spanned(src: &str) -> Result<(SelectQuery, QuerySpans), QueryParseError> {
    let mut p = P {
        src,
        pos: 0,
        last_end: 0,
        spans: QuerySpans::default(),
        pending_label_vars: Vec::new(),
        depth: 0,
    };
    let q = p.query()?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input after query");
    }
    Ok((q, p.spans))
}

struct P<'a> {
    src: &'a str,
    pos: usize,
    /// End position of the last consumed token (excludes trailing
    /// whitespace/comments skipped by lookahead).
    last_end: usize,
    spans: QuerySpans,
    /// Label variables seen while parsing the current path, drained into
    /// the enclosing binding's (or exists condition's) span record.
    pending_label_vars: Vec<(String, Span)>,
    /// Current recursive-descent depth, bounded by
    /// [`ssd_graph::literal::MAX_PARSE_DEPTH`].
    depth: usize,
}

/// RAII-free depth bump shared by the recursive productions: call at the
/// top of each recursion point, pair with `depth -= 1` on exit.
macro_rules! bounded {
    ($self:ident, $body:expr) => {{
        $self.depth += 1;
        if $self.depth > ssd_graph::literal::MAX_PARSE_DEPTH {
            return Err(QueryParseError {
                at: $self.pos,
                message: ssd_diag::Diagnostic::new(
                    ssd_diag::Code::ParseDepthExceeded,
                    format!(
                        "query nests deeper than {} levels",
                        ssd_graph::literal::MAX_PARSE_DEPTH
                    ),
                )
                .headline(),
            });
        }
        let out = $body;
        $self.depth -= 1;
        out
    }};
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, QueryParseError> {
        Err(QueryParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let t = r.trim_start();
            self.pos += r.len() - t.len();
            if self.rest().starts_with("--") {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            self.last_end = self.pos;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), QueryParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected '{c}'"))
        }
    }

    /// Peek an identifier without consuming.
    fn peek_ident(&mut self) -> Option<String> {
        let save = self.pos;
        let id = self.ident();
        self.pos = save;
        id
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            let s = r[..end].to_owned();
            self.pos += end;
            self.last_end = self.pos;
            Some(s)
        }
    }

    /// Span of the identifier just consumed by [`P::ident`].
    fn prev_ident_span(&self, name: &str) -> Span {
        Span::new(self.last_end - name.len(), self.last_end)
    }

    fn keyword(&mut self, kw: &str) -> bool {
        let save = self.pos;
        match self.ident() {
            Some(id) if id == kw => true,
            _ => {
                self.pos = save;
                false
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword '{kw}'"))
        }
    }

    fn string_lit(&mut self) -> Result<String, QueryParseError> {
        self.expect('"')?;
        let r = self.rest();
        let mut out = String::new();
        let mut chars = r.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    self.last_end = self.pos;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    _ => return self.err("bad escape in string"),
                },
                _ => out.push(c),
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<Value, QueryParseError> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        let mut real = false;
        for (i, c) in r.char_indices() {
            match c {
                '0'..='9' => end = i + 1,
                '-' if i == 0 => end = i + 1,
                '.' => {
                    // A dot is a path separator unless followed by a digit.
                    if r[i + 1..]
                        .chars()
                        .next()
                        .is_some_and(|d| d.is_ascii_digit())
                    {
                        real = true;
                        end = i + 1;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        if end == 0 {
            return self.err("expected number");
        }
        let text = &r[..end];
        self.pos += end;
        self.last_end = self.pos;
        if real {
            text.parse::<f64>()
                .map(Value::Real)
                .or_else(|_| self.err("bad real"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| self.err("bad int"))
        }
    }

    fn query(&mut self) -> Result<SelectQuery, QueryParseError> {
        self.expect_keyword("select")?;
        self.skip_ws();
        let cstart = self.pos;
        let construct = self.construct()?;
        self.spans.construct = Some(Span::new(cstart, self.last_end));
        self.expect_keyword("from")?;
        let mut bindings = vec![self.binding()?];
        while self.eat(',') {
            bindings.push(self.binding()?);
        }
        let condition = if self.keyword("where") {
            self.skip_ws();
            let wstart = self.pos;
            let c = self.cond()?;
            self.spans.condition = Some(Span::new(wstart, self.last_end));
            Some(c)
        } else {
            None
        };
        Ok(SelectQuery {
            construct,
            bindings,
            condition,
        })
    }

    fn binding(&mut self) -> Result<Binding, QueryParseError> {
        self.skip_ws();
        let bstart = self.pos;
        let src_ident = match self.ident() {
            Some(id) => id,
            None => return self.err("expected binding source (db or a variable)"),
        };
        let source_span = self.prev_ident_span(&src_ident);
        let source = if src_ident == "db" {
            Source::Db
        } else {
            Source::Var(src_ident)
        };
        self.expect('.')?;
        self.skip_ws();
        let pstart = self.pos;
        self.pending_label_vars.clear();
        let path = self.path_seq()?;
        let path_span = Span::new(pstart, self.last_end);
        let label_vars = std::mem::take(&mut self.pending_label_vars);
        let var = match self.ident() {
            Some(id) if !KEYWORDS.contains(&id.as_str()) => id,
            Some(kw) => return self.err(format!("expected variable name, found keyword '{kw}'")),
            None => return self.err("expected variable name after path"),
        };
        self.spans.bindings.push(BindingSpans {
            full: Span::new(bstart, self.last_end),
            source: source_span,
            path: path_span,
            var: self.prev_ident_span(&var),
            label_vars,
        });
        Ok(Binding { source, path, var })
    }

    /// A `.`-separated sequence of postfixed primaries. Stops before a
    /// trailing identifier that is not followed by `.` — but since steps
    /// and the bound variable are both identifiers, we parse greedily and
    /// rely on the caller: the *last* identifier in a binding is the
    /// variable, so here we stop when the upcoming identifier is not
    /// followed by `.`, `*`, `+`, `?`, `(`, or another step constituent.
    fn path_seq(&mut self) -> Result<Rpe, QueryParseError> {
        let mut parts = vec![self.postfix()?];
        while self.peek() == Some('.') {
            // Lookahead: `.` then a step.
            self.expect('.')?;
            parts.push(self.postfix()?);
        }
        Ok(Rpe::seq(parts))
    }

    fn postfix(&mut self) -> Result<Rpe, QueryParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.expect('*')?;
                    e = e.star();
                }
                Some('+') => {
                    self.expect('+')?;
                    e = e.plus();
                }
                Some('?') => {
                    self.expect('?')?;
                    e = e.opt();
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Rpe, QueryParseError> {
        bounded!(self, self.primary_inner())
    }

    fn primary_inner(&mut self) -> Result<Rpe, QueryParseError> {
        match self.peek() {
            Some('%') => {
                self.expect('%')?;
                Ok(Rpe::step(Step::wildcard()))
            }
            Some('^') => {
                self.expect('^')?;
                let name = match self.ident() {
                    Some(n) => n,
                    None => return self.err("expected label variable name after '^'"),
                };
                let span = self.prev_ident_span(&name);
                self.pending_label_vars.push((name.clone(), span));
                Ok(Rpe::step(Step::label_var(&name)))
            }
            Some('!') => {
                self.expect('!')?;
                let inner = self.primary()?;
                match inner {
                    Rpe::Step(s) if s.label_var.is_none() => Ok(Rpe::step(Step {
                        pred: Pred::Not(Box::new(s.pred)),
                        label_var: None,
                    })),
                    _ => self.err("'!' applies to a single step"),
                }
            }
            Some('[') => {
                self.expect('[')?;
                let kind = match self.ident().as_deref() {
                    Some("int") => LabelKind::Int,
                    Some("real") => LabelKind::Real,
                    Some("string") | Some("str") => LabelKind::Str,
                    Some("bool") => LabelKind::Bool,
                    Some("symbol") => LabelKind::Symbol,
                    _ => return self.err("expected type name in [...] step"),
                };
                self.expect(']')?;
                Ok(Rpe::step(Step::pred(Pred::Kind(kind))))
            }
            Some('(') => {
                self.expect('(')?;
                let mut alts = vec![self.path_seq()?];
                while self.eat('|') {
                    alts.push(self.path_seq()?);
                }
                self.expect(')')?;
                Ok(Rpe::alt(alts))
            }
            Some('"') => {
                let s = self.string_lit()?;
                Ok(Rpe::step(Step::value(s)))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let v = self.number()?;
                Ok(Rpe::step(Step {
                    pred: Pred::ValueEq(v),
                    label_var: None,
                }))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                if KEYWORDS.contains(&id.as_str()) {
                    return self.err(format!("keyword '{id}' cannot be a path step"));
                }
                Ok(Rpe::symbol(&id))
            }
            _ => self.err("expected path step"),
        }
    }

    fn construct(&mut self) -> Result<Construct, QueryParseError> {
        bounded!(self, self.construct_inner())
    }

    fn construct_inner(&mut self) -> Result<Construct, QueryParseError> {
        match self.peek() {
            Some('{') => {
                self.expect('{')?;
                let mut entries = Vec::new();
                if self.eat('}') {
                    return Ok(Construct::Node(entries));
                }
                loop {
                    let label = self.label_expr()?;
                    self.expect(':')?;
                    let sub = self.construct()?;
                    entries.push((label, sub));
                    if self.eat(',') {
                        continue;
                    }
                    self.expect('}')?;
                    break;
                }
                Ok(Construct::Node(entries))
            }
            Some('"') => Ok(Construct::Atom(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(Construct::Atom(self.number()?)),
            Some(c) if c.is_alphabetic() || c == '_' => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                match id.as_str() {
                    "true" => Ok(Construct::Atom(Value::Bool(true))),
                    "false" => Ok(Construct::Atom(Value::Bool(false))),
                    kw if KEYWORDS.contains(&kw) => {
                        self.err(format!("keyword '{kw}' cannot be a constructor"))
                    }
                    _ => {
                        self.spans.occurrences.push(VarOcc {
                            span: self.prev_ident_span(&id),
                            name: id.clone(),
                            is_label: false,
                            site: OccSite::Construct,
                        });
                        Ok(Construct::Var(id))
                    }
                }
            }
            _ => self.err("expected constructor"),
        }
    }

    fn label_expr(&mut self) -> Result<LabelExpr, QueryParseError> {
        match self.peek() {
            Some('^') => {
                self.expect('^')?;
                let name = match self.ident() {
                    Some(n) => n,
                    None => return self.err("expected label variable after '^'"),
                };
                self.spans.occurrences.push(VarOcc {
                    span: self.prev_ident_span(&name),
                    name: name.clone(),
                    is_label: true,
                    site: OccSite::Construct,
                });
                Ok(LabelExpr::LabelVar(name))
            }
            Some('"') => Ok(LabelExpr::Value(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(LabelExpr::Value(self.number()?)),
            Some(c) if c.is_alphabetic() || c == '_' => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                Ok(LabelExpr::Symbol(id))
            }
            _ => self.err("expected label"),
        }
    }

    fn cond(&mut self) -> Result<Cond, QueryParseError> {
        let mut left = self.cond_and()?;
        while self.keyword("or") {
            let right = self.cond_and()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_and(&mut self) -> Result<Cond, QueryParseError> {
        let mut left = self.cond_unary()?;
        while self.keyword("and") {
            let right = self.cond_unary()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_unary(&mut self) -> Result<Cond, QueryParseError> {
        bounded!(self, self.cond_unary_inner())
    }

    fn cond_unary_inner(&mut self) -> Result<Cond, QueryParseError> {
        if self.keyword("not") {
            return Ok(Cond::Not(Box::new(self.cond_unary()?)));
        }
        if self.keyword("exists") {
            let var = match self.ident() {
                Some(v) => v,
                None => return self.err("expected variable after exists"),
            };
            self.spans.occurrences.push(VarOcc {
                span: self.prev_ident_span(&var),
                name: var.clone(),
                is_label: false,
                site: OccSite::Cond,
            });
            self.expect('.')?;
            self.pending_label_vars.clear();
            let path = self.path_seq()?;
            for (name, span) in std::mem::take(&mut self.pending_label_vars) {
                self.spans.occurrences.push(VarOcc {
                    name,
                    span,
                    is_label: true,
                    site: OccSite::Cond,
                });
            }
            return Ok(Cond::Exists(var, path));
        }
        // Type predicates.
        for (kw, kind) in [
            ("isint", LabelKind::Int),
            ("isreal", LabelKind::Real),
            ("isstring", LabelKind::Str),
            ("isbool", LabelKind::Bool),
            ("issymbol", LabelKind::Symbol),
        ] {
            if self.peek_ident().as_deref() == Some(kw) {
                self.ident();
                self.expect('(')?;
                let e = self.expr()?;
                self.expect(')')?;
                return Ok(Cond::TypeIs(e, kind));
            }
        }
        if self.peek() == Some('(') {
            // Parenthesised condition.
            self.expect('(')?;
            let c = self.cond()?;
            self.expect(')')?;
            return Ok(c);
        }
        let left = self.expr()?;
        if self.keyword("like") {
            let pat = self.string_lit()?;
            return Ok(Cond::Like(left, pat));
        }
        let op = self.cmp_op()?;
        let right = self.expr()?;
        Ok(Cond::Cmp(left, op, right))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryParseError> {
        self.skip_ws();
        let r = self.rest();
        let (op, len) = if r.starts_with("!=") {
            (CmpOp::Ne, 2)
        } else if r.starts_with("<=") {
            (CmpOp::Le, 2)
        } else if r.starts_with(">=") {
            (CmpOp::Ge, 2)
        } else if r.starts_with('=') {
            (CmpOp::Eq, 1)
        } else if r.starts_with('<') {
            (CmpOp::Lt, 1)
        } else if r.starts_with('>') {
            (CmpOp::Gt, 1)
        } else {
            return self.err("expected comparison operator");
        };
        self.pos += len;
        self.last_end = self.pos;
        Ok(op)
    }

    fn expr(&mut self) -> Result<Expr, QueryParseError> {
        match self.peek() {
            Some('"') => Ok(Expr::Const(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(Expr::Const(self.number()?)),
            Some(c) if c.is_alphabetic() || c == '_' => {
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                match id.as_str() {
                    "true" => Ok(Expr::Const(Value::Bool(true))),
                    "false" => Ok(Expr::Const(Value::Bool(false))),
                    kw if KEYWORDS.contains(&kw) => {
                        self.err(format!("keyword '{kw}' cannot be an expression"))
                    }
                    _ => {
                        self.spans.occurrences.push(VarOcc {
                            span: self.prev_ident_span(&id),
                            name: id.clone(),
                            is_label: false,
                            site: OccSite::Cond,
                        });
                        Ok(Expr::Var(id))
                    }
                }
            }
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_select() {
        let q = parse_query(r#"select {Title: T} from db.Entry.Movie M, M.Title T"#).unwrap();
        assert_eq!(q.bindings.len(), 2);
        assert_eq!(q.bindings[0].var, "M");
        assert_eq!(q.bindings[1].source, Source::Var("M".into()));
        match &q.construct {
            Construct::Node(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].0, LabelExpr::Symbol("Title".into()));
            }
            _ => panic!("expected node construct"),
        }
    }

    #[test]
    fn parse_wildcards_and_repetition() {
        let q = parse_query("select X from db.%*.Title X").unwrap();
        // %* then Title
        assert!(matches!(q.bindings[0].path, Rpe::Seq(_, _)));
    }

    #[test]
    fn parse_alternation_and_negation() {
        let q = parse_query(r#"select A from db.Movie.(!Movie)*.Cast.(Actors | Credit.Actors) A"#)
            .unwrap();
        assert_eq!(q.bindings.len(), 1);
        let shown = q.bindings[0].path.to_string();
        assert!(shown.contains("!(Movie)"));
        assert!(shown.contains('|'));
    }

    #[test]
    fn parse_label_variable_and_like() {
        let q = parse_query(r#"select {^L: X} from db.Movie.^L X where L like "act%""#).unwrap();
        match &q.construct {
            Construct::Node(entries) => {
                assert_eq!(entries[0].0, LabelExpr::LabelVar("L".into()));
            }
            _ => panic!(),
        }
        assert!(matches!(q.condition, Some(Cond::Like(_, _))));
    }

    #[test]
    fn parse_conditions() {
        let q = parse_query(
            r#"select M from db.Movie M, M.Year Y
               where (Y >= 1940 and Y <= 1950) or not isint(Y) and exists M.Director"#,
        )
        .unwrap();
        assert!(q.condition.is_some());
    }

    #[test]
    fn parse_value_steps() {
        let q = parse_query(r#"select X from db.%*."Casablanca" X"#).unwrap();
        let shown = q.bindings[0].path.to_string();
        assert!(shown.contains("Casablanca"));
    }

    #[test]
    fn parse_kind_steps() {
        let q = parse_query("select X from db.%*.[int] X").unwrap();
        assert!(q.bindings[0].path.to_string().contains("[int]"));
        assert!(parse_query("select X from db.[badkind] X").is_err());
    }

    #[test]
    fn parse_comments() {
        let q = parse_query("select T -- titles\nfrom db.Movie.Title T -- the binding").unwrap();
        assert_eq!(q.bindings.len(), 1);
    }

    #[test]
    fn reject_invalid_queries() {
        assert!(parse_query("select X from").is_err());
        assert!(parse_query("select X from db.a Y").is_err()); // X unbound
        assert!(parse_query("select X from db.a X extra").is_err());
        assert!(parse_query("select X from X.a X").is_err()); // source unbound
        assert!(parse_query("select select from db.a X").is_err());
        assert!(parse_query("select X from db.a X where").is_err());
    }

    #[test]
    fn reject_keyword_as_variable() {
        assert!(parse_query("select X from db.a where").is_err());
    }

    #[test]
    fn numbers_vs_path_dots() {
        // `db.1942 X` — an integer step; the dot before X's binding var.
        let q = parse_query("select X from db.Year.1942 X").unwrap();
        assert!(q.bindings[0].path.to_string().contains("1942"));
        // Real literal in a condition.
        let q2 = parse_query("select X from db.a X where X > 1.5").unwrap();
        match q2.condition {
            Some(Cond::Cmp(_, CmpOp::Gt, Expr::Const(Value::Real(r)))) => {
                assert!((r - 1.5).abs() < 1e-9);
            }
            other => panic!("unexpected condition {other:?}"),
        }
    }

    #[test]
    fn exists_parses_path() {
        let q = parse_query("select M from db.Movie M where exists M.Cast.Actors").unwrap();
        match q.condition {
            Some(Cond::Exists(v, path)) => {
                assert_eq!(v, "M");
                assert_eq!(path.to_string(), "Cast.Actors");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optional_step() {
        let q = parse_query("select X from db.Cast.Credit?.Actors X").unwrap();
        assert!(q.bindings[0].path.to_string().contains('?'));
    }

    #[test]
    fn spans_point_at_tokens() {
        let src = r#"select {^L: T} from db.Entry.Movie M, M.^L T where T != "x""#;
        let (q, spans) = parse_query_spanned(src).unwrap();
        assert_eq!(q.bindings.len(), 2);
        let slice = |s: Span| &src[s.start..s.end];

        assert_eq!(slice(spans.construct.unwrap()), "{^L: T}");
        assert_eq!(slice(spans.bindings[0].source), "db");
        assert_eq!(slice(spans.bindings[0].path), "Entry.Movie");
        assert_eq!(slice(spans.bindings[0].var), "M");
        assert_eq!(slice(spans.bindings[0].full), "db.Entry.Movie M");
        assert_eq!(slice(spans.bindings[1].source), "M");
        assert_eq!(spans.bindings[1].label_vars.len(), 1);
        assert_eq!(spans.bindings[1].label_vars[0].0, "L");
        assert_eq!(slice(spans.bindings[1].label_vars[0].1), "L");
        assert_eq!(slice(spans.condition.unwrap()), r#"T != "x""#);

        // Occurrences: ^L and T in the head, T in the condition.
        assert_eq!(
            slice(spans.occurrence("L", Some(OccSite::Construct)).unwrap()),
            "L"
        );
        assert_eq!(
            slice(spans.occurrence("T", Some(OccSite::Cond)).unwrap()),
            "T"
        );
        let cond_t = spans.occurrence("T", Some(OccSite::Cond)).unwrap();
        assert!(cond_t.start > spans.bindings[1].full.end);
    }

    #[test]
    fn spans_record_exists_occurrences() {
        let src = "select M from db.Movie M where exists M.Cast.^R";
        let (_, spans) = parse_query_spanned(src).unwrap();
        let m = spans.occurrence("M", Some(OccSite::Cond)).unwrap();
        assert_eq!(&src[m.start..m.end], "M");
        let r = spans
            .occurrences
            .iter()
            .find(|o| o.is_label && o.site == OccSite::Cond)
            .unwrap();
        assert_eq!(r.name, "R");
        assert_eq!(&src[r.span.start..r.span.end], "R");
    }

    #[test]
    fn spanned_parse_skips_validation() {
        // `X` is unbound: parse_query rejects, parse_query_spanned accepts.
        assert!(parse_query("select X from db.a Y").is_err());
        assert!(parse_query_spanned("select X from db.a Y").is_ok());
    }
}
