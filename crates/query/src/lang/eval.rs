//! Evaluation of select-from-where queries.
//!
//! Semantics (UnQL's select fragment): the bindings enumerate assignments
//! by nested-loop joins of RPE matches; for each assignment that satisfies
//! the `where` clause, the constructor is evaluated to a tree; the query
//! result is the *set union* of those trees (union of their top-level edge
//! sets), so `select T ...` with T bound to title nodes yields the set of
//! all title values.
//!
//! Options toggle the optimizer behaviours benchmarked in E10:
//! condition pushdown (evaluate each conjunct as soon as its variables are
//! bound — §4's "extensions of existing techniques for optimization") and
//! DataGuide pruning (\[20\]: skip bindings whose path provably matches
//! nothing).

use super::ast::{CmpOp, Cond, Construct, Expr, LabelExpr, SelectQuery, Source};
use crate::rpe::eval::{eval_nfa_guarded, eval_rpe_guarded};
use crate::rpe::{Nfa, Rpe};
use ssd_diag::{Code, Diagnostic};
use ssd_graph::ops::copy_subgraph;
use ssd_graph::{Graph, Label, LabelKind, NodeId, Value};
use ssd_guard::{Exhausted, Guard};
use ssd_schema::DataGuide;
use ssd_trace::{Phase, Tracer};
use std::collections::HashMap;

/// Fault-injection seam: hit once per binding evaluated by the
/// nested-loop enumerator.
pub const FP_SELECT_BINDING: &str = "select.binding";

/// Approximate bytes one constructed result tree costs. Public so the
/// static cost analysis charges the same unit it measures.
pub const CONSTRUCT_COST: u64 = 128;

/// Exhaustion flows through the evaluator's existing `Result<_, String>`
/// error channel as a rendered headline, exactly like the analyzer gate's
/// SSD0xx refusals.
pub(crate) fn exh(e: Exhausted) -> String {
    e.headline()
}

/// A bound value: a tree node or an edge label.
#[derive(Debug, Clone, PartialEq)]
pub enum BindVal {
    Tree(NodeId),
    Label(Label),
}

/// Evaluation options (the optimizer's knobs).
#[derive(Default)]
pub struct EvalOptions<'a> {
    /// Evaluate conjuncts of the `where` clause as soon as their variables
    /// are bound instead of after all bindings.
    pub pushdown: bool,
    /// Simplify RPEs algebraically before compiling.
    pub simplify_rpe: bool,
    /// Answer db-rooted bindings *from* a DataGuide. This is exact, not
    /// just a pruning heuristic: a data node is reached by some word of
    /// the path language iff a guide node holding it in its target set is
    /// reached by the same word, so evaluating the RPE over the (smaller,
    /// deterministic) guide and unioning target sets returns precisely
    /// the data matches — the path-index payoff of §4/\[22\].
    pub guide: Option<&'a DataGuide>,
    /// Resource guard enforced during evaluation (`None` = unlimited).
    pub guard: Option<&'a Guard>,
    /// Structured-event destination (`None` = tracing disabled; the only
    /// cost left is the `Option` branch at each instrumentation point).
    pub tracer: Option<&'a Tracer>,
}

impl<'a> EvalOptions<'a> {
    /// Everything on.
    pub fn optimized(guide: Option<&'a DataGuide>) -> EvalOptions<'a> {
        EvalOptions {
            pushdown: true,
            simplify_rpe: true,
            guide,
            guard: None,
            tracer: None,
        }
    }

    /// The same options with a resource guard attached.
    #[must_use]
    pub fn with_guard(mut self, guard: &'a Guard) -> EvalOptions<'a> {
        self.guard = Some(guard);
        self
    }

    /// The same options with a tracer attached.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> EvalOptions<'a> {
        self.tracer = Some(tracer);
        self
    }
}

/// Statistics from one evaluation.
#[derive(Debug, Default, Clone)]
pub struct EvalStats {
    /// Assignments that reached the construct stage.
    pub results_constructed: usize,
    /// Assignments enumerated (tuples tried).
    pub assignments_tried: usize,
    /// Bindings skipped by guide pruning.
    pub guide_pruned: usize,
    /// RPE evaluations performed.
    pub rpe_evals: usize,
    /// Analyzer warnings surfaced by the pre-evaluation gate (headline
    /// form). Errors refuse evaluation instead of landing here.
    pub warnings: Vec<String>,
    /// Set when partial-results mode stopped evaluation early: the
    /// headline of the exhaustion that caused the truncation. The result
    /// graph is still well-formed, just incomplete.
    pub truncated: Option<String>,
    /// Per-binding actuals (one entry per query binding, in binding
    /// order) — the dynamic counterpart of the static per-binding cost
    /// intervals, and what `explain --analyze` prints next to them.
    pub per_binding: Vec<BindingProfile>,
}

/// Actuals accumulated for one binding while the nested-loop enumerator
/// runs.
#[derive(Debug, Default, Clone)]
pub struct BindingProfile {
    /// Variable the binding introduces.
    pub var: String,
    /// The binding's path expression, display form.
    pub path: String,
    /// Times the binding's RPE was (re-)evaluated, once per enclosing
    /// assignment prefix.
    pub tried: u64,
    /// Matches produced across all evaluations.
    pub matched: u64,
    /// Guard fuel consumed computing this binding's matches (0 when the
    /// guard is inactive).
    pub fuel: u64,
}

/// Evaluate `query` against `g`, returning the result graph (rooted at the
/// union of all constructed trees) and statistics.
///
/// Evaluation is gated on the static analyzer
/// ([`crate::analyze::analyze_query`]): error diagnostics refuse to run
/// (their error set coincides with [`SelectQuery::validate`]'s rejection
/// set, so nothing that used to evaluate is newly rejected); warnings are
/// collected into [`EvalStats::warnings`].
pub fn evaluate_select(
    g: &Graph,
    query: &SelectQuery,
    opts: &EvalOptions<'_>,
) -> Result<(Graph, EvalStats), String> {
    let unlimited = Guard::unlimited();
    let guard = opts.guard.unwrap_or(&unlimited);
    let mut sp = ssd_trace::span(opts.tracer, Phase::Eval, "select", Some(guard));
    let analysis = {
        let _a = ssd_trace::span(opts.tracer, Phase::Analyze, "analyze", Some(guard));
        crate::analyze::analyze_query(query, None, None)
    };
    if analysis.has_errors() {
        let errors: Vec<String> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.headline())
            .collect();
        return Err(errors.join("; "));
    }
    let mut result = Graph::with_symbols(g.symbols_handle());
    let mut stats = EvalStats {
        warnings: analysis
            .diagnostics
            .iter()
            .filter(|d| !d.is_error())
            .map(|d| d.headline())
            .collect(),
        per_binding: binding_profiles(query),
        ..EvalStats::default()
    };

    // Precompile binding paths.
    let compiled: Vec<(Option<(Rpe, crate::rpe::ast::Step)>, Nfa)> = query
        .bindings
        .iter()
        .map(|b| {
            let path = if opts.simplify_rpe {
                b.path.simplify()
            } else {
                b.path.clone()
            };
            let split = path.split_trailing_label_var();
            let nfa = match &split {
                Some((prefix, _)) => Nfa::compile(prefix),
                None => Nfa::compile(&path),
            };
            (split, nfa)
        })
        .collect();

    // Guide pruning: a db-rooted binding whose path matches nothing in the
    // guide matches nothing in the data.
    if let Some(guide) = opts.guide {
        for (i, b) in query.bindings.iter().enumerate() {
            if b.source == Source::Db {
                let path = if opts.simplify_rpe {
                    b.path.simplify()
                } else {
                    b.path.clone()
                };
                let probe = match path.split_trailing_label_var() {
                    Some((prefix, step)) => {
                        // The prefix must be non-empty somewhere, and the
                        // final step must match some guide edge.
                        let mids =
                            eval_rpe_guarded(guide.graph(), guide.graph().root(), &prefix, guard)
                                .map_err(exh)?;
                        mids.iter().any(|&m| {
                            guide
                                .graph()
                                .edges(m)
                                .iter()
                                .any(|e| step.matches(&e.label, guide.graph().symbols()))
                        })
                    }
                    None => !eval_rpe_guarded(guide.graph(), guide.graph().root(), &path, guard)
                        .map_err(exh)?
                        .is_empty(),
                };
                if !probe {
                    stats.guide_pruned += 1;
                    let _ = i;
                    // Empty result.
                    return Ok((result, stats));
                }
            }
        }
    }

    // Conjuncts for pushdown, each tagged with its variable set.
    let conjuncts: Vec<&Cond> = query
        .condition
        .as_ref()
        .map(|c| c.conjuncts())
        .unwrap_or_default();
    // For pushdown: the earliest binding index after which each conjunct is
    // fully bound.
    let bound_after: Vec<usize> = conjuncts
        .iter()
        .map(|c| {
            let vars = c.vars();
            let mut idx = 0;
            for (i, b) in query.bindings.iter().enumerate() {
                let binds_here = vars.contains(b.var.as_str())
                    || b.path.label_vars().iter().any(|lv| vars.contains(lv));
                if binds_here {
                    idx = i + 1;
                }
            }
            idx.max(1)
        })
        .collect();

    let mut env: HashMap<String, BindVal> = HashMap::new();
    // One shared leaf for all constructed atoms: equal atoms then produce
    // identical (label, node) edges, which the edge-set union dedupes —
    // matching the model's set semantics.
    let atom_leaf = result.add_node();
    let mut copy_memo: HashMap<NodeId, NodeId> = HashMap::new();
    let outcome = enumerate(
        g,
        query,
        &compiled,
        &conjuncts,
        &bound_after,
        opts,
        guard,
        0,
        &mut env,
        &mut result,
        atom_leaf,
        &mut copy_memo,
        &mut stats,
    );
    if let Err(why) = &outcome {
        ssd_trace::instant(
            opts.tracer,
            Phase::Guard,
            "exhausted",
            vec![("cause", why.clone().into())],
        );
    }
    outcome?;
    result.gc();
    note_truncation(guard, &mut stats);
    finish_select_trace(opts.tracer, &mut sp, &stats);
    Ok((result, stats))
}

/// Shared per-binding initialisation: one zeroed profile per binding, in
/// binding order, so `explain --analyze` lines up with the static
/// per-binding intervals.
pub(crate) fn binding_profiles(query: &SelectQuery) -> Vec<BindingProfile> {
    query
        .bindings
        .iter()
        .map(|b| BindingProfile {
            var: b.var.clone(),
            path: b.path.to_string(),
            ..BindingProfile::default()
        })
        .collect()
}

/// Trace epilogue shared by [`evaluate_select`] and
/// [`evaluate_select_seeded`]: one child span per binding carrying its
/// accumulated actuals (fuel attributed so folded stacks weigh the
/// bindings correctly), a truncation instant when partial mode stopped
/// early, and summary fields on the enclosing select span.
pub(crate) fn finish_select_trace(
    tracer: Option<&Tracer>,
    sp: &mut ssd_trace::Span<'_>,
    stats: &EvalStats,
) {
    let Some(t) = tracer else { return };
    if let Some(why) = &stats.truncated {
        t.instant(
            Phase::Guard,
            "truncated",
            vec![("cause", why.as_str().into())],
        );
    }
    for bp in &stats.per_binding {
        let id = t.open_detached(
            Phase::Eval,
            "binding",
            sp.id(),
            vec![
                ("var", bp.var.as_str().into()),
                ("path", bp.path.as_str().into()),
            ],
        );
        t.close_detached(
            id,
            Phase::Eval,
            "binding",
            bp.fuel,
            0,
            vec![
                ("var", bp.var.as_str().into()),
                ("tried", bp.tried.into()),
                ("matched", bp.matched.into()),
            ],
        );
    }
    sp.field("results", stats.results_constructed);
    sp.field("assignments", stats.assignments_tried);
    sp.field("rpe_evals", stats.rpe_evals);
    sp.field("guide_pruned", stats.guide_pruned);
}

/// In partial mode, surface the guard's recorded truncation as an SSD107
/// warning plus [`EvalStats::truncated`].
pub(crate) fn note_truncation(guard: &Guard, stats: &mut EvalStats) {
    if let Some(why) = guard.truncation() {
        stats.truncated = Some(why.headline());
        stats.warnings.push(
            Diagnostic::new(
                Code::TruncatedResult,
                format!("result truncated: {}", why.message()),
            )
            .headline(),
        );
    }
}

/// Evaluate `query` with its *first* binding's variable pre-bound to
/// `node` (and its label variable, if any, to `label`): the residual
/// sub-query of \[35\]-style query decomposition
/// ([`crate::decompose::evaluate_select_parallel`]). The first binding's
/// path is NOT re-evaluated; `node`/`label` must come from a prior
/// evaluation of it.
pub fn evaluate_select_seeded(
    g: &Graph,
    query: &SelectQuery,
    node: NodeId,
    label: Option<Label>,
    opts: &EvalOptions<'_>,
) -> Result<(Graph, EvalStats), String> {
    query.validate()?;
    if query.bindings.is_empty() {
        return Err("seeded evaluation requires at least one binding".into());
    }
    let unlimited = Guard::unlimited();
    let guard = opts.guard.unwrap_or(&unlimited);
    let mut sp = ssd_trace::span(opts.tracer, Phase::Eval, "select.seeded", Some(guard));
    let mut result = Graph::with_symbols(g.symbols_handle());
    let mut stats = EvalStats {
        per_binding: binding_profiles(query),
        ..EvalStats::default()
    };
    let compiled: Vec<(Option<(Rpe, crate::rpe::ast::Step)>, Nfa)> = query
        .bindings
        .iter()
        .map(|b| {
            let path = if opts.simplify_rpe {
                b.path.simplify()
            } else {
                b.path.clone()
            };
            let split = path.split_trailing_label_var();
            let nfa = match &split {
                Some((prefix, _)) => Nfa::compile(prefix),
                None => Nfa::compile(&path),
            };
            (split, nfa)
        })
        .collect();
    let conjuncts: Vec<&Cond> = query
        .condition
        .as_ref()
        .map(|c| c.conjuncts())
        .unwrap_or_default();
    let bound_after: Vec<usize> = conjuncts
        .iter()
        .map(|c| {
            let vars = c.vars();
            let mut idx = 0;
            for (i, b) in query.bindings.iter().enumerate() {
                let binds_here = vars.contains(b.var.as_str())
                    || b.path.label_vars().iter().any(|lv| vars.contains(lv));
                if binds_here {
                    idx = i + 1;
                }
            }
            idx.max(1)
        })
        .collect();
    let mut env: HashMap<String, BindVal> = HashMap::new();
    env.insert(query.bindings[0].var.clone(), BindVal::Tree(node));
    if let (Some(lv), Some(l)) = (query.bindings[0].path.label_vars().first(), label) {
        env.insert((*lv).to_string(), BindVal::Label(l));
    }
    // Conjuncts bound by binding 0 are checked up front under pushdown.
    if opts.pushdown {
        for (ci, c) in conjuncts.iter().enumerate() {
            if bound_after[ci] == 1 && !eval_cond(g, c, &env, guard, &mut stats)? {
                result.gc();
                return Ok((result, stats));
            }
        }
    }
    let atom_leaf = result.add_node();
    let mut copy_memo: HashMap<NodeId, NodeId> = HashMap::new();
    let outcome = enumerate(
        g,
        query,
        &compiled,
        &conjuncts,
        &bound_after,
        opts,
        guard,
        1, // skip binding 0: it is seeded
        &mut env,
        &mut result,
        atom_leaf,
        &mut copy_memo,
        &mut stats,
    );
    if let Err(why) = &outcome {
        ssd_trace::instant(
            opts.tracer,
            Phase::Guard,
            "exhausted",
            vec![("cause", why.clone().into())],
        );
    }
    outcome?;
    result.gc();
    note_truncation(guard, &mut stats);
    finish_select_trace(opts.tracer, &mut sp, &stats);
    Ok((result, stats))
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    g: &Graph,
    query: &SelectQuery,
    compiled: &[(Option<(Rpe, crate::rpe::ast::Step)>, Nfa)],
    conjuncts: &[&Cond],
    bound_after: &[usize],
    opts: &EvalOptions<'_>,
    guard: &Guard,
    depth: usize,
    env: &mut HashMap<String, BindVal>,
    result: &mut Graph,
    atom_leaf: NodeId,
    copy_memo: &mut HashMap<NodeId, NodeId>,
    stats: &mut EvalStats,
) -> Result<(), String> {
    if !(guard.tick(1).map_err(exh)? && guard.enter_depth(depth).map_err(exh)?) {
        return Ok(());
    }
    if depth == query.bindings.len() {
        stats.assignments_tried += 1;
        // Residual conditions (all, if no pushdown; none, if pushdown got
        // them all).
        if !opts.pushdown {
            for c in conjuncts {
                if !eval_cond(g, c, env, guard, stats)? {
                    return Ok(());
                }
            }
        }
        if !guard.alloc(CONSTRUCT_COST).map_err(exh)? {
            return Ok(());
        }
        stats.results_constructed += 1;
        let edges = construct_edges(g, &query.construct, env, result, atom_leaf, copy_memo)?;
        let root = result.root();
        for (label, to) in edges {
            result.add_edge(root, label, to);
        }
        return Ok(());
    }
    if !guard.fail_point(FP_SELECT_BINDING).map_err(exh)? {
        return Ok(());
    }
    let binding = &query.bindings[depth];
    let start = match &binding.source {
        Source::Db => g.root(),
        Source::Var(v) => match env.get(v) {
            Some(BindVal::Tree(n)) => *n,
            Some(BindVal::Label(_)) => {
                return Err(format!("binding source {v} is a label, not a tree"))
            }
            None => return Err(format!("unbound source variable {v}")),
        },
    };
    let (split, nfa) = &compiled[depth];
    stats.rpe_evals += 1;
    let fuel_before = guard.steps_used();
    // Guide-exact evaluation: a db-rooted RPE can be answered entirely
    // from the DataGuide (see `EvalOptions::guide`).
    let guide_mids: Option<Vec<NodeId>> = match (&binding.source, opts.guide) {
        (Source::Db, Some(guide)) => {
            let guide_nodes =
                eval_nfa_guarded(guide.graph(), guide.graph().root(), nfa, guard).map_err(exh)?;
            let mut mids: Vec<NodeId> = guide_nodes
                .into_iter()
                .flat_map(|gn| guide.targets(gn).iter().copied())
                .collect();
            mids.sort_unstable();
            mids.dedup();
            Some(mids)
        }
        _ => None,
    };
    let matches: Vec<(Option<Label>, NodeId)> = match split {
        Some((_, step)) => {
            let mids = match guide_mids {
                Some(m) => m,
                None => eval_nfa_guarded(g, start, nfa, guard).map_err(exh)?,
            };
            let mut out = Vec::new();
            'scan: for mid in mids {
                for e in g.edges(mid) {
                    if !guard.tick(1).map_err(exh)? {
                        break 'scan;
                    }
                    if step.matches(&e.label, g.symbols()) {
                        out.push((Some(e.label.clone()), e.to));
                    }
                }
            }
            out.sort();
            out.dedup();
            out
        }
        None => match guide_mids {
            Some(m) => m.into_iter().map(|n| (None, n)).collect(),
            None => eval_nfa_guarded(g, start, nfa, guard)
                .map_err(exh)?
                .into_iter()
                .map(|n| (None, n))
                .collect(),
        },
    };
    if let Some(bp) = stats.per_binding.get_mut(depth) {
        bp.tried += 1;
        bp.matched += matches.len() as u64;
        bp.fuel += guard.steps_used().saturating_sub(fuel_before);
    }
    let label_var = binding.path.label_vars().first().map(|s| s.to_string());
    for (label, node) in matches {
        env.insert(binding.var.clone(), BindVal::Tree(node));
        if let (Some(lv), Some(l)) = (&label_var, &label) {
            env.insert(lv.clone(), BindVal::Label(l.clone()));
        }
        // Pushdown: check all conjuncts that became fully bound here.
        let mut ok = true;
        if opts.pushdown {
            for (ci, c) in conjuncts.iter().enumerate() {
                if bound_after[ci] == depth + 1 && !eval_cond(g, c, env, guard, stats)? {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            enumerate(
                g,
                query,
                compiled,
                conjuncts,
                bound_after,
                opts,
                guard,
                depth + 1,
                env,
                result,
                atom_leaf,
                copy_memo,
                stats,
            )?;
        }
        env.remove(&binding.var);
        if let Some(lv) = &label_var {
            env.remove(lv);
        }
    }
    Ok(())
}

/// Evaluate a constructor to the edge set it contributes at the top level.
pub(crate) fn construct_edges(
    g: &Graph,
    c: &Construct,
    env: &HashMap<String, BindVal>,
    result: &mut Graph,
    atom_leaf: NodeId,
    copy_memo: &mut HashMap<NodeId, NodeId>,
) -> Result<Vec<(Label, NodeId)>, String> {
    match c {
        Construct::Node(entries) => {
            let mut out = Vec::with_capacity(entries.len());
            for (lx, sub) in entries {
                let label = eval_label_expr(g, lx, env)?;
                let node = construct_node(g, sub, env, result, atom_leaf, copy_memo)?;
                out.push((label, node));
            }
            Ok(out)
        }
        Construct::Var(v) => match env.get(v) {
            Some(BindVal::Tree(n)) => {
                // Union semantics: contribute the node's edges (copied).
                let copied = copy_into(g, *n, result, copy_memo);
                Ok(result
                    .edges(copied)
                    .to_vec()
                    .into_iter()
                    .map(|e| (e.label, e.to))
                    .collect())
            }
            Some(BindVal::Label(l)) => {
                // A label contributes itself as a value edge.
                Ok(vec![(label_as_value(l, g), atom_leaf)])
            }
            None => Err(format!("unbound variable {v} in construct")),
        },
        Construct::Atom(v) => Ok(vec![(Label::Value(v.clone()), atom_leaf)]),
    }
}

/// Evaluate a constructor to a node in the result graph.
fn construct_node(
    g: &Graph,
    c: &Construct,
    env: &HashMap<String, BindVal>,
    result: &mut Graph,
    atom_leaf: NodeId,
    copy_memo: &mut HashMap<NodeId, NodeId>,
) -> Result<NodeId, String> {
    match c {
        Construct::Node(entries) => {
            let n = result.add_node();
            for (lx, sub) in entries {
                let label = eval_label_expr(g, lx, env)?;
                let node = construct_node(g, sub, env, result, atom_leaf, copy_memo)?;
                result.add_edge(n, label, node);
            }
            Ok(n)
        }
        Construct::Var(v) => match env.get(v) {
            Some(BindVal::Tree(n)) => Ok(copy_into(g, *n, result, copy_memo)),
            Some(BindVal::Label(l)) => {
                let n = result.add_node();
                let label = label_as_value(l, g);
                result.add_edge(n, label, atom_leaf);
                Ok(n)
            }
            None => Err(format!("unbound variable {v} in construct")),
        },
        Construct::Atom(v) => {
            let n = result.add_node();
            result.add_edge(n, Label::Value(v.clone()), atom_leaf);
            Ok(n)
        }
    }
}

fn eval_label_expr(
    g: &Graph,
    lx: &LabelExpr,
    env: &HashMap<String, BindVal>,
) -> Result<Label, String> {
    match lx {
        LabelExpr::Symbol(s) => Ok(Label::symbol(g.symbols(), s)),
        LabelExpr::Value(v) => Ok(Label::Value(v.clone())),
        LabelExpr::LabelVar(v) => match env.get(v) {
            Some(BindVal::Label(l)) => Ok(l.clone()),
            Some(BindVal::Tree(_)) => Err(format!("{v} is a tree variable, not a label")),
            None => Err(format!("unbound label variable ^{v}")),
        },
    }
}

/// Copy a subtree from the data graph into the result graph (cycle-safe,
/// memoized so repeated references share structure).
fn copy_into(
    g: &Graph,
    n: NodeId,
    result: &mut Graph,
    memo: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&img) = memo.get(&n) {
        return img;
    }
    let img = copy_subgraph(g, n, result);
    // copy_subgraph doesn't expose its internal map; record at least the
    // root image. (Sharing *within* one copy is preserved by
    // copy_subgraph; sharing across separate construct evaluations is
    // preserved by this memo.)
    memo.insert(n, img);
    img
}

/// View a bound label as a value label for use in atom positions: value
/// labels pass through; symbols become their name string.
fn label_as_value(l: &Label, g: &Graph) -> Label {
    match l {
        Label::Value(_) => l.clone(),
        Label::Symbol(s) => Label::Value(Value::Str(g.symbols().resolve(*s).to_string())),
    }
}

/// Evaluate a condition under the current environment.
pub(crate) fn eval_cond(
    g: &Graph,
    c: &Cond,
    env: &HashMap<String, BindVal>,
    guard: &Guard,
    stats: &mut EvalStats,
) -> Result<bool, String> {
    match c {
        Cond::Cmp(a, op, b) => {
            let va = expr_values(g, a, env)?;
            let vb = expr_values(g, b, env)?;
            // Existential overloading (Lorel-style): true if some pair of
            // values satisfies the comparison.
            Ok(va.iter().any(|x| {
                vb.iter().any(|y| {
                    let ord = x.query_cmp(y);
                    match op {
                        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                        CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    }
                })
            }))
        }
        Cond::Like(e, pat) => {
            let vals = expr_values(g, e, env)?;
            Ok(vals.iter().any(|v| match v {
                Value::Str(s) => like_match(s, pat),
                _ => false,
            }))
        }
        Cond::TypeIs(e, kind) => match e {
            Expr::Var(v) => match env.get(v) {
                Some(BindVal::Label(l)) => Ok(l.kind() == *kind),
                Some(BindVal::Tree(n)) => Ok(g
                    .values_at(*n)
                    .iter()
                    .any(|val| LabelKind::from_value_kind(val.kind()) == *kind)),
                None => Err(format!("unbound variable {v}")),
            },
            Expr::Const(v) => Ok(LabelKind::from_value_kind(v.kind()) == *kind),
        },
        Cond::Exists(v, path) => match env.get(v) {
            Some(BindVal::Tree(n)) => {
                stats.rpe_evals += 1;
                Ok(!eval_rpe_guarded(g, *n, path, guard)
                    .map_err(exh)?
                    .is_empty())
            }
            Some(BindVal::Label(_)) => Err(format!("{v} is a label, not a tree")),
            None => Err(format!("unbound variable {v}")),
        },
        Cond::Not(inner) => Ok(!eval_cond(g, inner, env, guard, stats)?),
        Cond::And(a, b) => {
            Ok(eval_cond(g, a, env, guard, stats)? && eval_cond(g, b, env, guard, stats)?)
        }
        Cond::Or(a, b) => {
            Ok(eval_cond(g, a, env, guard, stats)? || eval_cond(g, b, env, guard, stats)?)
        }
    }
}

/// The set of values an expression denotes: constants denote themselves;
/// tree variables denote the values hanging off their node (Lorel's
/// object-vs-value coercion); label variables denote their label's value
/// (symbols coerce to their name string so `L like "act%"` works).
fn expr_values(g: &Graph, e: &Expr, env: &HashMap<String, BindVal>) -> Result<Vec<Value>, String> {
    match e {
        Expr::Const(v) => Ok(vec![v.clone()]),
        Expr::Var(v) => match env.get(v) {
            Some(BindVal::Tree(n)) => Ok(g.values_at(*n).into_iter().cloned().collect()),
            Some(BindVal::Label(Label::Value(val))) => Ok(vec![val.clone()]),
            Some(BindVal::Label(Label::Symbol(s))) => {
                Ok(vec![Value::Str(g.symbols().resolve(*s).to_string())])
            }
            None => Err(format!("unbound variable {v}")),
        },
    }
}

/// SQL-style LIKE restricted to `%` at the ends: `"abc"`, `"abc%"`,
/// `"%abc"`, `"%abc%"`.
fn like_match(s: &str, pat: &str) -> bool {
    let starts = pat.starts_with('%');
    let ends = pat.ends_with('%');
    let core = pat.trim_start_matches('%').trim_end_matches('%');
    match (starts, ends) {
        (false, false) => s == core,
        (false, true) => s.starts_with(core),
        (true, false) => s.ends_with(core),
        (true, true) => s.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_query;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::{parse_graph, write_graph};

    fn movie_db() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                                Cast: {Actors: "Bogart", Actors: "Bacall"},
                                Director: "Curtiz",
                                Year: 1942}},
                Entry: {Movie: {Title: "Play it again, Sam",
                                Cast: {Credit: {Actors: "Allen"}},
                                Director: "Allen",
                                Year: 1972}},
                Entry: {TV_Show: {Title: "Annie Hall Special",
                                  Episode: 3}}}"#,
        )
        .unwrap()
    }

    fn run(g: &Graph, src: &str) -> Graph {
        let q = parse_query(src).unwrap();
        let (result, _) = evaluate_select(g, &q, &EvalOptions::default()).unwrap();
        result
    }

    #[test]
    fn analyzer_gate_refuses_errors_and_surfaces_warnings() {
        let g = movie_db();
        // Error: unbound variable — refused with the diagnostic code.
        let q = parse_query("select T from db.Entry.Movie.Title T").map(|mut q| {
            q.construct = Construct::Var("Z".into());
            q
        });
        let err = evaluate_select(&g, &q.unwrap(), &EvalOptions::default()).unwrap_err();
        assert!(err.contains("SSD001"), "{err}");
        assert!(err.contains("unbound variable"), "{err}");
        // Warning: unused binding — runs, but lands in stats.warnings.
        let q2 = parse_query("select T from db.Entry.Movie.Title T, db.Entry E").unwrap();
        let (_, stats) = evaluate_select(&g, &q2, &EvalOptions::default()).unwrap();
        assert_eq!(stats.warnings.len(), 1, "{:?}", stats.warnings);
        assert!(stats.warnings[0].contains("SSD004"), "{:?}", stats.warnings);
    }

    #[test]
    fn select_titles() {
        let g = movie_db();
        let r = run(&g, "select T from db.Entry.Movie.Title T");
        // Union of the two title nodes' edges: two string value edges.
        assert_eq!(r.out_degree(r.root()), 2);
        let vals: Vec<String> = r
            .values_at(r.root())
            .iter()
            .filter_map(|v| v.as_str().map(str::to_owned))
            .collect();
        assert!(vals.contains(&"Casablanca".to_string()));
    }

    #[test]
    fn construct_wraps_results() {
        let g = movie_db();
        let r = run(&g, "select {Title: T} from db.Entry.Movie.Title T");
        assert_eq!(r.successors_by_name(r.root(), "Title").len(), 2);
        let expected =
            parse_graph(r#"{Title: "Casablanca", Title: "Play it again, Sam"}"#).unwrap();
        assert!(graphs_bisimilar(&r, &expected));
    }

    #[test]
    fn variables_tie_paths_together() {
        // §3's point: Title and Director must come from the SAME movie.
        let g = movie_db();
        let r = run(
            &g,
            r#"select {Pair: {T: T, D: D}} from db.Entry.Movie M, M.Title T, M.Director D"#,
        );
        let pairs = r.successors_by_name(r.root(), "Pair");
        assert_eq!(pairs.len(), 2);
        // No cross-product pair (Casablanca, Allen) style mixing: check each
        // pair is internally consistent.
        for p in pairs {
            let t = r.successors_by_name(p, "T")[0];
            let d = r.successors_by_name(p, "D")[0];
            let tv = r.values_at(t)[0].as_str().unwrap().to_owned();
            let dv = r.values_at(d)[0].as_str().unwrap().to_owned();
            match tv.as_str() {
                "Casablanca" => assert_eq!(dv, "Curtiz"),
                "Play it again, Sam" => assert_eq!(dv, "Allen"),
                other => panic!("unexpected title {other}"),
            }
        }
    }

    #[test]
    fn where_comparison_filters() {
        let g = movie_db();
        let r = run(
            &g,
            r#"select T from db.Entry.Movie M, M.Title T, M.Year Y where Y < 1950"#,
        );
        assert_eq!(r.out_degree(r.root()), 1);
        assert_eq!(r.values_at(r.root())[0].as_str(), Some("Casablanca"));
    }

    #[test]
    fn where_string_equality() {
        let g = movie_db();
        let r = run(
            &g,
            r#"select {Found: M} from db.Entry.Movie M, M.Title T where T = "Casablanca""#,
        );
        assert_eq!(r.successors_by_name(r.root(), "Found").len(), 1);
    }

    #[test]
    fn exists_condition() {
        let g = movie_db();
        let r = run(
            &g,
            r#"select T from db.Entry.%.Title T, db.Entry.% M where exists M.Episode and exists M.Title"#,
        );
        // Both Entry children M with Episode: only the TV show; but T ranges
        // over all titles — M and T are not tied here, so all titles appear
        // (cross product semantics).
        assert_eq!(r.out_degree(r.root()), 3);
        let r2 = run(
            &g,
            r#"select T from db.Entry.% M, M.Title T where exists M.Episode"#,
        );
        assert_eq!(r2.out_degree(r2.root()), 1);
        assert_eq!(
            r2.values_at(r2.root())[0].as_str(),
            Some("Annie Hall Special")
        );
    }

    #[test]
    fn label_variables_and_like() {
        let g = movie_db();
        // All attribute names under entries that start with "Dir".
        let r = run(&g, r#"select L from db.Entry.%.^L X where L like "Dir%""#);
        assert_eq!(r.out_degree(r.root()), 1);
        assert_eq!(r.values_at(r.root())[0].as_str(), Some("Director"));
    }

    #[test]
    fn label_variable_in_construct_position() {
        let g = movie_db();
        let r = run(&g, r#"select {^L: X} from db.Entry.TV_Show.^L X"#);
        // TV show attributes rebuilt under the result root.
        assert_eq!(r.successors_by_name(r.root(), "Title").len(), 1);
        assert_eq!(r.successors_by_name(r.root(), "Episode").len(), 1);
    }

    #[test]
    fn negated_step_allen_not_in_casablanca() {
        let g = movie_db();
        // Movies where "Allen" occurs below without crossing another Movie
        // edge.
        let r = run(
            &g,
            r#"select T from db.Entry.Movie M, M.Title T, M.(!Movie)*."Allen" A"#,
        );
        assert_eq!(r.out_degree(r.root()), 1);
        assert_eq!(
            r.values_at(r.root())[0].as_str(),
            Some("Play it again, Sam")
        );
    }

    #[test]
    fn type_predicates() {
        let g = movie_db();
        let r = run(&g, r#"select {N: X} from db.Entry.%.^L X where isint(X)"#);
        // Year (x2) and Episode carry ints.
        assert_eq!(r.successors_by_name(r.root(), "N").len(), 3);
    }

    #[test]
    fn atom_constructor() {
        let g = movie_db();
        let r = run(&g, r#"select {hit: 1} from db.Entry.Movie M"#);
        // Two movies but identical constructed trees union to one edge...
        // each construct makes a fresh node, so edges dedup by (label, node)
        // only; bisimilarity collapses them.
        let expected = parse_graph("{hit: 1, hit: 1}").unwrap();
        assert!(graphs_bisimilar(&r, &expected));
    }

    #[test]
    fn empty_result_is_empty_graph() {
        let g = movie_db();
        let r = run(&g, r#"select T from db.Nope.Title T"#);
        assert!(r.is_leaf(r.root()));
    }

    #[test]
    fn pushdown_agrees_with_baseline() {
        let g = movie_db();
        let q = parse_query(
            r#"select {T: T, D: D} from db.Entry.Movie M, M.Title T, M.Director D, M.Year Y
               where Y > 1950 and D = "Allen""#,
        )
        .unwrap();
        let (base, base_stats) = evaluate_select(&g, &q, &EvalOptions::default()).unwrap();
        let (opt, opt_stats) = evaluate_select(
            &g,
            &q,
            &EvalOptions {
                pushdown: true,
                simplify_rpe: true,
                guide: None,
                guard: None,
                tracer: None,
            },
        )
        .unwrap();
        assert!(graphs_bisimilar(&base, &opt));
        // Pushdown prunes assignments before full enumeration.
        assert!(opt_stats.assignments_tried <= base_stats.assignments_tried);
    }

    #[test]
    fn guide_pruning_short_circuits_empty_queries() {
        let g = movie_db();
        let guide = DataGuide::build(&g);
        let q = parse_query(r#"select T from db.NoSuchLabel.%* T"#).unwrap();
        let (r, stats) = evaluate_select(
            &g,
            &q,
            &EvalOptions {
                pushdown: false,
                simplify_rpe: false,
                guide: Some(&guide),
                guard: None,
                tracer: None,
            },
        )
        .unwrap();
        assert!(r.is_leaf(r.root()));
        assert_eq!(stats.guide_pruned, 1);
        assert_eq!(stats.rpe_evals, 0, "no data-graph RPE evaluation at all");
    }

    #[test]
    fn guide_pruning_preserves_nonempty_results() {
        let g = movie_db();
        let guide = DataGuide::build(&g);
        let q = parse_query("select T from db.Entry.Movie.Title T").unwrap();
        let (with_guide, _) =
            evaluate_select(&g, &q, &EvalOptions::optimized(Some(&guide))).unwrap();
        let (without, _) = evaluate_select(&g, &q, &EvalOptions::default()).unwrap();
        assert!(graphs_bisimilar(&with_guide, &without));
    }

    #[test]
    fn result_graph_is_serializable() {
        let g = movie_db();
        let r = run(&g, "select {Movie: M} from db.Entry.Movie M");
        let text = write_graph(&r);
        let reparsed = parse_graph(&text).unwrap();
        assert!(graphs_bisimilar(&r, &reparsed));
    }

    #[test]
    fn like_match_variants() {
        assert!(like_match("Director", "Dir%"));
        assert!(like_match("Director", "%ector"));
        assert!(like_match("Director", "%rect%"));
        assert!(like_match("Director", "Director"));
        assert!(!like_match("Director", "direct%"));
        assert!(!like_match("Director", "%xyz%"));
    }

    #[test]
    fn cross_binding_value_join() {
        // Movies sharing a director with another entry's cast member:
        // "Allen" directs and acts.
        let g = movie_db();
        let r = run(
            &g,
            r#"select {Both: D} from db.Entry.Movie M, M.Director D,
                    M.Cast.(Actors | Credit.Actors) A
               where A = D"#,
        );
        assert_eq!(r.successors_by_name(r.root(), "Both").len(), 1);
    }
}
