//! Source-span side tables for parsed queries.
//!
//! The AST ([`super::ast`]) stays span-free so structural equality and the
//! print/parse round-trip laws are unaffected; the parser instead records
//! byte spans here, indexed in parallel with the AST. The static analyzer
//! ([`crate::analyze`]) consumes them to point diagnostics at the exact
//! identifier the user typed — and degrades gracefully to span-less
//! diagnostics when a query was built programmatically.

use ssd_diag::Span;

/// Spans of one `from`-clause binding's pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingSpans {
    /// The whole `source.path Var` region.
    pub full: Span,
    /// The source (`db` or the referenced variable).
    pub source: Span,
    /// The path expression.
    pub path: Span,
    /// The bound tree variable.
    pub var: Span,
    /// Label variables (`^L`) appearing in the path, in occurrence order.
    pub label_vars: Vec<(String, Span)>,
}

/// Where a recorded variable occurrence sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccSite {
    /// In the select head (constructor).
    Construct,
    /// In the where clause (including `exists` subjects).
    Cond,
}

/// One variable occurrence outside the `from` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarOcc {
    pub name: String,
    pub span: Span,
    /// True for label-variable occurrences (`^L`).
    pub is_label: bool,
    pub site: OccSite,
}

/// Span side table for a whole query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuerySpans {
    /// One entry per binding, parallel to `SelectQuery::bindings`.
    pub bindings: Vec<BindingSpans>,
    /// The select head.
    pub construct: Option<Span>,
    /// The where clause, if present.
    pub condition: Option<Span>,
    /// Variable references in the constructor and condition.
    pub occurrences: Vec<VarOcc>,
}

impl QuerySpans {
    /// Span of the binder variable of binding `i`, if recorded.
    pub fn binder(&self, i: usize) -> Option<Span> {
        self.bindings.get(i).map(|b| b.var)
    }

    /// Span of the source of binding `i`, if recorded.
    pub fn source(&self, i: usize) -> Option<Span> {
        self.bindings.get(i).map(|b| b.source)
    }

    /// Span of the path of binding `i`, if recorded.
    pub fn path(&self, i: usize) -> Option<Span> {
        self.bindings.get(i).map(|b| b.path)
    }

    /// Span where label variable `name` is bound, if recorded.
    pub fn label_binder(&self, name: &str) -> Option<Span> {
        self.bindings
            .iter()
            .flat_map(|b| &b.label_vars)
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// First recorded occurrence of `name` outside the from clause,
    /// optionally restricted to a site.
    pub fn occurrence(&self, name: &str, site: Option<OccSite>) -> Option<Span> {
        self.occurrences
            .iter()
            .find(|o| o.name == name && site.is_none_or(|s| o.site == s))
            .map(|o| o.span)
    }
}
