//! The surface query language — an UnQL/Lorel-flavoured
//! select-from-where with path patterns.
//!
//! §3 motivates the design: a bare SQL-ish `select Entry.Movie.Title`
//! "does not make clear how much of the two paths ... are to be taken as
//! the same. The solution is to introduce variables to indicate how paths
//! or edges are to be tied together." So bindings name their targets, and
//! later bindings may start from earlier variables:
//!
//! ```text
//! select {Title: T}
//! from   db.Entry.Movie M,
//!        M.Title T,
//!        M.(!Movie)*.^L X
//! where  L like "act%" and exists M.Director
//! ```
//!
//! * tree variables (`M`, `T`, `X`) bind nodes;
//! * label variables (`^L`) bind the label of the final edge of a path;
//! * paths are full regular path expressions (`%` wildcard, `!l` negated
//!   step, `(a|b)`, `*`, `+`, `?`, `[int]`-style type tests);
//! * the `where` clause has comparisons (overloaded existentially over the
//!   values at a node, the Lorel-style coercion §3 mentions), `like`
//!   prefix/suffix patterns, type predicates, `exists`, and boolean
//!   connectives.

pub mod ast;
pub mod eval;
pub mod parser;
pub mod rewrite;
pub mod spans;

pub use ast::{Binding, CmpOp, Cond, Construct, Expr, LabelExpr, SelectQuery, Source};
pub use eval::{evaluate_select, BindingProfile, EvalOptions, EvalStats};
pub use parser::{parse_query, parse_query_spanned, QueryParseError};
pub use rewrite::parse_rewrite;
pub use spans::{BindingSpans, OccSite, QuerySpans, VarOcc};
