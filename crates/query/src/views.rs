//! Views over semistructured data (\[4\], §3).
//!
//! §3: "Some simple forms of restructuring are also present in a view
//! definition language proposed in \[4\]" (Abiteboul, Goldman, McHugh,
//! Vassalos & Zhuge, *Views for semistructured data*). A view here is a
//! named select-from-where query; a [`ViewCatalog`] materialises its views
//! *in definition order* into an extended database whose root carries one
//! edge per view name — so later views (and user queries) can traverse
//! into earlier views with ordinary paths (`db.recent_movies.Title`),
//! giving view composition for free.

use crate::lang::{evaluate_select, parse_query, EvalOptions, SelectQuery};
use ssd_graph::ops::copy_subgraph;
use ssd_graph::{Graph, Label};

/// A named, parsed view definition.
#[derive(Debug, Clone)]
pub struct View {
    pub name: String,
    pub query: SelectQuery,
    /// The original query text, for display/serialization.
    pub text: String,
}

/// An ordered catalog of views.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    views: Vec<View>,
}

/// Errors from view definition or materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    DuplicateName(String),
    Parse(String),
    Eval(String),
    ReservedName(String),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::DuplicateName(n) => write!(f, "view {n} already defined"),
            ViewError::Parse(m) => write!(f, "view query parse error: {m}"),
            ViewError::Eval(m) => write!(f, "view evaluation error: {m}"),
            ViewError::ReservedName(n) => write!(f, "view name {n} is reserved"),
        }
    }
}

impl std::error::Error for ViewError {}

impl ViewCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a view. Later views may reference earlier ones by name in
    /// their paths (`db.<earlier-view>...`).
    pub fn define(&mut self, name: &str, query_text: &str) -> Result<(), ViewError> {
        if name == "db" {
            return Err(ViewError::ReservedName(name.to_owned()));
        }
        if self.views.iter().any(|v| v.name == name) {
            return Err(ViewError::DuplicateName(name.to_owned()));
        }
        let query = parse_query(query_text).map_err(|e| ViewError::Parse(e.to_string()))?;
        self.views.push(View {
            name: name.to_owned(),
            query,
            text: query_text.to_owned(),
        });
        Ok(())
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.views.iter().map(|v| v.name.as_str())
    }

    pub fn get(&self, name: &str) -> Option<&View> {
        self.views.iter().find(|v| v.name == name)
    }

    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Materialise all views over `base`, in definition order.
    ///
    /// Returns the *extended database*: a copy of `base` whose root gains
    /// one `view-name` edge per view, each leading to that view's result.
    /// Each view is evaluated against the database extended with all
    /// previously materialised views, so `db.v1.x` inside `v2` works.
    pub fn materialize(&self, base: &Graph) -> Result<Graph, ViewError> {
        let mut working = Graph::with_symbols(base.symbols_handle());
        let root = copy_subgraph(base, base.root(), &mut working);
        working.set_root(root);
        for view in &self.views {
            let (result, _) = evaluate_select(&working, &view.query, &EvalOptions::default())
                .map_err(ViewError::Eval)?;
            let img = copy_subgraph(&result, result.root(), &mut working);
            let label = Label::symbol(working.symbols(), &view.name);
            let wroot = working.root();
            working.add_edge(wroot, label, img);
        }
        working.gc();
        Ok(working)
    }

    /// Materialise and immediately answer one query against the extended
    /// database (the common "query through views" path).
    pub fn query(&self, base: &Graph, query_text: &str) -> Result<Graph, ViewError> {
        let extended = self.materialize(base)?;
        let q = parse_query(query_text).map_err(|e| ViewError::Parse(e.to_string()))?;
        let (result, _) =
            evaluate_select(&extended, &q, &EvalOptions::default()).map_err(ViewError::Eval)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::bisim::graphs_bisimilar;
    use ssd_graph::literal::parse_graph;

    fn base() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca", Year: 1942}},
                Entry: {Movie: {Title: "Play it again, Sam", Year: 1972}},
                Entry: {Movie: {Title: "Annie Hall", Year: 1977}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn define_and_materialize() {
        let mut cat = ViewCatalog::new();
        cat.define(
            "seventies",
            r#"select {Movie: M} from db.Entry.Movie M, M.Year Y where Y >= 1970 and Y < 1980"#,
        )
        .unwrap();
        let ext = cat.materialize(&base()).unwrap();
        let view_node = ext.successors_by_name(ext.root(), "seventies");
        assert_eq!(view_node.len(), 1);
        assert_eq!(ext.successors_by_name(view_node[0], "Movie").len(), 2);
        // Base data still present.
        assert_eq!(ext.successors_by_name(ext.root(), "Entry").len(), 3);
    }

    #[test]
    fn query_through_a_view() {
        let mut cat = ViewCatalog::new();
        cat.define(
            "seventies",
            r#"select {Movie: M} from db.Entry.Movie M, M.Year Y where Y >= 1970"#,
        )
        .unwrap();
        let r = cat
            .query(&base(), "select T from db.seventies.Movie.Title T")
            .unwrap();
        assert_eq!(r.out_degree(r.root()), 2);
    }

    #[test]
    fn view_of_view_composes() {
        let mut cat = ViewCatalog::new();
        cat.define(
            "seventies",
            r#"select {Movie: M} from db.Entry.Movie M, M.Year Y where Y >= 1970"#,
        )
        .unwrap();
        cat.define(
            "allen_era",
            r#"select {Hit: T} from db.seventies.Movie M, M.Title T, M.Year Y where Y > 1975"#,
        )
        .unwrap();
        let ext = cat.materialize(&base()).unwrap();
        let v2 = ext.successors_by_name(ext.root(), "allen_era")[0];
        let hits = ext.successors_by_name(v2, "Hit");
        assert_eq!(hits.len(), 1);
        assert_eq!(
            ext.atomic_value(hits[0]),
            Some(&ssd_graph::Value::Str("Annie Hall".into()))
        );
    }

    #[test]
    fn duplicate_and_reserved_names_rejected() {
        let mut cat = ViewCatalog::new();
        cat.define("v", "select M from db.Entry M").unwrap();
        assert_eq!(
            cat.define("v", "select M from db.Entry M"),
            Err(ViewError::DuplicateName("v".into()))
        );
        assert_eq!(
            cat.define("db", "select M from db.Entry M"),
            Err(ViewError::ReservedName("db".into()))
        );
    }

    #[test]
    fn parse_error_surfaces_at_define_time() {
        let mut cat = ViewCatalog::new();
        assert!(matches!(
            cat.define("bad", "select banana"),
            Err(ViewError::Parse(_))
        ));
        assert!(cat.is_empty());
    }

    #[test]
    fn empty_catalog_materializes_to_base() {
        let cat = ViewCatalog::new();
        let b = base();
        let ext = cat.materialize(&b).unwrap();
        assert!(graphs_bisimilar(&b, &ext));
    }

    #[test]
    fn restructuring_view_bacall_repair() {
        // Views can express simple restructuring ([4]): project the cast
        // under fresh labels.
        let g = parse_graph(r#"{Movie: {Cast: {Actors: "Bogart", Actors: "Bacall"}}}"#).unwrap();
        let mut cat = ViewCatalog::new();
        cat.define(
            "performers",
            r#"select {Performer: A} from db.Movie.Cast.Actors A"#,
        )
        .unwrap();
        let ext = cat.materialize(&g).unwrap();
        let v = ext.successors_by_name(ext.root(), "performers")[0];
        assert_eq!(ext.successors_by_name(v, "Performer").len(), 2);
    }

    #[test]
    fn catalog_introspection() {
        let mut cat = ViewCatalog::new();
        cat.define("a", "select M from db.Entry M").unwrap();
        cat.define("b", "select M from db.a M").unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(cat.get("a").is_some());
        assert!(cat.get("zzz").is_none());
        assert!(cat.get("b").unwrap().text.contains("db.a"));
    }
}
