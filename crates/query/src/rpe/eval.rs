//! RPE evaluation: reachability in the product of data graph × automaton.
//!
//! A BFS over `(node, state)` pairs with a visited set — linear in the size
//! of the product, total on cyclic data (the visited set cuts cycles), and
//! the workhorse behind the select-from-where evaluator, the optimizer's
//! baselines, and the parallel decomposition of \[35\].

use super::ast::Rpe;
use super::nfa::Nfa;
use ssd_graph::{Graph, Label, NodeId};
use ssd_guard::{Exhausted, Guard};
use ssd_trace::{Phase, Tracer};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Fault-injection seam: hit once per product state popped by the BFS.
pub const FP_RPE_STEP: &str = "rpe.step";

/// Approximate bytes a visited-set entry costs (pair + hash overhead).
/// Public so the static cost analysis charges the same unit it measures.
pub const VISIT_COST: u64 = 48;

/// A match of an RPE with a trailing label variable: the binding of the
/// final edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathMatch {
    /// Label of the final (variable-bound) edge.
    pub label: Label,
    /// Target node of that edge.
    pub node: NodeId,
}

/// All nodes reachable from `start` by a path whose label word is accepted
/// by `rpe`. Result is a sorted, deduplicated set.
pub fn eval_rpe(g: &Graph, start: NodeId, rpe: &Rpe) -> Vec<NodeId> {
    let nfa = Nfa::compile(rpe);
    eval_nfa(g, start, &nfa)
}

/// As [`eval_rpe`], under a resource [`Guard`]. In partial mode exhaustion
/// returns the nodes found so far (with the cause recorded on the guard).
pub fn eval_rpe_guarded(
    g: &Graph,
    start: NodeId,
    rpe: &Rpe,
    guard: &Guard,
) -> Result<Vec<NodeId>, Exhausted> {
    let nfa = Nfa::compile(rpe);
    eval_nfa_guarded(g, start, &nfa, guard)
}

/// As [`eval_rpe`], with a precompiled NFA (reuse across many starts).
pub fn eval_nfa(g: &Graph, start: NodeId, nfa: &Nfa) -> Vec<NodeId> {
    // An unlimited guard never reports exhaustion.
    match product_bfs(g, start, nfa, &Guard::unlimited()) {
        Ok((nodes, _)) => nodes,
        Err(_) => Vec::new(),
    }
}

/// Guarded BFS with a precompiled NFA: one fuel tick per product state
/// popped and per edge scanned, memory accounted per visited-set entry.
pub fn eval_nfa_guarded(
    g: &Graph,
    start: NodeId,
    nfa: &Nfa,
    guard: &Guard,
) -> Result<Vec<NodeId>, Exhausted> {
    product_bfs(g, start, nfa, guard).map(|(nodes, _)| nodes)
}

/// Evaluate an RPE whose final step binds a label variable: returns the
/// distinct `(label, node)` pairs of the final edges. The RPE must pass
/// [`Rpe::check_label_vars`]; if it has no trailing label variable this
/// degenerates to [`eval_rpe`] with an empty label.
pub fn eval_rpe_with_labels(g: &Graph, start: NodeId, rpe: &Rpe) -> Vec<PathMatch> {
    eval_rpe_with_labels_guarded(g, start, rpe, &Guard::unlimited()).unwrap_or_default()
}

/// As [`eval_rpe_with_labels`], under a resource [`Guard`].
pub fn eval_rpe_with_labels_guarded(
    g: &Graph,
    start: NodeId,
    rpe: &Rpe,
    guard: &Guard,
) -> Result<Vec<PathMatch>, Exhausted> {
    match rpe.split_trailing_label_var() {
        Some((prefix, step)) => {
            let mids = eval_rpe_guarded(g, start, &prefix, guard)?;
            let symbols = g.symbols();
            let mut out: BTreeSet<(Label, NodeId)> = BTreeSet::new();
            'scan: for mid in mids {
                for e in g.edges(mid) {
                    if !guard.tick(1)? {
                        break 'scan;
                    }
                    if step.matches(&e.label, symbols) {
                        out.insert((e.label.clone(), e.to));
                    }
                }
            }
            Ok(out
                .into_iter()
                .map(|(label, node)| PathMatch { label, node })
                .collect())
        }
        None => Ok(eval_rpe_guarded(g, start, rpe, guard)?
            .into_iter()
            .map(|node| PathMatch {
                label: Label::str(""),
                node,
            })
            .collect()),
    }
}

/// Count of product states visited by an evaluation — the work measure
/// used by the optimizer experiments (E4/E10).
pub fn eval_nfa_with_stats(g: &Graph, start: NodeId, nfa: &Nfa) -> (Vec<NodeId>, usize) {
    product_bfs(g, start, nfa, &Guard::unlimited()).unwrap_or_default()
}

/// As [`eval_rpe_guarded`], with one [`Phase::Rpe`] span recorded per
/// evaluation: nodes matched, product states visited, and the guard's
/// fuel/memory deltas. Exhaustion additionally records a [`Phase::Guard`]
/// instant with the cause before propagating.
pub fn eval_rpe_traced(
    g: &Graph,
    start: NodeId,
    rpe: &Rpe,
    guard: &Guard,
    tracer: Option<&Tracer>,
) -> Result<Vec<NodeId>, Exhausted> {
    let mut sp = ssd_trace::span(tracer, Phase::Rpe, "rpe", Some(guard));
    let nfa = Nfa::compile(rpe);
    match product_bfs(g, start, &nfa, guard) {
        Ok((nodes, visited)) => {
            if sp.enabled() {
                sp.field("nodes", nodes.len());
                sp.field("visited", visited);
            }
            Ok(nodes)
        }
        Err(e) => {
            ssd_trace::instant(
                tracer,
                Phase::Guard,
                "exhausted",
                vec![("cause", e.headline().into())],
            );
            Err(e)
        }
    }
}

/// As [`eval_nfa_with_stats`], under a resource [`Guard`].
pub fn eval_nfa_with_stats_guarded(
    g: &Graph,
    start: NodeId,
    nfa: &Nfa,
    guard: &Guard,
) -> Result<(Vec<NodeId>, usize), Exhausted> {
    product_bfs(g, start, nfa, guard)
}

/// The one BFS over the product of data graph × automaton, shared by every
/// public entry point so the guard semantics cannot drift between them.
fn product_bfs(
    g: &Graph,
    start: NodeId,
    nfa: &Nfa,
    guard: &Guard,
) -> Result<(Vec<NodeId>, usize), Exhausted> {
    let symbols = g.symbols();
    let start_states = nfa.epsilon_closure(&std::iter::once(nfa.start()).collect());
    let mut visited: HashSet<(NodeId, usize)> = HashSet::new();
    let mut result: BTreeSet<NodeId> = BTreeSet::new();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    for &s in &start_states {
        if visited.insert((start, s)) {
            queue.push_back((start, s));
        }
    }
    if start_states.contains(&nfa.accept()) {
        result.insert(start);
    }
    'bfs: while let Some((n, s)) = queue.pop_front() {
        if !(guard.tick(1)? && guard.fail_point(FP_RPE_STEP)?) {
            break 'bfs;
        }
        for e in g.edges(n) {
            if !guard.tick(1)? {
                break 'bfs;
            }
            for (pred, t) in nfa.transitions_from(s) {
                if pred.matches(&e.label, symbols) {
                    for &ct in nfa.closure(*t) {
                        if ct == nfa.accept() {
                            result.insert(e.to);
                        }
                        if visited.insert((e.to, ct)) {
                            if !guard.alloc(VISIT_COST)? {
                                break 'bfs;
                            }
                            queue.push_back((e.to, ct));
                        }
                    }
                }
            }
        }
    }
    Ok((result.into_iter().collect(), visited.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpe::ast::Step;
    use ssd_graph::literal::parse_graph;
    use ssd_graph::Value;

    fn movie_db() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                                Cast: {Actors: "Bogart", Actors: "Bacall"}}},
                Entry: {Movie: {Title: "Play it again, Sam",
                                Cast: {Credit: {Actors: "Allen"}},
                                Director: "Allen"}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn fixed_path() {
        let g = movie_db();
        let e = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::symbol("Title"),
        ]);
        let titles = eval_rpe(&g, g.root(), &e);
        assert_eq!(titles.len(), 2);
        for t in titles {
            assert!(g.atomic_value(t).is_some());
        }
    }

    #[test]
    fn epsilon_matches_start() {
        let g = movie_db();
        assert_eq!(eval_rpe(&g, g.root(), &Rpe::Epsilon), vec![g.root()]);
    }

    #[test]
    fn wildcard_star_reaches_everything() {
        let g = movie_db();
        let all = eval_rpe(&g, g.root(), &Rpe::step(Step::wildcard()).star());
        assert_eq!(all.len(), g.reachable().len());
    }

    #[test]
    fn alternation_covers_both_cast_shapes() {
        // Cast.(Actors | Credit.Actors) — the two representations in
        // Figure 1.
        let g = movie_db();
        let e = Rpe::seq(vec![
            Rpe::step(Step::wildcard()).star(),
            Rpe::symbol("Cast"),
            Rpe::alt(vec![
                Rpe::symbol("Actors"),
                Rpe::seq(vec![Rpe::symbol("Credit"), Rpe::symbol("Actors")]),
            ]),
        ]);
        let actors = eval_rpe(&g, g.root(), &e);
        // Bogart, Bacall, Allen nodes.
        assert_eq!(actors.len(), 3);
    }

    #[test]
    fn negated_step_constrains_path() {
        // From the root: Entry.Movie.(!Movie)*."Allen" must match the cast
        // member, and never cross into another Movie.
        let g = movie_db();
        let e = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::step(Step::not_symbol("Movie")).star(),
            Rpe::step(Step::value("Allen")),
        ]);
        let hits = eval_rpe(&g, g.root(), &e);
        // Allen appears twice below the second movie (actor + director leaf
        // nodes; they may be distinct leaves).
        assert!(!hits.is_empty());
        for h in &hits {
            assert!(g.is_leaf(*h));
        }
    }

    #[test]
    fn evaluation_terminates_on_cycles() {
        let g = parse_graph("@x = {next: {next: @x}, stop: 1}").unwrap();
        let e = Rpe::seq(vec![Rpe::symbol("next").star(), Rpe::symbol("stop")]);
        let hits = eval_rpe(&g, g.root(), &e);
        assert_eq!(hits.len(), 1);
        // Star over a cycle from a cyclic start reaches both cycle nodes.
        let all_next = eval_rpe(&g, g.root(), &Rpe::symbol("next").star());
        assert_eq!(all_next.len(), 2);
    }

    #[test]
    fn precompiled_nfa_reuse() {
        let g = movie_db();
        let nfa = Nfa::compile(&Rpe::symbol("Movie"));
        let entries = eval_rpe(&g, g.root(), &Rpe::symbol("Entry"));
        let mut count = 0;
        for e in entries {
            count += eval_nfa(&g, e, &nfa).len();
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn label_variable_binds_final_edges() {
        let g = movie_db();
        // Entry.Movie.^L — bind the attribute names of movies.
        let e = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::step(Step::label_var("L")),
        ]);
        let matches = eval_rpe_with_labels(&g, g.root(), &e);
        let names: BTreeSet<String> = matches
            .iter()
            .filter_map(|m| m.label.text(g.symbols()))
            .collect();
        assert!(names.contains("Title"));
        assert!(names.contains("Cast"));
        assert!(names.contains("Director"));
    }

    #[test]
    fn label_variable_with_predicate() {
        let g = movie_db();
        // Values directly under titles: Entry.Movie.Title.^V where V is a
        // string.
        let e = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::symbol("Title"),
            Rpe::Step(Step {
                pred: ssd_schema::Pred::Kind(ssd_graph::LabelKind::Str),
                label_var: Some("V".into()),
            }),
        ]);
        let matches = eval_rpe_with_labels(&g, g.root(), &e);
        let titles: BTreeSet<&str> = matches
            .iter()
            .filter_map(|m| m.label.as_value().and_then(Value::as_str))
            .collect();
        assert_eq!(
            titles,
            ["Casablanca", "Play it again, Sam"].into_iter().collect()
        );
    }

    #[test]
    fn stats_report_product_work() {
        let g = movie_db();
        let narrow = Nfa::compile(&Rpe::symbol("Entry"));
        let broad = Nfa::compile(&Rpe::step(Step::wildcard()).star());
        let (_, w1) = eval_nfa_with_stats(&g, g.root(), &narrow);
        let (_, w2) = eval_nfa_with_stats(&g, g.root(), &broad);
        assert!(w2 > w1, "wildcard-star should visit more product states");
    }

    #[test]
    fn start_node_acceptance_with_nullable_rpe() {
        let g = movie_db();
        let e = Rpe::symbol("Entry").opt();
        let hits = eval_rpe(&g, g.root(), &e);
        assert!(hits.contains(&g.root()));
        assert_eq!(hits.len(), 3); // root + 2 entries
    }
}
