//! RPE syntax trees.
//!
//! A step matches one edge by a predicate on its label; an RPE is a regular
//! expression over steps. Step predicates reuse [`ssd_schema::Pred`] so the
//! same machinery drives schema-based pruning (\[20\], §5).

use ssd_graph::{Label, SymbolTable, Value};
use ssd_schema::Pred;
use std::fmt;

/// One step of a path: a predicate an edge label must satisfy.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub pred: Pred,
    /// If set, matching this step binds the edge label to the named label
    /// variable. Only legal as the final step of a binding path (checked by
    /// the parser/validator).
    pub label_var: Option<String>,
}

impl Step {
    pub fn symbol(name: &str) -> Step {
        Step {
            pred: Pred::Symbol(name.to_owned()),
            label_var: None,
        }
    }

    pub fn value(v: impl Into<Value>) -> Step {
        Step {
            pred: Pred::ValueEq(v.into()),
            label_var: None,
        }
    }

    pub fn wildcard() -> Step {
        Step {
            pred: Pred::Any,
            label_var: None,
        }
    }

    pub fn not_symbol(name: &str) -> Step {
        Step {
            pred: Pred::Not(Box::new(Pred::Symbol(name.to_owned()))),
            label_var: None,
        }
    }

    pub fn pred(pred: Pred) -> Step {
        Step {
            pred,
            label_var: None,
        }
    }

    pub fn label_var(name: &str) -> Step {
        Step {
            pred: Pred::Any,
            label_var: Some(name.to_owned()),
        }
    }

    pub fn matches(&self, label: &Label, symbols: &SymbolTable) -> bool {
        self.pred.matches(label, symbols)
    }
}

/// A regular path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Rpe {
    /// The empty path (matches without consuming an edge).
    Epsilon,
    /// A single edge.
    Step(Step),
    /// Concatenation.
    Seq(Box<Rpe>, Box<Rpe>),
    /// Alternation.
    Alt(Box<Rpe>, Box<Rpe>),
    /// Kleene star.
    Star(Box<Rpe>),
    /// One-or-more.
    Plus(Box<Rpe>),
    /// Zero-or-one.
    Opt(Box<Rpe>),
}

impl Rpe {
    pub fn step(s: Step) -> Rpe {
        Rpe::Step(s)
    }

    pub fn symbol(name: &str) -> Rpe {
        Rpe::Step(Step::symbol(name))
    }

    /// `a.b` — sequence of path components.
    pub fn seq(parts: Vec<Rpe>) -> Rpe {
        parts
            .into_iter()
            .reduce(|a, b| Rpe::Seq(Box::new(a), Box::new(b)))
            .unwrap_or(Rpe::Epsilon)
    }

    /// `a | b | ...`
    pub fn alt(parts: Vec<Rpe>) -> Rpe {
        parts
            .into_iter()
            .reduce(|a, b| Rpe::Alt(Box::new(a), Box::new(b)))
            .unwrap_or(Rpe::Epsilon)
    }

    pub fn star(self) -> Rpe {
        Rpe::Star(Box::new(self))
    }

    pub fn plus(self) -> Rpe {
        Rpe::Plus(Box::new(self))
    }

    pub fn opt(self) -> Rpe {
        Rpe::Opt(Box::new(self))
    }

    /// Can this RPE match the empty path?
    pub fn nullable(&self) -> bool {
        match self {
            Rpe::Epsilon => true,
            Rpe::Step(_) => false,
            Rpe::Seq(a, b) => a.nullable() && b.nullable(),
            Rpe::Alt(a, b) => a.nullable() || b.nullable(),
            Rpe::Star(_) | Rpe::Opt(_) => true,
            Rpe::Plus(a) => a.nullable(),
        }
    }

    /// All label variables bound by this RPE, with a flag for whether each
    /// occurs in final position only (the supported placement).
    pub fn label_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_label_vars(&mut out);
        out
    }

    fn collect_label_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Rpe::Epsilon => {}
            Rpe::Step(s) => {
                if let Some(v) = &s.label_var {
                    out.push(v);
                }
            }
            Rpe::Seq(a, b) | Rpe::Alt(a, b) => {
                a.collect_label_vars(out);
                b.collect_label_vars(out);
            }
            Rpe::Star(a) | Rpe::Plus(a) | Rpe::Opt(a) => a.collect_label_vars(out),
        }
    }

    /// Validate the label-variable placement rule: a label variable may
    /// only occur as the final step of the expression, outside any
    /// repetition or alternation.
    pub fn check_label_vars(&self) -> Result<(), String> {
        match self {
            Rpe::Epsilon => Ok(()),
            Rpe::Step(_) => Ok(()),
            Rpe::Seq(a, b) => {
                if a.label_vars().is_empty() {
                    b.check_label_vars()
                } else {
                    Err("label variable must be the final step of a path".to_owned())
                }
            }
            Rpe::Alt(a, b) => {
                if a.label_vars().is_empty() && b.label_vars().is_empty() {
                    Ok(())
                } else {
                    Err("label variable not allowed inside alternation".to_owned())
                }
            }
            Rpe::Star(a) | Rpe::Plus(a) | Rpe::Opt(a) => {
                if a.label_vars().is_empty() {
                    Ok(())
                } else {
                    Err("label variable not allowed inside repetition".to_owned())
                }
            }
        }
    }

    /// Split off a trailing label-variable step, returning the prefix RPE
    /// and the step. `None` if the RPE does not end with one.
    pub fn split_trailing_label_var(&self) -> Option<(Rpe, Step)> {
        match self {
            Rpe::Step(s) if s.label_var.is_some() => Some((Rpe::Epsilon, s.clone())),
            Rpe::Seq(a, b) => {
                let (prefix, step) = b.split_trailing_label_var()?;
                Some((
                    match prefix {
                        Rpe::Epsilon => (**a).clone(),
                        p => Rpe::Seq(a.clone(), Box::new(p)),
                    },
                    step,
                ))
            }
            _ => None,
        }
    }

    /// Algebraic simplification (used by the optimizer):
    /// `(e*)* → e*`, `ε.e → e`, `e.ε → e`, `e|e → e`, `(e?)? → e?`,
    /// `(e+)+ → e+`, `(e*)? → e*`, `(e?)* → e*`.
    pub fn simplify(&self) -> Rpe {
        match self {
            Rpe::Epsilon | Rpe::Step(_) => self.clone(),
            Rpe::Seq(a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                match (a, b) {
                    (Rpe::Epsilon, b) => b,
                    (a, Rpe::Epsilon) => a,
                    (a, b) => Rpe::Seq(Box::new(a), Box::new(b)),
                }
            }
            Rpe::Alt(a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                if a == b {
                    a
                } else {
                    Rpe::Alt(Box::new(a), Box::new(b))
                }
            }
            Rpe::Star(a) => match a.simplify() {
                Rpe::Star(inner) => Rpe::Star(inner),
                Rpe::Plus(inner) | Rpe::Opt(inner) => Rpe::Star(inner),
                Rpe::Epsilon => Rpe::Epsilon,
                s => Rpe::Star(Box::new(s)),
            },
            Rpe::Plus(a) => match a.simplify() {
                Rpe::Plus(inner) => Rpe::Plus(inner),
                Rpe::Star(inner) => Rpe::Star(inner),
                Rpe::Epsilon => Rpe::Epsilon,
                s => Rpe::Plus(Box::new(s)),
            },
            Rpe::Opt(a) => match a.simplify() {
                Rpe::Opt(inner) => Rpe::Opt(inner),
                Rpe::Star(inner) => Rpe::Star(inner),
                Rpe::Epsilon => Rpe::Epsilon,
                s => Rpe::Opt(Box::new(s)),
            },
        }
    }
}

impl fmt::Display for Rpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rpe::Epsilon => write!(f, "()"),
            Rpe::Step(s) => {
                if let Some(v) = &s.label_var {
                    write!(f, "^{v}")
                } else {
                    write!(f, "{}", s.pred)
                }
            }
            Rpe::Seq(a, b) => write!(f, "{a}.{b}"),
            Rpe::Alt(a, b) => write!(f, "({a}|{b})"),
            Rpe::Star(a) => write!(f, "({a})*"),
            Rpe::Plus(a) => write!(f, "({a})+"),
            Rpe::Opt(a) => write!(f, "({a})?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_nullability() {
        assert!(Rpe::Epsilon.nullable());
        assert!(!Rpe::symbol("a").nullable());
        assert!(Rpe::symbol("a").star().nullable());
        assert!(!Rpe::symbol("a").plus().nullable());
        assert!(Rpe::symbol("a").opt().nullable());
        assert!(!Rpe::seq(vec![Rpe::symbol("a"), Rpe::symbol("b")]).nullable());
        assert!(Rpe::alt(vec![Rpe::symbol("a"), Rpe::Epsilon]).nullable());
        assert_eq!(Rpe::seq(vec![]), Rpe::Epsilon);
    }

    #[test]
    fn simplify_collapses_redundancy() {
        let a = Rpe::symbol("a");
        assert_eq!(a.clone().star().star().simplify(), a.clone().star());
        assert_eq!(a.clone().plus().star().simplify(), a.clone().star());
        assert_eq!(a.clone().opt().star().simplify(), a.clone().star());
        assert_eq!(a.clone().plus().plus().simplify(), a.clone().plus());
        assert_eq!(
            Rpe::seq(vec![Rpe::Epsilon, a.clone()]).simplify(),
            a.clone()
        );
        assert_eq!(Rpe::alt(vec![a.clone(), a.clone()]).simplify(), a.clone());
        assert_eq!(Rpe::Epsilon.star().simplify(), Rpe::Epsilon);
    }

    #[test]
    fn simplify_preserves_structure_otherwise() {
        let e = Rpe::seq(vec![
            Rpe::symbol("a"),
            Rpe::alt(vec![Rpe::symbol("b"), Rpe::symbol("c")]).star(),
        ]);
        assert_eq!(e.simplify(), e);
    }

    #[test]
    fn label_var_placement_rules() {
        let ok = Rpe::seq(vec![Rpe::symbol("a"), Rpe::step(Step::label_var("L"))]);
        assert!(ok.check_label_vars().is_ok());
        let bad_mid = Rpe::seq(vec![Rpe::step(Step::label_var("L")), Rpe::symbol("a")]);
        assert!(bad_mid.check_label_vars().is_err());
        let bad_star = Rpe::step(Step::label_var("L")).star();
        assert!(bad_star.check_label_vars().is_err());
        let bad_alt = Rpe::alt(vec![Rpe::step(Step::label_var("L")), Rpe::symbol("a")]);
        assert!(bad_alt.check_label_vars().is_err());
    }

    #[test]
    fn split_trailing_label_var() {
        let e = Rpe::seq(vec![
            Rpe::symbol("a"),
            Rpe::symbol("b"),
            Rpe::step(Step::label_var("L")),
        ]);
        let (prefix, step) = e.split_trailing_label_var().unwrap();
        assert_eq!(prefix, Rpe::seq(vec![Rpe::symbol("a"), Rpe::symbol("b")]));
        assert_eq!(step.label_var.as_deref(), Some("L"));
        assert!(Rpe::symbol("a").split_trailing_label_var().is_none());
    }

    #[test]
    fn split_single_label_var() {
        let e = Rpe::step(Step::label_var("L"));
        let (prefix, step) = e.split_trailing_label_var().unwrap();
        assert_eq!(prefix, Rpe::Epsilon);
        assert_eq!(step.label_var.as_deref(), Some("L"));
    }

    #[test]
    fn display_round_readable() {
        let e = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::step(Step::not_symbol("Movie")).star(),
        ]);
        let shown = e.to_string();
        assert!(shown.contains("Entry"));
        assert!(shown.contains("!(Movie)"));
    }
}
