//! Regular path expressions (RPEs).
//!
//! §3: "one wants to specify paths of arbitrary length ... Even this is not
//! enough. Consider the problem of finding whether "Allen" acted in
//! "Casablanca". One might try this by searching for paths from a Movie
//! edge down to an "Allen" edge, but one would not want this path to
//! contain another Movie edge. These problems indicate that one would like
//! to have something like regular expressions to constrain paths."
//!
//! * [`ast`] — the RPE syntax tree over label predicates (including the
//!   negated step `!Movie` that the Allen/Casablanca example needs).
//! * [`nfa`] — Thompson construction and subset-construction DFA.
//! * [`eval`] — evaluation as reachability in the product of data graph ×
//!   automaton (linear in the product size).

pub mod ast;
pub mod eval;
pub mod nfa;

pub use ast::{Rpe, Step};
pub use eval::{eval_rpe, eval_rpe_traced, eval_rpe_with_labels, PathMatch};
pub use nfa::{Dfa, Nfa};
