//! Automata for regular path expressions.
//!
//! Thompson construction ([`Nfa::compile`]) produces an ε-NFA whose
//! transitions carry label predicates; [`Nfa::to_dfa`] runs the subset
//! construction over the *predicate alphabet actually used* (sound because
//! evaluation only ever asks "which transitions does this concrete label
//! enable", and we partition by the exact predicate set). The DFA is used
//! by the optimizer's guide-pruning and by the E4 NFA-vs-DFA comparison.

use super::ast::{Rpe, Step};
use ssd_graph::{Label, SymbolTable};
use ssd_schema::Pred;
use std::collections::{BTreeSet, HashMap};

/// NFA state index.
pub type StateId = usize;

/// A predicate-labeled ε-NFA with one start and one accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[s]` = list of (predicate, target).
    transitions: Vec<Vec<(Pred, StateId)>>,
    /// `epsilon[s]` = ε-successors.
    epsilon: Vec<Vec<StateId>>,
    /// Precomputed ε-closure of each single state.
    closures: Vec<BTreeSet<StateId>>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Thompson construction.
    pub fn compile(rpe: &Rpe) -> Nfa {
        let mut nfa = Nfa {
            transitions: Vec::new(),
            epsilon: Vec::new(),
            closures: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.build(rpe);
        nfa.start = s;
        nfa.accept = a;
        nfa.closures = (0..nfa.state_count())
            .map(|i| nfa.epsilon_closure(&std::iter::once(i).collect()))
            .collect();
        nfa
    }

    /// Precomputed ε-closure of a single state.
    pub fn closure(&self, s: StateId) -> &BTreeSet<StateId> {
        &self.closures[s]
    }

    fn new_state(&mut self) -> StateId {
        self.transitions.push(Vec::new());
        self.epsilon.push(Vec::new());
        self.transitions.len() - 1
    }

    fn build(&mut self, rpe: &Rpe) -> (StateId, StateId) {
        match rpe {
            Rpe::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.epsilon[s].push(a);
                (s, a)
            }
            Rpe::Step(Step { pred, .. }) => {
                let s = self.new_state();
                let a = self.new_state();
                self.transitions[s].push((pred.clone(), a));
                (s, a)
            }
            Rpe::Seq(x, y) => {
                let (sx, ax) = self.build(x);
                let (sy, ay) = self.build(y);
                self.epsilon[ax].push(sy);
                (sx, ay)
            }
            Rpe::Alt(x, y) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sx, ax) = self.build(x);
                let (sy, ay) = self.build(y);
                self.epsilon[s].push(sx);
                self.epsilon[s].push(sy);
                self.epsilon[ax].push(a);
                self.epsilon[ay].push(a);
                (s, a)
            }
            Rpe::Star(x) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sx, ax) = self.build(x);
                self.epsilon[s].push(sx);
                self.epsilon[s].push(a);
                self.epsilon[ax].push(sx);
                self.epsilon[ax].push(a);
                (s, a)
            }
            Rpe::Plus(x) => {
                let (sx, ax) = self.build(x);
                let a = self.new_state();
                self.epsilon[ax].push(sx);
                self.epsilon[ax].push(a);
                (sx, a)
            }
            Rpe::Opt(x) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sx, ax) = self.build(x);
                self.epsilon[s].push(sx);
                self.epsilon[s].push(a);
                self.epsilon[ax].push(a);
                (s, a)
            }
        }
    }

    pub fn start(&self) -> StateId {
        self.start
    }

    pub fn accept(&self) -> StateId {
        self.accept
    }

    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Predicate transitions out of `s`.
    pub fn transitions_from(&self, s: StateId) -> &[(Pred, StateId)] {
        &self.transitions[s]
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut out = states.clone();
        let mut stack: Vec<StateId> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.epsilon[s] {
                if out.insert(t) {
                    stack.push(t);
                }
            }
        }
        out
    }

    /// The state set reached from `states` (assumed ε-closed) on a concrete
    /// label, ε-closed.
    pub fn step_on(
        &self,
        states: &BTreeSet<StateId>,
        label: &Label,
        symbols: &SymbolTable,
    ) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &s in states {
            for (pred, t) in &self.transitions[s] {
                if pred.matches(label, symbols) {
                    next.insert(*t);
                }
            }
        }
        self.epsilon_closure(&next)
    }

    /// Does the automaton accept this concrete label word?
    pub fn accepts(&self, word: &[Label], symbols: &SymbolTable) -> bool {
        let mut states = self.epsilon_closure(&std::iter::once(self.start).collect());
        for label in word {
            states = self.step_on(&states, label, symbols);
            if states.is_empty() {
                return false;
            }
        }
        states.contains(&self.accept)
    }

    /// Subset construction over the set of predicates used by the NFA.
    ///
    /// DFA "alphabet symbols" are *minterm sets*: each concrete label
    /// enables some subset of the NFA's predicates, and two labels enabling
    /// the same subset are indistinguishable. The DFA transitions on those
    /// subsets.
    pub fn to_dfa(&self) -> Dfa {
        // Collect distinct predicates in a stable order.
        let mut preds: Vec<Pred> = Vec::new();
        for ts in &self.transitions {
            for (p, _) in ts {
                if !preds.contains(p) {
                    preds.push(p.clone());
                }
            }
        }
        let start_set = self.epsilon_closure(&std::iter::once(self.start).collect());
        let mut states: HashMap<BTreeSet<StateId>, usize> = HashMap::new();
        let mut order: Vec<BTreeSet<StateId>> = Vec::new();
        states.insert(start_set.clone(), 0);
        order.push(start_set);
        // transitions[state] = map from predicate-mask to target state.
        let mut transitions: Vec<HashMap<u64, usize>> = vec![HashMap::new()];
        // relevant[state] = bitmask of predicates outgoing from the state's
        // NFA set; evaluation-time masks are restricted to it before lookup.
        let mut relevant: Vec<u64> = vec![0];
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let cur = order[i].clone();
            if cur.contains(&self.accept) {
                accepting.push(i);
            }
            // Enumerate all satisfiable masks reachable from cur: for each
            // subset of predicates that could be simultaneously true we
            // would need minterm reasoning; instead enumerate masks lazily
            // per transition-set: the set of (pred → target) pairs out of
            // cur, grouped by which mask of preds a label must satisfy, is
            // approximated by iterating over each single predicate and over
            // each pair ... For correctness we instead defer: the DFA here
            // transitions on masks *computed from concrete labels at
            // evaluation time* (see [`Dfa::step_on`]); during construction
            // we enumerate every mask that enables at least one transition
            // out of `cur`, i.e. the union-closure of the per-predicate
            // masks restricted to cur's outgoing predicates.
            let out_preds: Vec<usize> = preds
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    cur.iter()
                        .any(|&s| self.transitions[s].iter().any(|(q, _)| &q == p))
                })
                .map(|(i, _)| i)
                .collect();
            relevant[i] = out_preds.iter().fold(0u64, |m, &pi| m | (1 << pi));
            // Enumerate all subsets of out_preds (bounded: RPEs are small).
            let k = out_preds.len().min(16);
            for bits in 1u64..(1 << k) {
                let mut mask = 0u64;
                for (j, &pi) in out_preds.iter().take(k).enumerate() {
                    if bits & (1 << j) != 0 {
                        mask |= 1 << pi;
                    }
                }
                // Targets: all NFA transitions whose predicate is in mask.
                let mut next = BTreeSet::new();
                for &s in &cur {
                    for (p, t) in &self.transitions[s] {
                        // `preds` was collected from these same transitions,
                        // so the position always exists; skip rather than
                        // panic if that ever changes.
                        let Some(pi) = preds.iter().position(|q| q == p) else {
                            continue;
                        };
                        if mask & (1 << pi) != 0 {
                            next.insert(*t);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let closed = self.epsilon_closure(&next);
                let id = match states.get(&closed) {
                    Some(&id) => id,
                    None => {
                        let id = order.len();
                        states.insert(closed.clone(), id);
                        order.push(closed);
                        transitions.push(HashMap::new());
                        relevant.push(0);
                        id
                    }
                };
                transitions[i].insert(mask, id);
            }
            i += 1;
        }
        Dfa {
            preds,
            transitions,
            relevant,
            accepting: accepting.into_iter().collect(),
        }
    }
}

/// A DFA over predicate-mask "symbols".
#[derive(Debug, Clone)]
pub struct Dfa {
    preds: Vec<Pred>,
    /// `transitions[state][mask]` = target state, where `mask` has bit `i`
    /// set iff predicate `i` holds of the label (restricted to the state's
    /// relevant predicates).
    transitions: Vec<HashMap<u64, usize>>,
    /// Per-state bitmask of predicates that label transitions out of it.
    relevant: Vec<u64>,
    accepting: BTreeSet<usize>,
}

impl Dfa {
    pub fn start(&self) -> usize {
        0
    }

    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.contains(&state)
    }

    /// The predicate mask a concrete label enables.
    pub fn mask_of(&self, label: &Label, symbols: &SymbolTable) -> u64 {
        let mut mask = 0u64;
        for (i, p) in self.preds.iter().enumerate() {
            if p.matches(label, symbols) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Deterministic step on a concrete label; `None` = dead.
    pub fn step_on(&self, state: usize, label: &Label, symbols: &SymbolTable) -> Option<usize> {
        let mask = self.mask_of(label, symbols) & self.relevant[state];
        if mask == 0 {
            return None;
        }
        self.transitions[state].get(&mask).copied()
    }

    /// Acceptance of a concrete label word.
    pub fn accepts(&self, word: &[Label], symbols: &SymbolTable) -> bool {
        let mut state = 0usize;
        for label in word {
            match self.step_on(state, label, symbols) {
                Some(s) => state = s,
                None => return false,
            }
        }
        self.is_accepting(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::new_symbols;

    fn lab(syms: &SymbolTable, s: &str) -> Label {
        Label::symbol(syms, s)
    }

    #[test]
    fn single_step() {
        let syms = new_symbols();
        let nfa = Nfa::compile(&Rpe::symbol("a"));
        assert!(nfa.accepts(&[lab(&syms, "a")], &syms));
        assert!(!nfa.accepts(&[lab(&syms, "b")], &syms));
        assert!(!nfa.accepts(&[], &syms));
        assert!(!nfa.accepts(&[lab(&syms, "a"), lab(&syms, "a")], &syms));
    }

    #[test]
    fn sequence_and_alternation() {
        let syms = new_symbols();
        let e = Rpe::seq(vec![
            Rpe::symbol("a"),
            Rpe::alt(vec![Rpe::symbol("b"), Rpe::symbol("c")]),
        ]);
        let nfa = Nfa::compile(&e);
        assert!(nfa.accepts(&[lab(&syms, "a"), lab(&syms, "b")], &syms));
        assert!(nfa.accepts(&[lab(&syms, "a"), lab(&syms, "c")], &syms));
        assert!(!nfa.accepts(&[lab(&syms, "a")], &syms));
        assert!(!nfa.accepts(&[lab(&syms, "b"), lab(&syms, "a")], &syms));
    }

    #[test]
    fn star_plus_opt() {
        let syms = new_symbols();
        let a = lab(&syms, "a");
        let star = Nfa::compile(&Rpe::symbol("a").star());
        assert!(star.accepts(&[], &syms));
        assert!(star.accepts(&vec![a.clone(); 5], &syms));
        let plus = Nfa::compile(&Rpe::symbol("a").plus());
        assert!(!plus.accepts(&[], &syms));
        assert!(plus.accepts(&vec![a.clone(); 3], &syms));
        let opt = Nfa::compile(&Rpe::symbol("a").opt());
        assert!(opt.accepts(&[], &syms));
        assert!(opt.accepts(std::slice::from_ref(&a), &syms));
        assert!(!opt.accepts(&[a.clone(), a.clone()], &syms));
    }

    #[test]
    fn negated_step_allen_casablanca_pattern() {
        // Movie.(!Movie)*."Allen" — find Allen below a Movie edge without
        // crossing another Movie edge.
        let syms = new_symbols();
        let e = Rpe::seq(vec![
            Rpe::symbol("Movie"),
            Rpe::step(Step::not_symbol("Movie")).star(),
            Rpe::step(Step::value("Allen")),
        ]);
        let nfa = Nfa::compile(&e);
        let movie = lab(&syms, "Movie");
        let cast = lab(&syms, "Cast");
        let allen = Label::str("Allen");
        assert!(nfa.accepts(&[movie.clone(), cast.clone(), allen.clone()], &syms));
        // A second Movie edge on the way breaks the match.
        assert!(!nfa.accepts(
            &[movie.clone(), movie.clone(), cast.clone(), allen.clone()],
            &syms
        ));
    }

    #[test]
    fn wildcard_star_matches_everything() {
        let syms = new_symbols();
        let nfa = Nfa::compile(&Rpe::step(Step::wildcard()).star());
        assert!(nfa.accepts(&[], &syms));
        assert!(nfa.accepts(&[lab(&syms, "x"), Label::int(3), Label::str("y")], &syms));
    }

    #[test]
    fn dfa_agrees_with_nfa_on_samples() {
        let syms = new_symbols();
        let exprs = vec![
            Rpe::symbol("a"),
            Rpe::symbol("a").star(),
            Rpe::seq(vec![
                Rpe::symbol("a"),
                Rpe::alt(vec![Rpe::symbol("b"), Rpe::symbol("c")]).plus(),
            ]),
            Rpe::seq(vec![
                Rpe::symbol("Movie"),
                Rpe::step(Step::not_symbol("Movie")).star(),
            ]),
            Rpe::alt(vec![
                Rpe::Epsilon,
                Rpe::seq(vec![Rpe::symbol("a"), Rpe::symbol("a")]),
            ]),
        ];
        let alphabet = [
            lab(&syms, "a"),
            lab(&syms, "b"),
            lab(&syms, "c"),
            lab(&syms, "Movie"),
            Label::int(1),
        ];
        for e in &exprs {
            let nfa = Nfa::compile(e);
            let dfa = nfa.to_dfa();
            // All words up to length 3 over the alphabet.
            let mut words: Vec<Vec<Label>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for l in &alphabet {
                        let mut w2 = w.clone();
                        w2.push(l.clone());
                        next.push(w2);
                    }
                }
                words.extend(next.clone());
                words = {
                    let mut seen = std::collections::BTreeSet::new();
                    words
                        .into_iter()
                        .filter(|w| seen.insert(format!("{w:?}")))
                        .collect()
                };
            }
            for w in &words {
                assert_eq!(
                    nfa.accepts(w, &syms),
                    dfa.accepts(w, &syms),
                    "disagree on {e} for word {w:?}"
                );
            }
        }
    }

    #[test]
    fn dfa_is_deterministic_per_mask() {
        let nfa = Nfa::compile(&Rpe::alt(vec![
            Rpe::symbol("a").star(),
            Rpe::symbol("b").plus(),
        ]));
        let dfa = nfa.to_dfa();
        assert!(dfa.state_count() >= 1);
        // step_on returns at most one state by construction (HashMap).
        let syms = new_symbols();
        let a = lab(&syms, "a");
        let s1 = dfa.step_on(dfa.start(), &a, &syms);
        let s2 = dfa.step_on(dfa.start(), &a, &syms);
        assert_eq!(s1, s2);
    }

    #[test]
    fn epsilon_rpe_accepts_only_empty() {
        let syms = new_symbols();
        let nfa = Nfa::compile(&Rpe::Epsilon);
        assert!(nfa.accepts(&[], &syms));
        assert!(!nfa.accepts(&[lab(&syms, "a")], &syms));
        let dfa = nfa.to_dfa();
        assert!(dfa.accepts(&[], &syms));
        assert!(!dfa.accepts(&[lab(&syms, "a")], &syms));
    }
}
