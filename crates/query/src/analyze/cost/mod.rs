//! `ssd-cost` — static cost-and-cardinality analysis.
//!
//! §4 frames optimization of path queries as reasoning against schemas
//! and DataGuides; Goldman–Widom add *statistics* so the optimizer can
//! estimate how much a path touches. This pass is the estimating layer:
//! an abstract interpreter that maps select-from-where queries ([`select`]),
//! regular path expressions ([`rpe`]), and graph-datalog programs
//! ([`datalog`]) to a [`CostEnvelope`] — lower/upper interval bounds on
//! result cardinality, guard fuel, and guard-accounted memory, in exactly
//! the units [`ssd_guard::Guard`] charges at run time.
//!
//! Three consumers sit on top:
//!
//! * admission control — [`ssd_guard::Budget::admit`] rejects a query
//!   whose *lower* bound already exceeds the budget (SSD030) before the
//!   engine consumes any fuel;
//! * the cost-based optimizer —
//!   [`optimize_with_stats`](crate::optimizer::optimize_with_stats)
//!   reorders bindings (and datalog body atoms) by estimated cardinality;
//! * diagnostics — SSD031 (unbounded cost), SSD032 (cross-product join),
//!   SSD033 (imprecise estimate), rendered by `ssd check --estimate`.
//!
//! The bounds are *sound*, not tight: the estimator models the baseline
//! (non-optimized, guide-free) evaluation strategy, and a proptest
//! harness (`tests/cost_soundness.rs`) checks measured guard fuel/memory
//! against the envelope on random datasets and programs. These
//! diagnostics are deliberately *not* part of
//! [`analyze_query`](crate::analyze::analyze_query): estimation is
//! opt-in, so existing warning-exact consumers are unaffected.

pub mod datalog;
pub mod rpe;
pub mod select;

pub use datalog::analyze_datalog_cost;
pub use rpe::{rpe_cost, RpeCost};
pub use select::analyze_query_cost;

use ssd_diag::Diagnostic;
use ssd_guard::{Bound, CostEnvelope, Interval};
use ssd_schema::{DataStats, Schema};

/// What the estimator knows about the database. Every field is optional:
/// missing information widens bounds (recorded as SSD033 notes) instead
/// of failing.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostContext<'a> {
    /// Collected statistics of the target graph
    /// ([`DataStats::collect`] / [`DataStats::collect_with_schema`]).
    pub stats: Option<&'a DataStats>,
    /// A schema the data conforms to. Per-schema-node extents are used
    /// only when `stats` was collected *with* this schema and reports
    /// conformance.
    pub schema: Option<&'a Schema>,
}

impl<'a> CostContext<'a> {
    /// Context carrying statistics only.
    pub fn with_stats(stats: &'a DataStats) -> CostContext<'a> {
        CostContext {
            stats: Some(stats),
            schema: None,
        }
    }

    /// Do the statistics carry usable per-schema-node extents for
    /// `schema` (collected with it, and the data conforms)?
    pub(crate) fn schema_extents_usable(&self) -> bool {
        match (self.stats, self.schema) {
            (Some(st), Some(sc)) => st.conforms && st.per_schema_node.len() == sc.node_count(),
            _ => false,
        }
    }
}

/// One cost analysis: the envelope plus cost-band diagnostics
/// (SSD031–SSD033; SSD030 is admission's, see
/// [`ssd_guard::Budget::admit`]).
#[derive(Debug, Clone, Default)]
pub struct CostAnalysis {
    /// Interval bounds on cardinality, fuel, and memory.
    pub envelope: CostEnvelope,
    /// SSD03x findings (unbounded cost, cross products, widenings).
    pub diagnostics: Vec<Diagnostic>,
    /// For queries: the per-binding match-cardinality intervals, parallel
    /// to `SelectQuery::bindings` (empty for datalog programs). The
    /// optimizer orders bindings by these.
    pub per_binding: Vec<Interval>,
}

/// `base^exp` over [`Bound`]s, saturating; `Unbounded` absorbs (and
/// `b^0 = 1`).
pub(crate) fn bound_pow(base: Bound, exp: usize) -> Bound {
    let mut out = Bound::Finite(1);
    for _ in 0..exp {
        out = out.mul(base);
    }
    out
}

/// Record a widening reason once (SSD033 payload).
pub(crate) fn widen(reasons: &mut Vec<String>, reason: &str) {
    if !reasons.iter().any(|r| r == reason) {
        reasons.push(reason.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_pow_saturates_and_absorbs() {
        assert_eq!(bound_pow(Bound::Finite(3), 2), Bound::Finite(9));
        assert_eq!(bound_pow(Bound::Finite(10), 0), Bound::Finite(1));
        assert_eq!(bound_pow(Bound::Unbounded, 0), Bound::Finite(1));
        assert_eq!(bound_pow(Bound::Unbounded, 1), Bound::Unbounded);
        assert_eq!(
            bound_pow(Bound::Finite(u64::MAX), 3),
            Bound::Finite(u64::MAX)
        );
    }

    #[test]
    fn widen_deduplicates() {
        let mut r = Vec::new();
        widen(&mut r, "a");
        widen(&mut r, "b");
        widen(&mut r, "a");
        assert_eq!(r, vec!["a".to_owned(), "b".to_owned()]);
    }
}
