//! Cost of one regular-path-expression evaluation.
//!
//! The evaluator ([`crate::rpe::eval`]) is a BFS over the product of data
//! graph × automaton: one fuel tick per popped product state, one per
//! scanned edge, [`VISIT_COST`] bytes per visited-set entry. With data
//! statistics those unit costs turn into closed-form interval bounds; the
//! NFA × *schema* product refines the match-cardinality upper bound
//! (Goldman–Widom-style statistics on the summary) and detects the
//! ISSUE's explicit `Unbounded` marker — a Kleene loop closing over a
//! cyclic schema region on an accepting path, which makes the set of
//! matchable label words infinite.

use super::{widen, CostContext};
use crate::analyze::typing::reach;
use crate::rpe::eval::VISIT_COST;
use crate::rpe::nfa::StateId;
use crate::rpe::{Nfa, Rpe};
use ssd_guard::{Bound, Interval};
use ssd_schema::{Schema, SchemaNodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Static cost of evaluating one RPE from one start node.
#[derive(Debug, Clone, Default)]
pub struct RpeCost {
    /// Distinct matches one evaluation returns: nodes, or `(label, node)`
    /// pairs for a trailing label variable. Finite whenever statistics
    /// are available — the BFS deduplicates, so even an infinite word
    /// language lands on finitely many nodes.
    pub matches: Interval,
    /// Upper bound on *distinct label words* the path can match against
    /// the schema (against the bare automaton when no schema is given).
    /// [`Bound::Unbounded`] is the explicit marker for a Kleene star
    /// looping through a cyclic schema region.
    pub words: Bound,
    /// Should SSD031 fire? True when `words` is unbounded and the data
    /// side cannot rule the blow-up out (schema region is cyclic, or no
    /// schema and the data is cyclic / of unknown shape).
    pub unbounded_words: bool,
    /// Guard fuel for one evaluation (one product BFS).
    pub fuel: Interval,
    /// Guard-accounted bytes for one evaluation.
    pub memory: Interval,
    /// Why bounds were widened — SSD033 payload, deduplicated.
    pub widening: Vec<String>,
}

/// Estimate one RPE evaluation. `seeds` are the schema nodes the start
/// can denote (`None` = the schema root, when a schema is present);
/// `start_fanout` is the out-degree of the start node when known (the
/// data root's, for `db`-sourced bindings) — it sharpens the fuel lower
/// bound.
pub fn rpe_cost(
    path: &Rpe,
    seeds: Option<&BTreeSet<SchemaNodeId>>,
    start_fanout: Option<u64>,
    ctx: &CostContext<'_>,
) -> RpeCost {
    let mut out = RpeCost::default();
    let split = path.split_trailing_label_var();
    let trailing = split.is_some();
    // The evaluator compiles the (unsimplified) prefix when the path ends
    // in a label variable, the whole path otherwise — mirror it exactly.
    let compiled = match &split {
        Some((prefix, _)) => Nfa::compile(prefix),
        None => Nfa::compile(path),
    };
    let states = compiled.state_count() as u64;
    let closure0 = compiled.closure(compiled.start()).len() as u64;
    let nullable = compiled
        .closure(compiled.start())
        .contains(&compiled.accept());

    let default_seeds: BTreeSet<SchemaNodeId> = ctx.schema.map(|s| s.root()).into_iter().collect();
    let seeds = seeds.unwrap_or(&default_seeds);

    // Fuel and memory for one product BFS: every visited (node, state)
    // pair is popped once (1 tick) and scans its node's edges (1 tick
    // each); every insert beyond the start closure allocates VISIT_COST.
    match ctx.stats {
        Some(st) => {
            let n = st.nodes_reachable;
            let e = st.edges_reachable;
            let pairs = n.saturating_mul(states);
            let mut fuel_hi = pairs.saturating_add(e.saturating_mul(states));
            if trailing {
                // The trailing-edge scan ticks once per edge of each
                // prefix match.
                fuel_hi = fuel_hi.saturating_add(e);
            }
            out.fuel.hi = Bound::Finite(fuel_hi);
            out.memory.hi = Bound::Finite(VISIT_COST.saturating_mul(pairs));
        }
        None => {
            out.fuel.hi = Bound::Unbounded;
            out.memory.hi = Bound::Unbounded;
            widen(&mut out.widening, "no data statistics available");
        }
    }
    // Lower bound: the start ε-closure pairs are always popped (1 tick
    // each) and each scans every start edge. Holds for complete,
    // non-truncated runs; the start inserts do not allocate.
    out.fuel.lo = closure0.saturating_mul(1 + start_fanout.unwrap_or(0));
    out.memory.lo = 0;

    // Match cardinality.
    if trailing {
        out.matches.hi = match ctx.stats {
            Some(st) => Bound::Finite(st.edges_reachable),
            None => Bound::Unbounded,
        };
        if ctx.stats.is_some() {
            widen(
                &mut out.widening,
                "label-variable binding is bounded only by the total edge count",
            );
        }
    } else {
        out.matches.hi = match ctx.stats {
            Some(st) => Bound::Finite(st.nodes_reachable),
            None => Bound::Unbounded,
        };
        if let Some(schema) = ctx.schema {
            if ctx.schema_extents_usable() {
                // Conformance makes this sound: every data node the path
                // reaches is assigned (by the data×schema product the
                // statistics record) to a schema node the typing product
                // reaches, so the summed extents bound the match count.
                let t = reach(schema, path, seeds);
                let mut sum = 0u64;
                for node in &t.nodes {
                    if let Some(st) = ctx.stats {
                        sum = sum.saturating_add(st.schema_extent(*node).unwrap_or(0));
                    }
                }
                out.matches.hi = out.matches.hi.min(Bound::Finite(sum));
            } else if ctx.stats.is_some() {
                widen(
                    &mut out.widening,
                    "data does not conform to the schema; bounds use whole-graph counts",
                );
            }
        } else if ctx.stats.is_some() {
            widen(
                &mut out.widening,
                "no schema available; bounds use whole-graph counts",
            );
        }
        // A nullable path always matches its own start node.
        out.matches.lo = u64::from(nullable);
        if let Bound::Finite(h) = out.matches.hi {
            out.matches.lo = out.matches.lo.min(h);
        }
    }

    // Word-language bound against the schema (or the bare automaton).
    out.words = words_bound(&compiled, ctx.schema, seeds);
    if trailing {
        // The final label-variable step multiplies the word count by at
        // most the number of distinct labels.
        out.words = out.words.mul(match ctx.stats {
            Some(st) => Bound::Finite(st.distinct_labels),
            None => Bound::Unbounded,
        });
    }
    out.unbounded_words = out.words == Bound::Unbounded
        && (ctx.schema.is_some() || ctx.stats.is_none_or(|st| st.cyclic));
    out
}

/// Product state: (schema-node index, NFA state). Without a schema the
/// first component is always 0 (a universal one-node schema).
type Pair = (usize, StateId);

/// Bound the number of distinct accepted label words realizable against
/// `schema`: build the NFA×schema product restricted to pairs on some
/// accepting path, return [`Bound::Unbounded`] iff that subgraph has a
/// cycle, otherwise count accepting paths by DP over the DAG.
fn words_bound(nfa: &Nfa, schema: Option<&Schema>, seeds: &BTreeSet<SchemaNodeId>) -> Bound {
    let successors = |(s, q): Pair| -> Vec<Pair> {
        let mut out = Vec::new();
        for &qa in nfa.closure(q) {
            for (pred, q2) in nfa.transitions_from(qa) {
                match schema {
                    Some(sc) => {
                        for edge in sc.edges(SchemaNodeId::from_raw(s)) {
                            if pred.may_overlap(&edge.pred) {
                                out.push((edge.to.index(), *q2));
                            }
                        }
                    }
                    None => out.push((0, *q2)),
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    let accepting = |(_, q): Pair| nfa.closure(q).contains(&nfa.accept());

    let starts: Vec<Pair> = match schema {
        Some(_) => seeds.iter().map(|s| (s.index(), nfa.start())).collect(),
        None => vec![(0, nfa.start())],
    };
    // Forward reachability, recording adjacency.
    let mut adj: BTreeMap<Pair, Vec<Pair>> = BTreeMap::new();
    let mut stack: Vec<Pair> = starts.clone();
    while let Some(p) = stack.pop() {
        if adj.contains_key(&p) {
            continue;
        }
        let succ = successors(p);
        for &s in &succ {
            if !adj.contains_key(&s) {
                stack.push(s);
            }
        }
        adj.insert(p, succ);
    }
    // Backward reachability from accepting pairs.
    let mut useful: BTreeSet<Pair> = adj.keys().copied().filter(|&p| accepting(p)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (p, succ) in &adj {
            if !useful.contains(p) && succ.iter().any(|s| useful.contains(s)) {
                useful.insert(*p);
                changed = true;
            }
        }
    }
    // Cycle check on the useful-induced subgraph (Kahn's algorithm).
    let mut indeg: BTreeMap<Pair, usize> = useful.iter().map(|&p| (p, 0)).collect();
    for p in &useful {
        if let Some(succ) = adj.get(p) {
            for s in succ {
                if let Some(d) = indeg.get_mut(s) {
                    *d += 1;
                }
            }
        }
    }
    let mut order: Vec<Pair> = Vec::with_capacity(useful.len());
    let mut queue: Vec<Pair> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&p, _)| p)
        .collect();
    while let Some(p) = queue.pop() {
        order.push(p);
        if let Some(succ) = adj.get(&p) {
            for s in succ {
                if let Some(d) = indeg.get_mut(s) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(*s);
                    }
                }
            }
        }
    }
    if order.len() < useful.len() {
        return Bound::Unbounded; // a Kleene loop over a cyclic region
    }
    // DAG: count paths ending at an accepting pair, saturating.
    let mut ways: BTreeMap<Pair, u64> = BTreeMap::new();
    for &p in order.iter().rev() {
        let mut w = u64::from(accepting(p));
        if let Some(succ) = adj.get(&p) {
            for s in succ {
                if useful.contains(s) {
                    w = w.saturating_add(ways.get(s).copied().unwrap_or(0));
                }
            }
        }
        ways.insert(p, w);
    }
    let total = starts.iter().fold(0u64, |acc, p| {
        acc.saturating_add(ways.get(p).copied().unwrap_or(0))
    });
    Bound::Finite(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;
    use ssd_schema::{figure1_schema, DataStats};

    fn fig1() -> (DataStats, Schema) {
        let g = parse_graph(
            r#"{Entry: @e1 = {Movie: {Title: "Casablanca",
                                      References: @e2 = {Movie: {Title: "Sam",
                                                                 References: @e1}}}},
                Entry: @e2}"#,
        )
        .unwrap();
        let schema = figure1_schema();
        (DataStats::collect_with_schema(&g, &schema), schema)
    }

    #[test]
    fn finite_path_has_finite_words_and_schema_tight_matches() {
        let (stats, schema) = fig1();
        let ctx = CostContext {
            stats: Some(&stats),
            schema: Some(&schema),
        };
        let rc = rpe_cost(&Rpe::symbol("Entry"), None, Some(stats.root_fanout), &ctx);
        assert!(!rc.unbounded_words, "{rc:?}");
        assert!(matches!(rc.words, Bound::Finite(n) if n >= 1), "{rc:?}");
        // Entry leads to the entry schema node, whose extent is 2 — tighter
        // than the whole-graph node count.
        assert_eq!(rc.matches.hi, Bound::Finite(2), "{rc:?}");
        assert!(rc.fuel.is_bounded() && rc.memory.is_bounded());
        assert!(rc.fuel.lo >= 1);
    }

    #[test]
    fn star_over_cyclic_schema_region_is_the_unbounded_marker() {
        let (stats, schema) = fig1();
        let ctx = CostContext {
            stats: Some(&stats),
            schema: Some(&schema),
        };
        // %* loops through the References cycle of the Figure 1 schema.
        let star = Rpe::step(crate::rpe::Step::wildcard()).star();
        let rc = rpe_cost(&star, None, Some(stats.root_fanout), &ctx);
        assert_eq!(rc.words, Bound::Unbounded);
        assert!(rc.unbounded_words);
        // Matches and fuel stay finite: the BFS deduplicates.
        assert!(rc.matches.is_bounded(), "{rc:?}");
        assert!(rc.fuel.is_bounded(), "{rc:?}");
        // ε-match: the start always matches a nullable path.
        assert_eq!(rc.matches.lo, 1);
    }

    #[test]
    fn star_on_acyclic_data_without_schema_does_not_warn() {
        let g = parse_graph("{a: {b: 1}}").unwrap();
        let stats = DataStats::collect(&g);
        let ctx = CostContext::with_stats(&stats);
        let star = Rpe::symbol("a").star();
        let rc = rpe_cost(&star, None, Some(stats.root_fanout), &ctx);
        // Word language of a* is infinite, but the data is acyclic.
        assert_eq!(rc.words, Bound::Unbounded);
        assert!(!rc.unbounded_words);
    }

    #[test]
    fn no_statistics_widen_to_unknown() {
        let ctx = CostContext::default();
        let rc = rpe_cost(&Rpe::symbol("a"), None, None, &ctx);
        assert_eq!(rc.fuel.hi, Bound::Unbounded);
        assert_eq!(rc.matches.hi, Bound::Unbounded);
        assert!(
            rc.widening.iter().any(|w| w.contains("no data statistics")),
            "{rc:?}"
        );
    }
}
