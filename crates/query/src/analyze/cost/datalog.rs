//! Cost of a graph-datalog program.
//!
//! The evaluator ([`ssd_triples::datalog::eval`]) runs a stratified
//! semi-naive fixpoint: one fuel tick per round and per join candidate,
//! [`TUPLE_COST`] bytes per derived tuple. Statically, predicate arities
//! and the active domain bound every IDB relation (`|p| ≤ |D|^arity`,
//! the classic datalog bound), which in turn bounds rounds per stratum
//! (each growing round adds at least one tuple) and the join candidates
//! per round. A stratum that derives a predicate from itself is flagged
//! SSD031 — its fixpoint is bounded only by the domain product.

use super::{bound_pow, widen, CostAnalysis, CostContext};
use crate::analyze::datalog::EDB_PREDICATES;
use ssd_diag::{Code, Diagnostic};
use ssd_guard::{Bound, Interval};
use ssd_triples::datalog::eval::TUPLE_COST;
use ssd_triples::datalog::{is_builtin, stratify, Program, ProgramSpans, Rule, Term};
use ssd_triples::Datum;
use std::collections::{BTreeSet, HashMap};

/// Statically bound cardinality (tuples of the result predicate), fuel,
/// and memory for `program`. `result` names the result predicate (`None`
/// = head of the last rule, the CLI convention). Programs the evaluator
/// refuses (unsafe, arity-inconsistent, non-stratifiable) get the exact
/// zero envelope — refusal happens before any guard work.
pub fn analyze_datalog_cost(
    program: &Program,
    spans: Option<&ProgramSpans>,
    result: Option<&str>,
    ctx: &CostContext<'_>,
) -> CostAnalysis {
    let mut out = CostAnalysis::default();
    let Ok(strata) = stratify(program) else {
        return out; // refused at run time: zero fuel, zero memory
    };
    if program.check_safety().is_err() || !arities_consistent(program) {
        return out;
    }

    let mut reasons: Vec<String> = Vec::new();
    let bounds = RelBounds::new(program, ctx);
    if ctx.stats.is_none() {
        widen(&mut reasons, "no data statistics available");
    }
    let rel_hi = |pred: &str| -> Bound { bounds.hi(pred) };

    let (mut fuel_hi, mut fuel_lo) = (Bound::Finite(0), 0u64);
    let mut mem_hi = Bound::Finite(0);
    for stratum in &strata {
        if stratum.is_empty() {
            continue;
        }
        let head_preds: BTreeSet<&str> = stratum.iter().map(|r| r.head.pred.as_str()).collect();
        // Capacity of the stratum: every growing round adds ≥ 1 tuple.
        let capacity = head_preds
            .iter()
            .fold(Bound::Finite(0), |acc, p| acc.add(rel_hi(p)));
        let rounds = capacity.add(Bound::Finite(1));
        let mut per_round_fuel = Bound::Finite(1); // the round tick
        let mut per_round_mem = Bound::Finite(0);
        for rule in stratum {
            let m = rule.body.len() as u64;
            let joins = rule
                .body
                .iter()
                .filter(|l| !is_builtin(l.atom.pred.as_str()))
                .fold(Bound::Finite(1), |acc, l| {
                    acc.mul(rel_hi(l.atom.pred.as_str()).max(Bound::Finite(1)))
                });
            // ≤ m rule evaluations per round (semi-naive per-delta
            // position), each ticking ≤ m·joins candidates …
            per_round_fuel = per_round_fuel.add(Bound::Finite(m.saturating_mul(m)).mul(joins));
            // … and allocating ≤ min(bindings, dedup'd head tuples).
            let derived = joins.min(rel_hi(rule.head.pred.as_str()));
            per_round_mem = per_round_mem.add(
                Bound::Finite(m.max(1))
                    .mul(derived)
                    .mul(Bound::Finite(TUPLE_COST)),
            );
            // Lower bound: the seed round evaluates every rule once in
            // full; a leading positive EDB literal scans its exact
            // relation (one tick per tuple).
            fuel_lo = fuel_lo.saturating_add(first_literal_floor(rule, ctx));
        }
        fuel_hi = fuel_hi.add(rounds.mul(per_round_fuel));
        mem_hi = mem_hi.add(rounds.mul(per_round_mem));
        fuel_lo = fuel_lo.saturating_add(1); // at least one round tick

        // SSD031: the stratum derives one of its own predicates.
        let recursive = stratum.iter().find(|r| {
            r.body
                .iter()
                .any(|l| l.positive && head_preds.contains(l.atom.pred.as_str()))
        });
        if let Some(rule) = recursive {
            let idx = program.rules.iter().position(|r| std::ptr::eq(r, *rule));
            out.diagnostics.push(
                Diagnostic::new(
                    Code::UnboundedCost,
                    format!(
                        "recursive stratum: `{}` is derived from itself; its \
                         fixpoint is bounded only by the domain (≤ {} tuple(s))",
                        rule.head.pred, capacity
                    ),
                )
                .with_span_opt(idx.and_then(|i| spans.and_then(|s| s.head(i))))
                .with_suggestion(
                    "recursion terminates (tuples are deduplicated), but the \
                     derived-set size scales with the dataset, not the query",
                ),
            );
        }
    }

    out.envelope.fuel = Interval::new(fuel_lo, fuel_hi);
    out.envelope.memory = Interval::new(0, mem_hi);
    let result_pred = result
        .map(str::to_owned)
        .or_else(|| program.rules.last().map(|r| r.head.pred.clone()));
    out.envelope.cardinality = Interval::new(
        0,
        result_pred.map_or(Bound::Finite(0), |p| rel_hi(p.as_str())),
    );

    for r in reasons {
        out.diagnostics.push(Diagnostic::new(
            Code::ImpreciseEstimate,
            format!("cost estimate widened: {r}"),
        ));
    }
    out
}

/// Static upper bounds on relation sizes: EDB relations from statistics
/// (exact — the triple shredder materializes the reachable fragment the
/// collector counts), IDB relations from the classic `|D|^arity` domain
/// bound. Shared by the cost analysis and the datalog body reorderer.
pub(crate) struct RelBounds {
    domain: Bound,
    arity: HashMap<String, usize>,
    idb: BTreeSet<String>,
    edges: Option<u64>,
    edb_nodes: Option<u64>,
}

impl RelBounds {
    pub(crate) fn new(program: &Program, ctx: &CostContext<'_>) -> RelBounds {
        // Active domain: node ids and labels occurring in the EDB, plus
        // the program's own constants (range restriction confines every
        // derived datum to this set).
        let consts: BTreeSet<&Datum> = program
            .rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom)))
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Const(d) => Some(d),
                Term::Var(_) => None,
            })
            .collect();
        let domain = match ctx.stats {
            Some(st) => Bound::Finite(
                st.edb_nodes
                    .saturating_add(st.distinct_labels)
                    .saturating_add(consts.len() as u64),
            ),
            None => Bound::Unbounded,
        };
        RelBounds {
            domain,
            arity: arity_map(program),
            idb: program
                .idb_predicates()
                .into_iter()
                .map(str::to_owned)
                .collect(),
            edges: ctx.stats.map(|st| st.edges_reachable),
            edb_nodes: ctx.stats.map(|st| st.edb_nodes),
        }
    }

    /// Upper bound on the tuple count of `pred`.
    pub(crate) fn hi(&self, pred: &str) -> Bound {
        match pred {
            "edge" => self.edges.map_or(Bound::Unbounded, Bound::Finite),
            "node" => self.edb_nodes.map_or(Bound::Unbounded, Bound::Finite),
            "root" => Bound::Finite(1),
            p if self.idb.contains(p) => {
                bound_pow(self.domain, self.arity.get(p).copied().unwrap_or(0))
            }
            _ => Bound::Finite(0), // undefined predicate: never matches
        }
    }
}

/// Exact tick count of a rule's leading literal on the seed round, when
/// it is a positive non-builtin EDB atom (the nested-loop join ticks
/// once per source tuple before matching).
fn first_literal_floor(rule: &Rule, ctx: &CostContext<'_>) -> u64 {
    let Some(first) = rule.body.first() else {
        return 0;
    };
    if !first.positive || is_builtin(first.atom.pred.as_str()) {
        return 0;
    }
    match (first.atom.pred.as_str(), ctx.stats) {
        ("root", _) => 1,
        ("edge", Some(st)) => st.edges_reachable,
        ("node", Some(st)) => st.edb_nodes,
        _ => 0,
    }
}

/// First-occurrence arity of each predicate (heads then bodies, in rule
/// order), seeded with the EDB arities — the same convention the
/// evaluator's own arity check uses.
fn arity_map(program: &Program) -> HashMap<String, usize> {
    let mut arity: HashMap<String, usize> = EDB_PREDICATES
        .iter()
        .map(|&(p, a)| (p.to_owned(), a))
        .collect();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
            arity.entry(atom.pred.clone()).or_insert(atom.terms.len());
        }
    }
    arity
}

/// Would the evaluator's arity check pass? (A mismatch refuses the whole
/// program before any guard work.)
fn arities_consistent(program: &Program) -> bool {
    let mut arity: HashMap<String, usize> = EDB_PREDICATES
        .iter()
        .map(|&(p, a)| (p.to_owned(), a))
        .collect();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
            if is_builtin(atom.pred.as_str()) {
                continue;
            }
            match arity.get(atom.pred.as_str()) {
                Some(&a) if a != atom.terms.len() => return false,
                Some(_) => {}
                None => {
                    arity.insert(atom.pred.clone(), atom.terms.len());
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;
    use ssd_guard::Budget;
    use ssd_schema::DataStats;
    use ssd_triples::datalog::{evaluate_with, parse_program};
    use ssd_triples::TripleStore;

    fn tc_src() -> &'static str {
        "path(X, Y) :- edge(X, _L, Y).\n\
         path(X, Y) :- edge(X, _L, Z), path(Z, Y)."
    }

    #[test]
    fn envelope_brackets_a_real_run() {
        let g = parse_graph("{a: {b: {c: 1}}, d: {e: 2}}").unwrap();
        let stats = DataStats::collect(&g);
        let p = parse_program(tc_src(), g.symbols()).unwrap();
        let a = analyze_datalog_cost(&p, None, None, &CostContext::with_stats(&stats));
        assert!(a.envelope.fuel.is_bounded(), "{:?}", a.envelope);
        let store = TripleStore::from_graph(&g);
        let guard = Budget::unlimited().max_steps(u64::MAX / 4).guard();
        evaluate_with(&p, &store, &guard).unwrap();
        let used = guard.steps_used();
        let mem = guard.memory_used();
        assert!(
            used >= a.envelope.fuel.lo,
            "{used} < {}",
            a.envelope.fuel.lo
        );
        match a.envelope.fuel.hi {
            Bound::Finite(hi) => assert!(used <= hi, "{used} > {hi}"),
            Bound::Unbounded => panic!("expected finite bound"),
        }
        match a.envelope.memory.hi {
            Bound::Finite(hi) => assert!(mem <= hi, "{mem} > {hi}"),
            Bound::Unbounded => panic!("expected finite bound"),
        }
    }

    #[test]
    fn recursive_stratum_warns_ssd031() {
        let g = parse_graph("{a: 1}").unwrap();
        let stats = DataStats::collect(&g);
        let p = parse_program(tc_src(), g.symbols()).unwrap();
        let a = analyze_datalog_cost(&p, None, None, &CostContext::with_stats(&stats));
        assert!(
            a.diagnostics.iter().any(|d| d.code == Code::UnboundedCost),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn nonrecursive_program_is_quiet_and_tightly_bounded() {
        let g = parse_graph("{a: 1, b: 2}").unwrap();
        let stats = DataStats::collect(&g);
        let p = parse_program("hit(Y) :- edge(_X, a, Y).", g.symbols()).unwrap();
        let a = analyze_datalog_cost(&p, None, None, &CostContext::with_stats(&stats));
        assert!(
            !a.diagnostics.iter().any(|d| d.code == Code::UnboundedCost),
            "{:?}",
            a.diagnostics
        );
        assert!(a.envelope.fuel.is_bounded());
        // Seed round scans the edge relation exactly.
        assert!(a.envelope.fuel.lo >= stats.edges_reachable);
    }

    #[test]
    fn refused_programs_get_the_zero_envelope() {
        let g = parse_graph("{}").unwrap();
        let stats = DataStats::collect(&g);
        // Unsafe: head variable unbound.
        let p = parse_program("q(X, Y) :- node(X).", g.symbols()).unwrap();
        let a = analyze_datalog_cost(&p, None, None, &CostContext::with_stats(&stats));
        assert_eq!(a.envelope.fuel, Interval::exact(0));
        // Arity mismatch against the EDB.
        let p2 = parse_program("q(X) :- edge(X, _Y).", g.symbols()).unwrap();
        let a2 = analyze_datalog_cost(&p2, None, None, &CostContext::with_stats(&stats));
        assert_eq!(a2.envelope.fuel, Interval::exact(0));
    }

    #[test]
    fn no_stats_widen_with_note() {
        let g = parse_graph("{a: 1}").unwrap();
        let p = parse_program(tc_src(), g.symbols()).unwrap();
        let a = analyze_datalog_cost(&p, None, None, &CostContext::default());
        assert!(!a.envelope.fuel.is_bounded());
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == Code::ImpreciseEstimate),
            "{:?}",
            a.diagnostics
        );
    }
}
