//! Cost of a select-from-where query.
//!
//! The evaluator ([`crate::lang::eval`]) is a nested-loop join: one
//! `enumerate` call per surviving assignment prefix (1 tick each), one
//! RPE evaluation per call below the last depth, condition evaluation
//! (only `exists` consumes fuel) and [`CONSTRUCT_COST`] bytes per
//! constructed result at the last depth. Abstract interpretation
//! multiplies the per-binding match intervals into prefix counts
//! `P_d` and folds the per-evaluation RPE costs ([`super::rpe`]) through
//! them. The model is the baseline (non-optimized, guide-free) plan; the
//! condition term uses `Σ_d P_d` so it also covers pushdown, which may
//! evaluate a conjunct once per prefix at any single depth.

use super::rpe::{rpe_cost, RpeCost};
use super::{widen, CostAnalysis, CostContext};
use crate::lang::ast::Cond;
use crate::lang::eval::CONSTRUCT_COST;
use crate::lang::{QuerySpans, SelectQuery, Source};
use crate::rpe::eval::VISIT_COST;
use crate::rpe::{Nfa, Rpe};
use ssd_diag::{Code, Diagnostic};
use ssd_guard::{Bound, Interval};
use ssd_schema::SchemaNodeId;
use std::collections::{BTreeSet, HashMap};

/// Statically bound cardinality, fuel, and memory for `query`, emitting
/// the cost-band diagnostics (SSD031 unbounded words, SSD032 cross
/// product, SSD033 widening notes). SSD030 is the admission check's —
/// pass the envelope to [`ssd_guard::Budget::admit`].
pub fn analyze_query_cost(
    query: &SelectQuery,
    spans: Option<&QuerySpans>,
    ctx: &CostContext<'_>,
) -> CostAnalysis {
    let mut out = CostAnalysis::default();
    let k = query.bindings.len();

    // Per-binding RPE costs, threading schema seeds exactly like the
    // typing pass: `db` starts at the schema root, a variable source at
    // whatever its binder inferred.
    let mut env: HashMap<&str, BTreeSet<SchemaNodeId>> = HashMap::new();
    let mut costs: Vec<RpeCost> = Vec::with_capacity(k);
    for b in &query.bindings {
        let (seeds, start_fanout) = match &b.source {
            Source::Db => (
                ctx.schema.map(|s| std::iter::once(s.root()).collect()),
                ctx.stats.map(|st| st.root_fanout),
            ),
            Source::Var(v) => (env.get(v.as_str()).cloned(), None),
        };
        let rc = rpe_cost(&b.path, seeds.as_ref(), start_fanout, ctx);
        if ctx.schema.is_some() {
            let nodes = ctx
                .schema
                .map(|s| {
                    crate::analyze::typing::reach(
                        s,
                        &b.path,
                        seeds.as_ref().unwrap_or(&BTreeSet::new()),
                    )
                    .nodes
                })
                .unwrap_or_default();
            env.insert(b.var.as_str(), nodes);
        }
        costs.push(rc);
    }
    out.per_binding = costs.iter().map(|c| c.matches).collect();

    // Prefix assignment counts: P_0 = 1, P_{d+1} = P_d · matches_d.
    let mut prefix: Vec<Interval> = Vec::with_capacity(k + 1);
    prefix.push(Interval::exact(1));
    for c in &costs {
        let last = prefix[prefix.len() - 1];
        prefix.push(last.mul(c.matches));
    }
    let total_prefixes: Bound = prefix.iter().fold(Bound::Finite(0), |acc, p| acc.add(p.hi));

    // Condition costs: only `exists` consumes fuel — one uncached NFA
    // compile + product BFS per evaluation.
    let mut exists_paths: Vec<&Rpe> = Vec::new();
    if let Some(cond) = &query.condition {
        collect_exists(cond, &mut exists_paths);
    }
    let (mut cond_fuel, mut cond_mem) = (Bound::Finite(0), Bound::Finite(0));
    for path in &exists_paths {
        let s = Nfa::compile(path).state_count() as u64;
        match ctx.stats {
            Some(st) => {
                let pairs = st.nodes_reachable.saturating_mul(s);
                cond_fuel = cond_fuel.add(Bound::Finite(
                    pairs.saturating_add(st.edges_reachable.saturating_mul(s)),
                ));
                cond_mem = cond_mem.add(Bound::Finite(VISIT_COST.saturating_mul(pairs)));
            }
            None => {
                cond_fuel = Bound::Unbounded;
                cond_mem = Bound::Unbounded;
            }
        }
    }

    // Fold into the envelope.
    let mut fuel_hi = Bound::Finite(0);
    let mut mem_hi = Bound::Finite(0);
    for (d, c) in costs.iter().enumerate() {
        // Each depth-d call ticks once and evaluates binding d's RPE.
        fuel_hi = fuel_hi.add(prefix[d].hi.mul(Bound::Finite(1).add(c.fuel.hi)));
        mem_hi = mem_hi.add(prefix[d].hi.mul(c.memory.hi));
    }
    // Depth-k calls: one tick and one constructed result each.
    fuel_hi = fuel_hi.add(prefix[k].hi);
    mem_hi = mem_hi.add(prefix[k].hi.mul(Bound::Finite(CONSTRUCT_COST)));
    // Conditions, at whichever depth the plan evaluates them.
    fuel_hi = fuel_hi.add(total_prefixes.mul(cond_fuel));
    mem_hi = mem_hi.add(total_prefixes.mul(cond_mem));

    out.envelope.fuel.hi = fuel_hi;
    out.envelope.memory.hi = mem_hi;
    // Lower bound: the depth-0 call always ticks; with at least one
    // binding, its RPE is evaluated once before anything can prune.
    out.envelope.fuel.lo = 1 + costs.first().map_or(0, |c| c.fuel.lo);
    out.envelope.memory.lo = 0;
    out.envelope.cardinality.hi = prefix[k].hi;
    out.envelope.cardinality.lo = if query.condition.is_none() {
        prefix[k].lo
    } else {
        0
    };

    // SSD031: unbounded word language.
    for (i, c) in costs.iter().enumerate() {
        if c.unbounded_words {
            out.diagnostics.push(
                Diagnostic::new(
                    Code::UnboundedCost,
                    format!(
                        "path `{}` of binding `{}` can match an unbounded set of \
                         label words (Kleene loop over a cyclic region)",
                        query.bindings[i].path, query.bindings[i].var
                    ),
                )
                .with_span_opt(spans.and_then(|s| s.path(i)))
                .with_suggestion(
                    "matches stay finite (the evaluator deduplicates), but only \
                     the dataset size bounds the work; prefer a more selective path",
                ),
            );
        }
    }
    // SSD032: FROM bindings forming a cross product.
    cross_product_check(query, spans, &mut out.diagnostics);
    // SSD033: widening notes, one per distinct reason.
    let mut reasons: Vec<String> = Vec::new();
    for c in &costs {
        for r in &c.widening {
            widen(&mut reasons, r);
        }
    }
    if exists_paths.iter().any(|_| ctx.stats.is_none()) {
        widen(&mut reasons, "no data statistics available");
    }
    for r in reasons {
        out.diagnostics.push(Diagnostic::new(
            Code::ImpreciseEstimate,
            format!("cost estimate widened: {r}"),
        ));
    }
    out
}

/// All `exists` paths in a condition, including under `not`/`or`.
fn collect_exists<'a>(cond: &'a Cond, out: &mut Vec<&'a Rpe>) {
    match cond {
        Cond::Exists(_, path) => out.push(path),
        Cond::Not(c) => collect_exists(c, out),
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_exists(a, out);
            collect_exists(b, out);
        }
        Cond::Cmp(..) | Cond::Like(..) | Cond::TypeIs(..) => {}
    }
}

/// Connected components over the bindings: an edge when one binding
/// sources from another, or a condition conjunct mentions variables of
/// both (tree or label variables). More than one component means the
/// enumeration multiplies unrelated match counts — SSD032, naming one
/// binding from each side (the satellite's "which two, and how to join
/// them" requirement).
fn cross_product_check(
    query: &SelectQuery,
    spans: Option<&QuerySpans>,
    diags: &mut Vec<Diagnostic>,
) {
    let k = query.bindings.len();
    if k < 2 {
        return;
    }
    // Variable name → owning binding index (tree vars and label vars).
    let mut owner: HashMap<&str, usize> = HashMap::new();
    for (i, b) in query.bindings.iter().enumerate() {
        owner.insert(b.var.as_str(), i);
        for lv in b.path.label_vars() {
            owner.insert(lv, i);
        }
    }
    let mut uf: Vec<usize> = (0..k).collect();
    fn find(uf: &mut [usize], mut i: usize) -> usize {
        while uf[i] != i {
            uf[i] = uf[uf[i]];
            i = uf[i];
        }
        i
    }
    let union = |uf: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(uf, a), find(uf, b));
        if ra != rb {
            uf[ra.max(rb)] = ra.min(rb);
        }
    };
    for (i, b) in query.bindings.iter().enumerate() {
        if let Source::Var(v) = &b.source {
            if let Some(&j) = owner.get(v.as_str()) {
                union(&mut uf, i, j);
            }
        }
    }
    if let Some(cond) = &query.condition {
        for conj in cond.conjuncts() {
            let mentioned: Vec<usize> = conj
                .vars()
                .iter()
                .filter_map(|v| owner.get(v).copied())
                .collect();
            for w in mentioned.windows(2) {
                union(&mut uf, w[0], w[1]);
            }
        }
    }
    // Components, keyed by their smallest member.
    let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..k {
        let r = find(&mut uf, i);
        components.entry(r).or_default().push(i);
    }
    if components.len() < 2 {
        return;
    }
    let mut reps: Vec<usize> = components.keys().copied().collect();
    reps.sort_unstable();
    let a = reps[0];
    let a_var = query.bindings[a].var.as_str();
    for &b in &reps[1..] {
        let b_var = query.bindings[b].var.as_str();
        diags.push(
            Diagnostic::new(
                Code::CrossProductJoin,
                format!(
                    "bindings `{a_var}` and `{b_var}` share no variable: the \
                     enumeration multiplies their match counts (cross product)"
                ),
            )
            .with_span_opt(spans.and_then(|s| s.binder(b)))
            .with_suggestion(format!(
                "add a join condition linking `{a_var}` and `{b_var}` (for \
                 example `where {a_var} = {b_var}`), or source one binding's \
                 path from the other"
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{evaluate_select, parse_query_spanned, EvalOptions};
    use ssd_graph::literal::parse_graph;
    use ssd_guard::Budget;
    use ssd_schema::{figure1_schema, DataStats, Schema};

    fn fig1_db() -> ssd_graph::Graph {
        parse_graph(
            r#"{Entry: @e1 = {Movie: {Title: "Casablanca",
                                      References: @e2 = {Movie: {Title: "Sam",
                                                                 References: @e1}}}},
                Entry: @e2}"#,
        )
        .unwrap()
    }

    fn ctx_for(stats: &DataStats, schema: &Schema) -> (CostAnalysis, SelectQuery) {
        let src = "select T from db.Entry.Movie M, M.Title T";
        let (q, spans) = parse_query_spanned(src).unwrap();
        let ctx = CostContext {
            stats: Some(stats),
            schema: Some(schema),
        };
        (analyze_query_cost(&q, Some(&spans), &ctx), q)
    }

    #[test]
    fn bounded_query_has_finite_envelope() {
        let g = fig1_db();
        let schema = figure1_schema();
        let stats = DataStats::collect_with_schema(&g, &schema);
        let (a, _) = ctx_for(&stats, &schema);
        assert!(a.envelope.fuel.is_bounded(), "{:?}", a.envelope);
        assert!(a.envelope.memory.is_bounded(), "{:?}", a.envelope);
        assert!(a.envelope.cardinality.is_bounded(), "{:?}", a.envelope);
        assert!(a.envelope.fuel.lo >= 1);
        assert_eq!(a.per_binding.len(), 2);
        assert!(!a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::CrossProductJoin));
    }

    #[test]
    fn envelope_brackets_a_real_run() {
        let g = fig1_db();
        let schema = figure1_schema();
        let stats = DataStats::collect_with_schema(&g, &schema);
        let (a, q) = ctx_for(&stats, &schema);
        // An *active* guard with huge limits measures without tripping.
        let guard = Budget::unlimited().max_steps(u64::MAX / 4).guard();
        let opts = EvalOptions::default().with_guard(&guard);
        evaluate_select(&g, &q, &opts).unwrap();
        let used = guard.steps_used();
        let mem = guard.memory_used();
        assert!(
            used >= a.envelope.fuel.lo,
            "{used} < {}",
            a.envelope.fuel.lo
        );
        match a.envelope.fuel.hi {
            Bound::Finite(hi) => assert!(used <= hi, "{used} > {hi}"),
            Bound::Unbounded => {}
        }
        match a.envelope.memory.hi {
            Bound::Finite(hi) => assert!(mem <= hi, "{mem} > {hi}"),
            Bound::Unbounded => {}
        }
    }

    #[test]
    fn cross_product_names_both_bindings_and_suggests_a_join() {
        let src = "select {a: X, b: Y} from db.Entry X, db.Entry Y";
        let (q, spans) = parse_query_spanned(src).unwrap();
        let a = analyze_query_cost(&q, Some(&spans), &CostContext::default());
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CrossProductJoin)
            .expect("cross product should be flagged");
        assert!(
            d.message.contains("`X`") && d.message.contains("`Y`"),
            "{d:?}"
        );
        let sugg = d.suggestion.as_deref().unwrap_or("");
        assert!(sugg.contains("join condition"), "{d:?}");
        assert!(sugg.contains("`X`") && sugg.contains("`Y`"), "{d:?}");
        let span = d.span.expect("span on the second binder");
        assert_eq!(&src[span.start..span.end], "Y");
    }

    #[test]
    fn join_condition_or_shared_source_silences_ssd032() {
        for src in [
            "select {a: X, b: Y} from db.Entry X, db.Entry Y where X = Y",
            "select T from db.Entry.Movie M, M.Title T",
        ] {
            let (q, spans) = parse_query_spanned(src).unwrap();
            let a = analyze_query_cost(&q, Some(&spans), &CostContext::default());
            assert!(
                !a.diagnostics
                    .iter()
                    .any(|d| d.code == Code::CrossProductJoin),
                "{src}: {:?}",
                a.diagnostics
            );
        }
    }

    #[test]
    fn star_query_warns_unbounded_with_schema() {
        let g = fig1_db();
        let schema = figure1_schema();
        let stats = DataStats::collect_with_schema(&g, &schema);
        let (q, spans) = parse_query_spanned("select X from db.%* X").unwrap();
        let ctx = CostContext {
            stats: Some(&stats),
            schema: Some(&schema),
        };
        let a = analyze_query_cost(&q, Some(&spans), &ctx);
        assert!(
            a.diagnostics.iter().any(|d| d.code == Code::UnboundedCost),
            "{:?}",
            a.diagnostics
        );
        // Fuel still finite: product BFS deduplicates.
        assert!(a.envelope.fuel.is_bounded());
    }

    #[test]
    fn no_stats_yields_unknown_envelope_and_imprecision_note() {
        let (q, spans) = parse_query_spanned("select X from db.Entry X").unwrap();
        let a = analyze_query_cost(&q, Some(&spans), &CostContext::default());
        assert!(!a.envelope.fuel.is_bounded());
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == Code::ImpreciseEstimate),
            "{:?}",
            a.diagnostics
        );
    }
}
