//! `ssd-analyze` — static analysis & diagnostics over UnQL/Lorel queries,
//! regular path expressions, and graph-datalog programs.
//!
//! Three passes share the [`ssd_diag::Diagnostic`] vocabulary:
//!
//! * [`vars`] — name resolution over select-from-where queries
//!   (SSD001–SSD005): unbound/use-before-bind references, duplicate
//!   bindings, unused bindings, label-variable placement.
//! * [`typing`] — schema-aware path typing (SSD010): the product of each
//!   binding's RPE automaton with a [`Schema`] infers the schema-node and
//!   label sets the binding can produce, certifying emptiness.
//! * [`datalog`] — lints over graph-datalog programs (SSD020–SSD026),
//!   reusing the evaluator's own safety/stratification machinery so
//!   analyzer and engine never disagree.
//! * [`cost`] — `ssd-cost`, the static cost-and-cardinality estimator
//!   (SSD030–SSD033): interval bounds on result cardinality, guard fuel,
//!   and guard-accounted memory, driving admission control and the
//!   cost-based optimizer. Opt-in — not part of [`analyze_query`].
//!
//! Entry points: [`analyze_query`] / [`analyze_query_src`] for the query
//! language, [`analyze_datalog_src`] for datalog; the CLI's `ssd check`
//! and the evaluator's gate in [`crate::lang::evaluate_select`] sit on
//! top of these.

pub mod cost;
pub mod datalog;
pub mod typing;
pub mod vars;

pub use cost::{analyze_datalog_cost, analyze_query_cost, CostAnalysis, CostContext};
pub use datalog::{check_datalog, EDB_PREDICATES};
pub use typing::{infer, reach, BindingType, PathTypes};
pub use vars::check_query_vars;

use crate::lang::{parse_query_spanned, QueryParseError, QuerySpans, SelectQuery};
use ssd_diag::{Diagnostic, DiagnosticSink};
use ssd_graph::SymbolTable;
use ssd_schema::Schema;
use ssd_triples::datalog::parse_program_spanned;

/// Everything one analysis run produced.
#[derive(Debug, Clone, Default)]
pub struct QueryAnalysis {
    /// All findings, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-binding schema inference; `None` when no schema was supplied.
    pub types: Option<PathTypes>,
}

impl QueryAnalysis {
    /// Does any finding refuse evaluation?
    pub fn has_errors(&self) -> bool {
        self.diagnostics.has_errors()
    }
}

/// Analyze a parsed query: variable checks always, path typing when a
/// schema is available. `spans` attaches precise source locations;
/// programmatically built queries pass `None` and get span-less findings.
pub fn analyze_query(
    query: &SelectQuery,
    spans: Option<&QuerySpans>,
    schema: Option<&Schema>,
) -> QueryAnalysis {
    let mut diagnostics = check_query_vars(query, spans);
    let types = schema.map(|s| {
        let (types, mut more) = typing::infer(query, s, spans);
        diagnostics.append(&mut more);
        types
    });
    QueryAnalysis {
        diagnostics: diagnostics.sorted_by_span(),
        types,
    }
}

/// Parse and analyze query source text in one step.
pub fn analyze_query_src(
    src: &str,
    schema: Option<&Schema>,
) -> Result<(SelectQuery, QuerySpans, QueryAnalysis), QueryParseError> {
    let (query, spans) = parse_query_spanned(src)?;
    let analysis = analyze_query(&query, Some(&spans), schema);
    Ok((query, spans, analysis))
}

/// Parse and analyze datalog source text in one step. `result` overrides
/// the result-predicate convention (head of the last rule) for the
/// unreachable-rule lint.
pub fn analyze_datalog_src(
    src: &str,
    symbols: &SymbolTable,
    result: Option<&str>,
) -> Result<Vec<Diagnostic>, String> {
    let (program, spans) = parse_program_spanned(src, symbols)?;
    Ok(check_datalog(&program, Some(&spans), result).sorted_by_span())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_diag::Code;
    use ssd_graph::new_symbols;
    use ssd_schema::figure1_schema;

    #[test]
    fn analyze_query_src_combines_passes() {
        // `Bogus` is schema-impossible AND `X` is unused: one warning from
        // each pass, sorted by span.
        let (_, _, a) =
            analyze_query_src("select 1 from db.Bogus X", Some(&figure1_schema())).unwrap();
        let codes: Vec<_> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::EmptyPath), "{:?}", a.diagnostics);
        assert!(codes.contains(&Code::UnusedBinding), "{:?}", a.diagnostics);
        assert!(!a.has_errors());
        assert!(a.types.is_some());
    }

    #[test]
    fn analyze_without_schema_skips_typing() {
        let (_, _, a) = analyze_query_src("select X from db.Entry X", None).unwrap();
        assert!(a.types.is_none());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn analyze_datalog_src_reports_sorted() {
        let syms = new_symbols();
        let d = analyze_datalog_src(
            "q(X) :- nodes(X).\nr(Y) :- q(Y), not missing(Y).",
            &syms,
            None,
        )
        .unwrap();
        assert!(!d.is_empty());
        let starts: Vec<_> = d
            .iter()
            .map(|x| x.span.map_or(usize::MAX, |s| s.start))
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
