//! Lints for graph-datalog programs.
//!
//! The evaluator ([`ssd_triples::datalog`]) already refuses unsafe,
//! non-stratifiable, or arity-inconsistent programs — but it stops at the
//! first problem and reports a bare string. This pass re-runs those checks
//! as [`Diagnostic`]s with source spans, reports *all* findings, and adds
//! the lints evaluation cannot justify refusing over: undefined body
//! predicates (SSD023), rules unreachable from the result predicate
//! (SSD024), wildcard heads (SSD025), and singleton variables (SSD026).

use ssd_diag::{Code, Diagnostic, Span};
use ssd_triples::datalog::{is_builtin, stratify, Atom, Program, ProgramSpans};
use std::collections::{HashMap, HashSet};

/// The EDB relations the triple store exposes, with their arities:
/// `edge(Src, Label, Dst)`, `node(N)`, `root(R)`.
pub const EDB_PREDICATES: &[(&str, usize)] = &[("edge", 3), ("node", 1), ("root", 1)];

fn edb_arity(pred: &str) -> Option<usize> {
    EDB_PREDICATES
        .iter()
        .find(|(p, _)| *p == pred)
        .map(|(_, a)| *a)
}

/// Run every datalog lint. `result` names the program's result predicate
/// for reachability (SSD024); `None` uses the head of the last rule, the
/// convention the CLI's `datalog` command evaluates and prints.
pub fn check_datalog(
    program: &Program,
    spans: Option<&ProgramSpans>,
    result: Option<&str>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let head = |i: usize| spans.and_then(|s| s.head(i));
    let body = |i: usize, j: usize| spans.and_then(|s| s.body(i, j));

    check_safety(program, &head, &body, &mut diags);
    check_arities(program, &head, &body, &mut diags);
    check_stratification(program, &body, &mut diags);
    check_defined(program, &body, &mut diags);
    check_reachable(program, result, &head, &mut diags);
    check_head_wildcards(program, &head, &mut diags);
    check_singletons(program, &head, &body, &mut diags);
    diags
}

/// Range restriction (SSD020), mirroring `Program::check_safety` but
/// per-violation and with spans.
fn check_safety(
    program: &Program,
    head: &impl Fn(usize) -> Option<Span>,
    body: &impl Fn(usize, usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, rule) in program.rules.iter().enumerate() {
        if is_builtin(rule.head.pred.as_str()) {
            diags.push(
                Diagnostic::new(
                    Code::DatalogUnsafe,
                    format!(
                        "rule {i}: cannot define builtin predicate `{}`",
                        rule.head.pred
                    ),
                )
                .with_span_opt(head(i)),
            );
        }
        let positive_vars: HashSet<&str> = rule
            .body
            .iter()
            .filter(|l| l.positive && !is_builtin(l.atom.pred.as_str()))
            .flat_map(|l| l.atom.vars())
            .collect();
        for v in rule.head.vars() {
            if !positive_vars.contains(v) {
                diags.push(
                    Diagnostic::new(
                        Code::DatalogUnsafe,
                        format!(
                            "rule {i}: head variable `{v}` not bound by a positive body literal"
                        ),
                    )
                    .with_span_opt(head(i))
                    .with_suggestion(format!("add a positive body literal mentioning `{v}`")),
                );
            }
        }
        for (j, lit) in rule.body.iter().enumerate() {
            let builtin = is_builtin(lit.atom.pred.as_str());
            if !builtin && lit.positive {
                continue;
            }
            if builtin && lit.atom.terms.len() != 2 {
                diags.push(
                    Diagnostic::new(
                        Code::DatalogUnsafe,
                        format!(
                            "rule {i}: builtin `{}` takes exactly two arguments",
                            lit.atom.pred
                        ),
                    )
                    .with_span_opt(body(i, j)),
                );
            }
            for v in lit.atom.vars() {
                if !positive_vars.contains(v) {
                    diags.push(
                        Diagnostic::new(
                            Code::DatalogUnsafe,
                            format!(
                                "rule {i}: variable `{v}` in {} literal not bound positively",
                                if lit.positive { "builtin" } else { "negated" }
                            ),
                        )
                        .with_span_opt(body(i, j)),
                    );
                }
            }
        }
    }
}

/// Arity consistency (SSD021), seeded with the EDB arities and the
/// two-argument builtins so `edge(X, Y)` is caught even when used
/// consistently — it would silently match nothing at evaluation time.
fn check_arities(
    program: &Program,
    head: &impl Fn(usize) -> Option<Span>,
    body: &impl Fn(usize, usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut arity: HashMap<String, usize> = EDB_PREDICATES
        .iter()
        .map(|&(p, a)| (p.to_owned(), a))
        .collect();
    let atoms = program.rules.iter().enumerate().flat_map(|(i, rule)| {
        std::iter::once((&rule.head, head(i))).chain(
            rule.body
                .iter()
                .enumerate()
                .map(move |(j, lit)| (&lit.atom, body(i, j))),
        )
    });
    for (atom, span) in atoms {
        if is_builtin(atom.pred.as_str()) {
            continue; // builtin arity is a safety (SSD020) concern
        }
        match arity.get(atom.pred.as_str()) {
            Some(&a) if a != atom.terms.len() => diags.push(
                Diagnostic::new(
                    Code::DatalogArityMismatch,
                    format!(
                        "predicate `{}` used with arity {}, expected {a}",
                        atom.pred,
                        atom.terms.len()
                    ),
                )
                .with_span_opt(span),
            ),
            Some(_) => {}
            None => {
                arity.insert(atom.pred.clone(), atom.terms.len());
            }
        }
    }
}

/// Stratifiability (SSD022): delegate to the evaluator's own
/// [`stratify`] so the analyzer and the engine can never disagree, then
/// point the span at the first negated IDB literal (the edge that closes
/// the negative cycle, or at least a member of it).
fn check_stratification(
    program: &Program,
    body: &impl Fn(usize, usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    if let Err(e) = stratify(program) {
        let idb: HashSet<&str> = program.idb_predicates().into_iter().collect();
        let span = program.rules.iter().enumerate().find_map(|(i, rule)| {
            rule.body.iter().enumerate().find_map(|(j, lit)| {
                (!lit.positive && idb.contains(lit.atom.pred.as_str()))
                    .then(|| body(i, j))
                    .flatten()
            })
        });
        diags.push(
            Diagnostic::new(Code::DatalogNotStratifiable, e.to_string())
                .with_span_opt(span)
                .with_suggestion(
                    "break the cycle of recursion through negation; every negated \
                     predicate must be fully computable in a lower stratum",
                ),
        );
    }
}

/// Undefined body predicates (SSD023): not builtin, not EDB, not the head
/// of any rule. Such a literal can never match — the rule is dead.
fn check_defined(
    program: &Program,
    body: &impl Fn(usize, usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    let idb: HashSet<&str> = program.idb_predicates().into_iter().collect();
    for (i, rule) in program.rules.iter().enumerate() {
        for (j, lit) in rule.body.iter().enumerate() {
            let p = lit.atom.pred.as_str();
            if !is_builtin(p) && edb_arity(p).is_none() && !idb.contains(p) {
                diags.push(
                    Diagnostic::new(
                        Code::DatalogUndefinedPredicate,
                        format!("predicate `{p}` is defined by no rule and is not an EDB relation"),
                    )
                    .with_span_opt(body(i, j))
                    .with_suggestion(
                        "the EDB relations are edge(Src, Label, Dst), node(N), and root(R)",
                    ),
                );
            }
        }
    }
}

/// Rules whose head predicate the result predicate never (transitively)
/// depends on (SSD024). The result predicate defaults to the head of the
/// last rule — the convention the CLI evaluates.
fn check_reachable(
    program: &Program,
    result: Option<&str>,
    head: &impl Fn(usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(result) = result
        .map(str::to_owned)
        .or_else(|| program.rules.last().map(|r| r.head.pred.clone()))
    else {
        return;
    };
    // Dependency closure: result pred → body preds of its rules → ...
    let mut reachable: HashSet<&str> = HashSet::new();
    let mut stack = vec![result.as_str()];
    while let Some(p) = stack.pop() {
        if !reachable.insert(p) {
            continue;
        }
        for rule in program.rules.iter().filter(|r| r.head.pred == p) {
            for lit in &rule.body {
                stack.push(lit.atom.pred.as_str());
            }
        }
    }
    for (i, rule) in program.rules.iter().enumerate() {
        let p = rule.head.pred.as_str();
        if !reachable.contains(p) {
            diags.push(
                Diagnostic::new(
                    Code::DatalogUnreachableRule,
                    format!(
                        "rule {i} defines `{p}`, which the result predicate `{result}` \
                         never depends on"
                    ),
                )
                .with_span_opt(head(i))
                .with_suggestion("remove the rule, or reference it from the result"),
            );
        }
    }
}

/// Wildcard-named head variables (SSD025): deriving `p(_)` stores a
/// binding for a variable the author declared uninteresting.
fn check_head_wildcards(
    program: &Program,
    head: &impl Fn(usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, rule) in program.rules.iter().enumerate() {
        for v in rule.head.vars() {
            if v == "_" {
                diags.push(
                    Diagnostic::new(
                        Code::DatalogHeadWildcard,
                        format!("rule {i}: wildcard `_` in rule head"),
                    )
                    .with_span_opt(head(i))
                    .with_suggestion("name the variable; head positions are the derived tuple"),
                );
            }
        }
    }
}

/// Variables occurring exactly once in a rule (SSD026) — in this syntax
/// `_`-prefixed names opt out, everything else is probably a typo.
fn check_singletons(
    program: &Program,
    head: &impl Fn(usize) -> Option<Span>,
    body: &impl Fn(usize, usize) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, rule) in program.rules.iter().enumerate() {
        let mut count: HashMap<&str, usize> = HashMap::new();
        let atoms: Vec<&Atom> = std::iter::once(&rule.head)
            .chain(rule.body.iter().map(|l| &l.atom))
            .collect();
        for atom in &atoms {
            for v in atom.vars() {
                *count.entry(v).or_insert(0) += 1;
            }
        }
        for (v, n) in count {
            if n != 1 || v.starts_with('_') {
                continue;
            }
            // Span: the atom the lone occurrence sits in.
            let span = atoms
                .iter()
                .position(|a| a.vars().any(|x| x == v))
                .and_then(|k| if k == 0 { head(i) } else { body(i, k - 1) });
            diags.push(
                Diagnostic::new(
                    Code::DatalogSingletonVariable,
                    format!("rule {i}: variable `{v}` occurs only once"),
                )
                .with_span_opt(span)
                .with_suggestion(format!(
                    "rename it `_{v}` if the value is intentionally unused"
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_diag::DiagnosticSink;
    use ssd_graph::new_symbols;
    use ssd_triples::datalog::parse_program_spanned;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let syms = new_symbols();
        let (p, spans) = parse_program_spanned(src, &syms).unwrap();
        check_datalog(&p, Some(&spans), None)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = diags_for(
            "path(X, Y) :- edge(X, _L, Y).\n\
             path(X, Y) :- edge(X, _L, Z), path(Z, Y).",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_head_variable() {
        let src = "q(X, Y) :- node(X).";
        let d = diags_for(src);
        assert!(codes(&d).contains(&"SSD020"), "{d:?}");
        let span = d[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "q(X, Y)");
    }

    #[test]
    fn arity_mismatch_against_edb() {
        // Consistent use of edge/2 — the evaluator would accept and derive
        // nothing; the analyzer pins it to the real EDB arity.
        let d = diags_for("q(X) :- edge(X, Y), node(Y).");
        assert!(codes(&d).contains(&"SSD021"), "{d:?}");
    }

    #[test]
    fn arity_mismatch_within_program() {
        let d = diags_for("p(X) :- node(X).\nq(X) :- p(X, X), node(X).");
        assert!(codes(&d).contains(&"SSD021"), "{d:?}");
    }

    #[test]
    fn not_stratifiable_flagged_with_span() {
        let src = "win(X) :- edge(X, _L, Y), not win(Y).";
        let d = diags_for(src);
        let strat = d
            .iter()
            .find(|x| x.code == Code::DatalogNotStratifiable)
            .unwrap();
        let span = strat.span.unwrap();
        assert_eq!(&src[span.start..span.end], "win(Y)");
    }

    #[test]
    fn undefined_predicate_warns() {
        let d = diags_for("q(X) :- nodes(X).");
        let c = codes(&d);
        assert!(c.contains(&"SSD023"), "{d:?}");
        assert!(!d.has_errors(), "undefined predicate is a warning: {d:?}");
    }

    #[test]
    fn unreachable_rule_warns() {
        let src = "orphan(X) :- node(X).\nresult(X) :- root(X).";
        let d = diags_for(src);
        let unreach = d
            .iter()
            .find(|x| x.code == Code::DatalogUnreachableRule)
            .expect("orphan should be unreachable");
        let span = unreach.span.unwrap();
        assert_eq!(&src[span.start..span.end], "orphan(X)");
        // Explicit result predicate overrides the last-rule convention.
        let syms = new_symbols();
        let (p, spans) = parse_program_spanned(src, &syms).unwrap();
        let d2 = check_datalog(&p, Some(&spans), Some("orphan"));
        assert!(d2
            .iter()
            .any(|x| x.code == Code::DatalogUnreachableRule && x.message.contains("result")));
    }

    #[test]
    fn head_wildcard_is_error() {
        let d = diags_for("q(_) :- node(_).");
        assert!(codes(&d).contains(&"SSD025"), "{d:?}");
    }

    #[test]
    fn singleton_variable_warns_and_underscore_opts_out() {
        let src = "q(X) :- edge(X, L, Y), node(Y).";
        let d = diags_for(src);
        let single = d
            .iter()
            .find(|x| x.code == Code::DatalogSingletonVariable)
            .unwrap();
        assert!(single.message.contains("`L`"), "{d:?}");
        let span = single.span.unwrap();
        assert_eq!(&src[span.start..span.end], "edge(X, L, Y)");
        let d2 = diags_for("q(X) :- edge(X, _L, Y), node(Y).");
        assert!(
            !d2.iter().any(|x| x.code == Code::DatalogSingletonVariable),
            "{d2:?}"
        );
    }

    #[test]
    fn facts_reachable_through_rules() {
        // Facts feeding the result are not unreachable.
        let d = diags_for(
            "likes(\"ann\", \"bob\").\n\
             knows(X, Y) :- likes(X, Y).",
        );
        assert!(
            !d.iter().any(|x| x.code == Code::DatalogUnreachableRule),
            "{d:?}"
        );
    }
}
