//! Variable analysis for select-from-where queries.
//!
//! Mirrors [`SelectQuery::validate`] exactly on the *error* side — a query
//! has at least one error diagnostic iff `validate` rejects it — but keeps
//! going after the first problem, attaches source spans, distinguishes
//! use-before-bind from never-bound, and adds unused-binding warnings that
//! `validate` (which gates evaluation) deliberately ignores.

use crate::lang::{Cond, Construct, Expr, LabelExpr, OccSite, QuerySpans, SelectQuery, Source};
use ssd_diag::{Code, Diagnostic, Span};
use std::collections::HashSet;

/// Run the variable checks. `spans` (from
/// [`parse_query_spanned`](crate::lang::parse_query_spanned)) is optional:
/// programmatically built queries get span-less diagnostics.
pub fn check_query_vars(query: &SelectQuery, spans: Option<&QuerySpans>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let binder = |i: usize| spans.and_then(|s| s.binder(i));
    let source = |i: usize| spans.and_then(|s| s.source(i));
    let path = |i: usize| spans.and_then(|s| s.path(i));
    let occ = |name: &str, site: OccSite| spans.and_then(|s| s.occurrence(name, Some(site)));

    // Everything any binding binds, for the SSD001/SSD002 distinction.
    let all_bound: HashSet<&str> = query
        .bindings
        .iter()
        .flat_map(|b| {
            b.path
                .label_vars()
                .into_iter()
                .chain(std::iter::once(b.var.as_str()))
        })
        .collect();

    let mut bound: HashSet<&str> = HashSet::new();
    for (i, b) in query.bindings.iter().enumerate() {
        if let Source::Var(v) = &b.source {
            if !bound.contains(v.as_str()) {
                if all_bound.contains(v.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            Code::UseBeforeBind,
                            format!(
                                "source variable `{v}` of binding {i} is \
                                 not bound by an earlier binding"
                            ),
                        )
                        .with_span_opt(source(i))
                        .with_suggestion(format!(
                            "move the binding that introduces `{v}` before this one"
                        )),
                    );
                } else {
                    diags.push(
                        Diagnostic::new(
                            Code::UnboundVariable,
                            format!("unbound variable `{v}` as source of binding {i}"),
                        )
                        .with_span_opt(source(i))
                        .with_suggestion(format!(
                            "bind `{v}` in a from-clause, e.g. `db.path {v}`"
                        )),
                    );
                }
            }
        }
        if let Err(m) = b.path.check_label_vars() {
            diags.push(
                Diagnostic::new(Code::LabelVarMisuse, m)
                    .with_span_opt(path(i))
                    .with_suggestion(
                        "a label variable may only appear as the final step of a binding path",
                    ),
            );
        }
        for lv in b.path.label_vars() {
            if !bound.insert(lv) {
                diags.push(
                    Diagnostic::new(
                        Code::DuplicateBinding,
                        format!("label variable `{lv}` bound twice"),
                    )
                    .with_span_opt(label_var_span(spans, i, lv))
                    .with_suggestion("rename one of the occurrences"),
                );
            }
        }
        if !bound.insert(b.var.as_str()) {
            diags.push(
                Diagnostic::new(
                    Code::DuplicateBinding,
                    format!("variable `{}` bound twice", b.var),
                )
                .with_span_opt(binder(i))
                .with_suggestion("rename one of the bindings; shadowing is not allowed"),
            );
        }
    }

    check_construct(&query.construct, &bound, &occ, &mut diags);
    if let Some(c) = &query.condition {
        check_cond(c, &bound, &occ, &mut diags);
    }

    // Unused bindings (warning): a bound variable never read by the select
    // head, the where clause, or a later binding's source.
    let mut used: HashSet<&str> = HashSet::new();
    collect_construct_uses(&query.construct, &mut used);
    if let Some(c) = &query.condition {
        collect_cond_uses(c, &mut used);
    }
    for b in &query.bindings {
        if let Source::Var(v) = &b.source {
            used.insert(v.as_str());
        }
    }
    for (i, b) in query.bindings.iter().enumerate() {
        if !used.contains(b.var.as_str()) && !b.var.starts_with('_') {
            diags.push(
                Diagnostic::new(
                    Code::UnusedBinding,
                    format!("binding variable `{}` is never used", b.var),
                )
                .with_span_opt(binder(i))
                .with_suggestion(format!(
                    "prefix it as `_{}` to keep the binding for its filtering \
                     effect, or remove it",
                    b.var
                )),
            );
        }
        for lv in b.path.label_vars() {
            if !used.contains(lv) && !lv.starts_with('_') {
                diags.push(
                    Diagnostic::new(
                        Code::UnusedBinding,
                        format!("label variable `^{lv}` is never used"),
                    )
                    .with_span_opt(label_var_span(spans, i, lv))
                    .with_suggestion(format!("prefix it as `^_{lv}`, or use `%` instead")),
                );
            }
        }
    }

    diags
}

fn label_var_span(spans: Option<&QuerySpans>, i: usize, name: &str) -> Option<Span> {
    spans
        .and_then(|s| s.bindings.get(i))
        .and_then(|b| b.label_vars.iter().find(|(n, _)| n == name))
        .map(|(_, s)| *s)
}

fn check_construct(
    c: &Construct,
    bound: &HashSet<&str>,
    occ: &impl Fn(&str, OccSite) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    match c {
        Construct::Node(entries) => {
            for (l, sub) in entries {
                if let LabelExpr::LabelVar(v) = l {
                    if !bound.contains(v.as_str()) {
                        diags.push(
                            Diagnostic::new(
                                Code::UnboundVariable,
                                format!("unbound label variable `^{v}` in construct"),
                            )
                            .with_span_opt(occ(v, OccSite::Construct))
                            .with_suggestion(format!(
                                "bind `^{v}` as the final step of a from-clause path"
                            )),
                        );
                    }
                }
                check_construct(sub, bound, occ, diags);
            }
        }
        Construct::Var(v) => {
            if !bound.contains(v.as_str()) {
                diags.push(
                    Diagnostic::new(
                        Code::UnboundVariable,
                        format!("unbound variable `{v}` in construct"),
                    )
                    .with_span_opt(occ(v, OccSite::Construct))
                    .with_suggestion(format!("bind `{v}` in a from-clause, e.g. `db.path {v}`")),
                );
            }
        }
        Construct::Atom(_) => {}
    }
}

fn check_cond(
    c: &Cond,
    bound: &HashSet<&str>,
    occ: &impl Fn(&str, OccSite) -> Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    let check_expr = |e: &Expr, diags: &mut Vec<Diagnostic>| {
        if let Expr::Var(v) = e {
            if !bound.contains(v.as_str()) {
                diags.push(
                    Diagnostic::new(
                        Code::UnboundVariable,
                        format!("unbound variable `{v}` in condition"),
                    )
                    .with_span_opt(occ(v, OccSite::Cond))
                    .with_suggestion(format!("bind `{v}` in a from-clause, e.g. `db.path {v}`")),
                );
            }
        }
    };
    match c {
        Cond::Cmp(a, _, b) => {
            check_expr(a, diags);
            check_expr(b, diags);
        }
        Cond::Like(e, _) | Cond::TypeIs(e, _) => check_expr(e, diags),
        Cond::Exists(v, path) => {
            if !bound.contains(v.as_str()) {
                diags.push(
                    Diagnostic::new(
                        Code::UnboundVariable,
                        format!("unbound variable `{v}` in exists"),
                    )
                    .with_span_opt(occ(v, OccSite::Cond))
                    .with_suggestion(format!("bind `{v}` in a from-clause, e.g. `db.path {v}`")),
                );
            }
            for lv in path.label_vars() {
                diags.push(
                    Diagnostic::new(
                        Code::LabelVarMisuse,
                        format!("label variables not allowed inside exists (`^{lv}`)"),
                    )
                    .with_span_opt(occ(lv, OccSite::Cond))
                    .with_suggestion("use `%` to match any label without binding it"),
                );
            }
        }
        Cond::Not(c) => check_cond(c, bound, occ, diags),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(a, bound, occ, diags);
            check_cond(b, bound, occ, diags);
        }
    }
}

fn collect_construct_uses<'a>(c: &'a Construct, used: &mut HashSet<&'a str>) {
    match c {
        Construct::Node(entries) => {
            for (l, sub) in entries {
                if let LabelExpr::LabelVar(v) = l {
                    used.insert(v.as_str());
                }
                collect_construct_uses(sub, used);
            }
        }
        Construct::Var(v) => {
            used.insert(v.as_str());
        }
        Construct::Atom(_) => {}
    }
}

fn collect_cond_uses<'a>(c: &'a Cond, used: &mut HashSet<&'a str>) {
    for v in c.vars() {
        used.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query_spanned;
    use ssd_diag::DiagnosticSink;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let (q, spans) = parse_query_spanned(src).unwrap();
        check_query_vars(&q, Some(&spans))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let d = diags_for("select {t: T} from db.Entry.Movie M, M.Title T where exists M.Cast");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unbound_variable_in_construct() {
        let src = "select X from db.Entry E";
        let d = diags_for(src);
        assert_eq!(codes(&d), vec!["SSD001", "SSD004"]);
        let span = d[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "X");
    }

    #[test]
    fn use_before_bind_vs_never_bound() {
        // T is bound later: SSD002. Z is never bound: SSD001.
        let d = diags_for("select M from T.a X, db.Entry M, M.b T, Z.c W");
        let c = codes(&d);
        assert!(c.contains(&"SSD002"), "{d:?}");
        assert!(c.contains(&"SSD001"), "{d:?}");
    }

    #[test]
    fn duplicate_binding_flagged() {
        let src = "select M from db.Entry M, db.Movie M";
        let d = diags_for(src);
        assert!(codes(&d).contains(&"SSD003"), "{d:?}");
        let dup = d.iter().find(|x| x.code == Code::DuplicateBinding).unwrap();
        // Span points at the *second* M binder.
        assert!(dup.span.unwrap().start > src.find("Entry M").unwrap());
    }

    #[test]
    fn duplicate_label_var_flagged() {
        let d = diags_for("select L from db.^L X, X.^L Y");
        assert!(codes(&d).contains(&"SSD003"), "{d:?}");
    }

    #[test]
    fn unused_binding_warns_and_underscore_silences() {
        let d = diags_for("select M from db.Entry M, M.Title T");
        assert_eq!(codes(&d), vec!["SSD004"]);
        assert!(!d.has_errors());
        let d2 = diags_for("select M from db.Entry M, M.Title _T");
        assert!(d2.is_empty(), "{d2:?}");
    }

    #[test]
    fn label_var_misuse_flagged() {
        let d = diags_for("select X from db.(^L)* X");
        assert!(codes(&d).contains(&"SSD005"), "{d:?}");
    }

    #[test]
    fn label_var_in_exists_flagged() {
        let d = diags_for("select M from db.Entry M where exists M.^L");
        assert!(codes(&d).contains(&"SSD005"), "{d:?}");
    }

    #[test]
    fn unbound_in_condition_and_exists() {
        let d = diags_for("select M from db.Entry M where Z = 1 or exists W.a");
        let unbound: Vec<_> = d
            .iter()
            .filter(|x| x.code == Code::UnboundVariable)
            .collect();
        assert_eq!(unbound.len(), 2, "{d:?}");
        assert!(unbound.iter().all(|x| x.span.is_some()));
    }

    /// The error set must coincide with `validate`'s rejection set, since
    /// the evaluator gates on analyzer errors where it used to call
    /// `validate`. (The full property-based version lives in the
    /// integration suite; these are the interesting hand-picked cases.)
    #[test]
    fn errors_iff_validate_rejects() {
        let cases = [
            "select T from db.Entry.Movie.Title T",
            "select X from db.a Y",
            "select M from db.Entry M, db.Movie M",
            "select X from db.(^L)* X",
            "select M from db.Entry M where Z = 1",
            "select M from T.a X, db.Entry M, M.b T",
            "select {^L: X} from db.Movie.^L X",
            "select M from db.Entry M where exists M.^L",
            "select M from db.Entry M, M.Title T",
        ];
        for src in cases {
            let (q, spans) = parse_query_spanned(src).unwrap();
            let diags = check_query_vars(&q, Some(&spans));
            assert_eq!(
                diags.has_errors(),
                q.validate().is_err(),
                "mismatch on {src:?}: {diags:?}"
            );
        }
    }
}
