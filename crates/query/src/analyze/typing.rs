//! Schema-aware path typing.
//!
//! Generalizes boolean schema pruning to an *inference*: running each
//! binding's RPE automaton in product with the schema graph
//! ([`ssd_schema::Pred::may_overlap`] composing NFA predicates with schema
//! edge predicates) yields, per binding variable, the set of schema nodes
//! it can denote and the set of edge predicates that can label the final
//! matched edge. An empty node set *certifies* emptiness on every
//! conforming database ([`Code::EmptyPath`], SSD010); the optimizer's
//! [`schema_allows`](crate::optimizer::schema_allows) is now a one-line
//! wrapper over this, and `ssd check --explain` prints the inference.

use crate::lang::{QuerySpans, SelectQuery, Source};
use crate::rpe::{Nfa, Rpe};
use ssd_diag::{Code, Diagnostic};
use ssd_schema::{Pred, Schema, SchemaNodeId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// What the analyzer knows about one binding variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BindingType {
    /// Schema nodes the variable can denote. Empty ⇒ the binding matches
    /// nothing in any database conforming to the schema.
    pub nodes: BTreeSet<SchemaNodeId>,
    /// Schema edge predicates that can label the final edge of a match,
    /// in discovery order. Empty when only the ε-match (nullable path
    /// landing on its seed) is possible.
    pub labels: Vec<Pred>,
}

/// Per-binding inference results, parallel to `SelectQuery::bindings`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathTypes {
    pub bindings: Vec<BindingType>,
}

impl PathTypes {
    /// Is binding `i` certified empty? (`false` for out-of-range.)
    pub fn provably_empty(&self, i: usize) -> bool {
        self.bindings.get(i).is_some_and(|b| b.nodes.is_empty())
    }

    /// Human-readable rendering of the inference, one line per binding —
    /// the payload of `ssd check --explain`.
    pub fn explain(&self, query: &SelectQuery) -> String {
        let mut out = String::new();
        for (i, (b, t)) in query.bindings.iter().zip(&self.bindings).enumerate() {
            let nodes = if t.nodes.is_empty() {
                "∅ (provably empty)".to_owned()
            } else {
                let shown: Vec<String> = t.nodes.iter().map(|n| n.to_string()).collect();
                format!("{{{}}}", shown.join(", "))
            };
            out.push_str(&format!("binding {i}: `{}` : {nodes}", b.var));
            if !t.labels.is_empty() {
                let labels: Vec<String> = t.labels.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!("; final-edge labels {{{}}}", labels.join(", ")));
            }
            out.push('\n');
        }
        out
    }
}

/// Product reachability of `path`'s NFA against the schema, starting the
/// schema side at `seeds`. Conservative in the same direction as schema
/// conformance: a node in the result *may* be reachable; an empty result
/// is a proof of emptiness.
pub fn reach(schema: &Schema, path: &Rpe, seeds: &BTreeSet<SchemaNodeId>) -> BindingType {
    let nfa = Nfa::compile(&path.simplify());
    let mut out = BindingType::default();
    let mut visited: HashSet<(usize, usize)> = HashSet::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &seed in seeds {
        for &q in nfa.closure(nfa.start()) {
            if q == nfa.accept() {
                out.nodes.insert(seed);
            }
            if visited.insert((seed.index(), q)) {
                stack.push((seed.index(), q));
            }
        }
    }
    while let Some((s_idx, q)) = stack.pop() {
        let s = SchemaNodeId::from_raw(s_idx);
        for edge in schema.edges(s) {
            for (pred, q2) in nfa.transitions_from(q) {
                if pred.may_overlap(&edge.pred) {
                    for &qc in nfa.closure(*q2) {
                        if qc == nfa.accept() {
                            out.nodes.insert(edge.to);
                            if !out.labels.contains(&edge.pred) {
                                out.labels.push(edge.pred.clone());
                            }
                        }
                        if visited.insert((edge.to.index(), qc)) {
                            stack.push((edge.to.index(), qc));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Infer schema-node sets for every binding, threading results through the
/// from-clause environment (`db` seeds at the schema root; a variable
/// source seeds at whatever its own binding inferred). Emits SSD010
/// warnings for bindings certified empty — suppressed when the *seed* set
/// is already empty, so one root cause doesn't cascade down the clause.
pub fn infer(
    query: &SelectQuery,
    schema: &Schema,
    spans: Option<&QuerySpans>,
) -> (PathTypes, Vec<Diagnostic>) {
    let mut types = PathTypes::default();
    let mut diags = Vec::new();
    let mut env: HashMap<&str, BTreeSet<SchemaNodeId>> = HashMap::new();
    for (i, b) in query.bindings.iter().enumerate() {
        let seeds = match &b.source {
            Source::Db => std::iter::once(schema.root()).collect(),
            Source::Var(v) => env.get(v.as_str()).cloned().unwrap_or_default(),
        };
        let t = reach(schema, &b.path, &seeds);
        if t.nodes.is_empty() && !seeds.is_empty() {
            diags.push(
                Diagnostic::new(
                    Code::EmptyPath,
                    format!(
                        "path `{}` matches nothing in the schema: binding `{}` is \
                         provably empty",
                        b.path, b.var
                    ),
                )
                .with_span_opt(spans.and_then(|s| s.path(i)))
                .with_suggestion(
                    "on every database conforming to this schema the query returns \
                     an empty result",
                ),
            );
        }
        env.insert(b.var.as_str(), t.nodes.clone());
        types.bindings.push(t);
    }
    (types, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query_spanned;
    use ssd_schema::figure1_schema;

    fn movie_schema() -> Schema {
        let mut s = Schema::new();
        let root = s.root();
        let entry = s.add_node();
        let movie = s.add_node();
        let strval = s.add_node();
        s.add_edge(root, Pred::Symbol("Entry".into()), entry);
        s.add_edge(entry, Pred::Symbol("Movie".into()), movie);
        s.add_edge(movie, Pred::Symbol("Title".into()), strval);
        s.add_edge(movie, Pred::Symbol("Cast".into()), movie);
        s
    }

    #[test]
    fn reach_follows_schema_edges() {
        let s = movie_schema();
        let seeds: BTreeSet<_> = std::iter::once(s.root()).collect();
        let t = reach(
            &s,
            &Rpe::seq(vec![Rpe::symbol("Entry"), Rpe::symbol("Movie")]),
            &seeds,
        );
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.labels, vec![Pred::Symbol("Movie".into())]);
    }

    #[test]
    fn reach_empty_for_impossible_path() {
        let s = movie_schema();
        let seeds: BTreeSet<_> = std::iter::once(s.root()).collect();
        let t = reach(&s, &Rpe::symbol("Director"), &seeds);
        assert!(t.nodes.is_empty());
        assert!(t.labels.is_empty());
    }

    #[test]
    fn nullable_path_keeps_seed() {
        let s = Schema::new();
        let seeds: BTreeSet<_> = std::iter::once(s.root()).collect();
        let t = reach(&s, &Rpe::symbol("x").star(), &seeds);
        assert_eq!(t.nodes.len(), 1);
        assert!(t.labels.is_empty(), "ε-match has no final edge");
    }

    #[test]
    fn infer_threads_environment() {
        let src = "select T from db.Entry.Movie M, M.Title T";
        let (q, spans) = parse_query_spanned(src).unwrap();
        let (types, diags) = infer(&q, &movie_schema(), Some(&spans));
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(types.bindings.len(), 2);
        assert!(!types.provably_empty(0));
        assert!(!types.provably_empty(1));
        assert_eq!(types.bindings[1].labels, vec![Pred::Symbol("Title".into())]);
    }

    #[test]
    fn infer_warns_on_empty_and_suppresses_cascade() {
        let src = "select T from db.Bogus M, M.Title T";
        let (q, spans) = parse_query_spanned(src).unwrap();
        let (types, diags) = infer(&q, &movie_schema(), Some(&spans));
        // Only the root cause warns; the downstream binding stays silent.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::EmptyPath);
        let span = diags[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "Bogus");
        assert!(types.provably_empty(0));
        assert!(types.provably_empty(1));
    }

    #[test]
    fn figure1_allows_deep_wildcards() {
        let src = "select X from db.%*.References X";
        let (q, spans) = parse_query_spanned(src).unwrap();
        let (types, diags) = infer(&q, &figure1_schema(), Some(&spans));
        assert!(diags.is_empty(), "{diags:?}");
        assert!(!types.provably_empty(0));
    }

    #[test]
    fn explain_mentions_bindings_and_labels() {
        let src = "select T from db.Entry.Movie M, M.Title T";
        let (q, spans) = parse_query_spanned(src).unwrap();
        let (types, _) = infer(&q, &movie_schema(), Some(&spans));
        let shown = types.explain(&q);
        assert!(shown.contains("binding 0: `M`"), "{shown}");
        assert!(shown.contains("final-edge labels"), "{shown}");
    }
}
