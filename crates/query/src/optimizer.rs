//! Query optimization (§4 and \[20\]).
//!
//! Three techniques, all benchmarked in E10/E12:
//!
//! 1. **Algebraic RPE simplification** — `(e*)* → e*` etc.
//!    ([`Rpe::simplify`], applied by [`optimize`]).
//! 2. **Selection pushdown** — conjuncts evaluated as soon as their
//!    variables are bound (`EvalOptions::pushdown`; the "extensions of
//!    existing techniques for optimization of object-oriented or
//!    relational query languages" of §4).
//! 3. **Schema/DataGuide pruning** (\[20\], §5) — before touching data,
//!    check the query's paths against a structural summary:
//!    * [`schema_allows`]: product reachability of the path automaton and
//!      a predicate-labeled [`Schema`] using conservative predicate
//!      intersection — a `false` proves the path matches nothing in any
//!      conforming database;
//!    * DataGuide probing is exact and lives in
//!      [`EvalOptions::guide`](crate::lang::EvalOptions).

use crate::analyze::typing;
use crate::lang::{EvalOptions, SelectQuery};
use crate::rpe::Rpe;
use ssd_schema::{DataGuide, Schema};
use std::collections::BTreeSet;

/// Report of what the optimizer did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OptReport {
    /// Binding indexes whose RPE changed under simplification.
    pub simplified: Vec<usize>,
    /// Binding indexes proven empty against the schema (query result is
    /// empty).
    pub schema_pruned: Vec<usize>,
}

/// Rewrite the query: simplify all binding RPEs; check db-rooted paths
/// against an optional schema. If any binding is schema-pruned the query
/// provably returns the empty tree on every conforming database.
pub fn optimize(query: &SelectQuery, schema: Option<&Schema>) -> (SelectQuery, OptReport) {
    let mut out = query.clone();
    let mut report = OptReport::default();
    for (i, b) in out.bindings.iter_mut().enumerate() {
        let simplified = b.path.simplify();
        if simplified != b.path {
            report.simplified.push(i);
            b.path = simplified;
        }
    }
    if let Some(s) = schema {
        // The analyzer's path-typing inference threads schema-node sets
        // through the from-clause environment, so (unlike the old
        // db-rooted-only check) a binding sourced from another variable is
        // also pruned when its inferred node set is empty.
        let (types, _) = typing::infer(&out, s, None);
        for (i, b) in out.bindings.iter().enumerate() {
            let sourced = match &b.source {
                crate::lang::Source::Db => true,
                crate::lang::Source::Var(v) => out.bindings[..i].iter().any(|p| &p.var == v),
            };
            if sourced && types.provably_empty(i) {
                report.schema_pruned.push(i);
            }
        }
    }
    (out, report)
}

/// Recommended evaluation options after optimization.
pub fn options_for<'a>(guide: Option<&'a DataGuide>) -> EvalOptions<'a> {
    EvalOptions::optimized(guide)
}

/// Could any path from the schema root satisfy `path`? Conservative:
/// `true` may be wrong (lost optimization), `false` is a proof of
/// emptiness for every database conforming to `schema`.
///
/// Boolean view of the analyzer's product-reachability inference
/// ([`crate::analyze::typing::reach`]): the path is allowed iff the set of
/// schema nodes it can reach from the root is non-empty. Label variables
/// are wildcards for this purpose.
pub fn schema_allows(schema: &Schema, path: &Rpe) -> bool {
    let seeds: BTreeSet<_> = std::iter::once(schema.root()).collect();
    !typing::reach(schema, path, &seeds).nodes.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;
    use ssd_schema::Pred;

    fn movie_schema() -> Schema {
        let mut s = Schema::new();
        let root = s.root();
        let entry = s.add_node();
        let movie = s.add_node();
        let strval = s.add_node();
        s.add_edge(root, Pred::Symbol("Entry".into()), entry);
        s.add_edge(entry, Pred::Symbol("Movie".into()), movie);
        s.add_edge(movie, Pred::Symbol("Title".into()), strval);
        s.add_edge(
            movie,
            Pred::Symbol("Cast".into()),
            movie, // cast loops back for nested structure
        );
        s.add_edge(strval, Pred::Kind(ssd_graph::LabelKind::Str), strval);
        s
    }

    #[test]
    fn schema_allows_valid_paths() {
        let s = movie_schema();
        let p = parse_query("select T from db.Entry.Movie.Title T")
            .unwrap()
            .bindings[0]
            .path
            .clone();
        assert!(schema_allows(&s, &p));
    }

    #[test]
    fn schema_refutes_impossible_paths() {
        let s = movie_schema();
        let p = parse_query("select T from db.Entry.Director T")
            .unwrap()
            .bindings[0]
            .path
            .clone();
        assert!(!schema_allows(&s, &p));
    }

    #[test]
    fn schema_allows_wildcards_and_stars() {
        let s = movie_schema();
        let star = parse_query("select T from db.%*.Title T").unwrap().bindings[0]
            .path
            .clone();
        assert!(schema_allows(&s, &star));
        let nowhere = parse_query("select T from db.%*.Nonexistent T")
            .unwrap()
            .bindings[0]
            .path
            .clone();
        assert!(!schema_allows(&s, &nowhere));
    }

    #[test]
    fn schema_allows_nullable_path_trivially() {
        let s = Schema::new();
        assert!(schema_allows(&s, &Rpe::symbol("x").star()));
        assert!(!schema_allows(&s, &Rpe::symbol("x")));
    }

    #[test]
    fn optimize_simplifies_and_prunes() {
        let q = parse_query("select T from db.Entry.Movie.Title.%** T").unwrap();
        let s = movie_schema();
        let (opt, report) = optimize(&q, Some(&s));
        assert_eq!(report.simplified, vec![0]);
        assert!(report.schema_pruned.is_empty());
        assert!(opt.bindings[0].path.to_string().len() <= q.bindings[0].path.to_string().len());

        let q2 = parse_query("select T from db.Bogus.Path T").unwrap();
        let (_, report2) = optimize(&q2, Some(&s));
        assert_eq!(report2.schema_pruned, vec![0]);
    }

    #[test]
    fn optimize_without_schema_only_simplifies() {
        let q = parse_query("select T from db.a?* T").unwrap();
        let (opt, report) = optimize(&q, None);
        assert_eq!(report.simplified, vec![0]);
        assert!(report.schema_pruned.is_empty());
        assert_eq!(opt.bindings[0].path.to_string(), "(a)*");
    }

    #[test]
    fn cyclic_schema_paths_allowed_to_any_depth() {
        let s = movie_schema();
        // Cast loops: Entry.Movie.Cast.Cast.Cast.Title is allowed.
        let q = parse_query("select T from db.Entry.Movie.Cast.Cast.Cast.Title T").unwrap();
        assert!(schema_allows(&s, &q.bindings[0].path));
    }
}
