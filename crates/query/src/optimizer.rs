//! Query optimization (§4 and \[20\]).
//!
//! Three techniques, all benchmarked in E10/E12:
//!
//! 1. **Algebraic RPE simplification** — `(e*)* → e*` etc.
//!    ([`Rpe::simplify`], applied by [`optimize`]).
//! 2. **Selection pushdown** — conjuncts evaluated as soon as their
//!    variables are bound (`EvalOptions::pushdown`; the "extensions of
//!    existing techniques for optimization of object-oriented or
//!    relational query languages" of §4).
//! 3. **Schema/DataGuide pruning** (\[20\], §5) — before touching data,
//!    check the query's paths against a structural summary:
//!    * [`schema_allows`]: product reachability of the path automaton and
//!      a predicate-labeled [`Schema`] using conservative predicate
//!      intersection — a `false` proves the path matches nothing in any
//!      conforming database;
//!    * DataGuide probing is exact and lives in
//!      [`EvalOptions::guide`](crate::lang::EvalOptions).
//! 4. **Cost-based join ordering** (ssd-cost) — [`optimize_with_stats`]
//!    reorders from-clause bindings by their statically estimated match
//!    cardinality (cheapest first, dependencies respected), and
//!    [`optimize_datalog`] does the same for positive body atoms of each
//!    datalog rule. Both record before/after [`CostEnvelope`]s so `ssd
//!    explain` and experiment E15 can show the predicted effect.

use crate::analyze::cost::{self, CostContext};
use crate::analyze::typing;
use crate::lang::{EvalOptions, SelectQuery, Source};
use crate::rpe::Rpe;
use ssd_guard::CostEnvelope;
use ssd_schema::{DataGuide, DataStats, Schema};
use ssd_trace::{FieldValue, Phase, Tracer};
use ssd_triples::datalog::{is_builtin, Program};
use std::collections::BTreeSet;

/// Report of what the optimizer did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OptReport {
    /// Binding indexes whose RPE changed under simplification.
    pub simplified: Vec<usize>,
    /// Binding indexes proven empty against the schema (query result is
    /// empty).
    pub schema_pruned: Vec<usize>,
    /// Cost-based reorder: for queries, the original binding indexes in
    /// their new order; for datalog, the indexes of rules whose body was
    /// reordered. Empty when nothing moved.
    pub reordered: Vec<usize>,
    /// Estimated envelope of the input (set by the cost-based passes).
    pub before: Option<CostEnvelope>,
    /// Estimated envelope of the optimized output.
    pub after: Option<CostEnvelope>,
}

/// Rewrite the query: simplify all binding RPEs; check db-rooted paths
/// against an optional schema. If any binding is schema-pruned the query
/// provably returns the empty tree on every conforming database.
pub fn optimize(query: &SelectQuery, schema: Option<&Schema>) -> (SelectQuery, OptReport) {
    let mut out = query.clone();
    let mut report = OptReport::default();
    for (i, b) in out.bindings.iter_mut().enumerate() {
        let simplified = b.path.simplify();
        if simplified != b.path {
            report.simplified.push(i);
            b.path = simplified;
        }
    }
    if let Some(s) = schema {
        // The analyzer's path-typing inference threads schema-node sets
        // through the from-clause environment, so (unlike the old
        // db-rooted-only check) a binding sourced from another variable is
        // also pruned when its inferred node set is empty.
        let (types, _) = typing::infer(&out, s, None);
        for (i, b) in out.bindings.iter().enumerate() {
            let sourced = match &b.source {
                crate::lang::Source::Db => true,
                crate::lang::Source::Var(v) => out.bindings[..i].iter().any(|p| &p.var == v),
            };
            if sourced && types.provably_empty(i) {
                report.schema_pruned.push(i);
            }
        }
    }
    (out, report)
}

/// Cost-based optimization: everything [`optimize`] does, plus greedy
/// reordering of from-clause bindings by estimated match cardinality.
/// A binding only moves ahead of another when no dependency (variable
/// source, shared label variable) forces their relative order, and the
/// reorder is kept only when the estimated fuel bound actually improves —
/// with ties broken toward the original order, the pass can never pick a
/// plan the estimator considers worse than the input.
pub fn optimize_with_stats(
    query: &SelectQuery,
    schema: Option<&Schema>,
    stats: Option<&DataStats>,
) -> (SelectQuery, OptReport) {
    let (mut out, mut report) = optimize(query, schema);
    let ctx = CostContext { stats, schema };
    let before = cost::analyze_query_cost(&out, None, &ctx);
    report.before = Some(before.envelope);
    report.after = Some(before.envelope);

    let k = out.bindings.len();
    if k >= 2 {
        let order = greedy_order(&out, &before.per_binding);
        if order.iter().enumerate().any(|(pos, &i)| pos != i) {
            let candidate = SelectQuery {
                bindings: order.iter().map(|&i| out.bindings[i].clone()).collect(),
                ..out.clone()
            };
            let after = cost::analyze_query_cost(&candidate, None, &ctx);
            if after.envelope.fuel.hi < before.envelope.fuel.hi {
                report.reordered = order;
                report.after = Some(after.envelope);
                out = candidate;
            }
        }
    }
    (out, report)
}

/// Dependency-respecting greedy order: repeatedly take the cheapest
/// binding (by match upper bound, then lower bound, then original index)
/// among those whose prerequisites are already placed.
fn greedy_order(query: &SelectQuery, matches: &[ssd_guard::Interval]) -> Vec<usize> {
    let k = query.bindings.len();
    // deps[i] = binding indexes that must be placed before i: the binder
    // of a variable source, and any earlier binding sharing a label
    // variable (the first occurrence binds, later ones constrain).
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, b) in query.bindings.iter().enumerate() {
        if let Source::Var(v) = &b.source {
            if let Some(j) = query.bindings[..i].iter().position(|p| &p.var == v) {
                deps[i].push(j);
            }
        }
        let lvs: BTreeSet<&str> = b.path.label_vars().into_iter().collect();
        for (j, p) in query.bindings[..i].iter().enumerate() {
            if p.path.label_vars().iter().any(|lv| lvs.contains(lv)) {
                deps[i].push(j);
            }
        }
    }
    let mut placed = vec![false; k];
    let mut order = Vec::with_capacity(k);
    while order.len() < k {
        let next = (0..k)
            .filter(|&i| !placed[i] && deps[i].iter().all(|&j| placed[j]))
            .min_by_key(|&i| {
                let m = matches.get(i).copied().unwrap_or_default();
                (m.hi, m.lo, i)
            });
        match next {
            Some(i) => {
                placed[i] = true;
                order.push(i);
            }
            // Unreachable for well-formed dependency graphs (deps always
            // point at earlier indexes), but never loop forever.
            None => {
                for (i, p) in placed.iter_mut().enumerate() {
                    if !*p {
                        *p = true;
                        order.push(i);
                    }
                }
            }
        }
    }
    order
}

/// Cost-based datalog optimization: within each rule, evaluate small
/// relations first. Positive non-builtin atoms are stable-sorted by their
/// static size bound; each builtin or negated literal then re-attaches at
/// the earliest point where every variable it mentions is bound by a
/// preceding positive literal (they are pure filters, so evaluating them
/// with the same variables bound yields the same result in any position).
pub fn optimize_datalog(program: &Program, stats: Option<&DataStats>) -> (Program, OptReport) {
    let mut out = program.clone();
    let mut report = OptReport::default();
    let ctx = CostContext {
        stats,
        schema: None,
    };
    let bounds = cost::datalog::RelBounds::new(program, &ctx);
    report.before = Some(cost::analyze_datalog_cost(program, None, None, &ctx).envelope);
    for (ri, rule) in out.rules.iter_mut().enumerate() {
        let mut positives: Vec<_> = rule
            .body
            .iter()
            .filter(|l| l.positive && !is_builtin(l.atom.pred.as_str()))
            .cloned()
            .collect();
        positives.sort_by_key(|l| bounds.hi(l.atom.pred.as_str()));
        let filters: Vec<_> = rule
            .body
            .iter()
            .filter(|l| !l.positive || is_builtin(l.atom.pred.as_str()))
            .cloned()
            .collect();
        let mut body = positives;
        for f in filters {
            let needed: BTreeSet<&str> = f.atom.vars().collect();
            let mut bound: BTreeSet<&str> = BTreeSet::new();
            let mut at = body.len();
            for (i, l) in body.iter().enumerate() {
                if l.positive && !is_builtin(l.atom.pred.as_str()) {
                    bound.extend(l.atom.vars());
                }
                if needed.iter().all(|v| bound.contains(v)) {
                    at = i + 1;
                    break;
                }
            }
            body.insert(at, f);
        }
        if body != rule.body {
            rule.body = body;
            report.reordered.push(ri);
        }
    }
    report.after = Some(cost::analyze_datalog_cost(&out, None, None, &ctx).envelope);
    (out, report)
}

/// Recommended evaluation options after optimization.
pub fn options_for<'a>(guide: Option<&'a DataGuide>) -> EvalOptions<'a> {
    EvalOptions::optimized(guide)
}

/// Emit the decisions recorded in `report` as [`Phase::Optimize`] instant
/// events: one per simplified and per schema-pruned binding, and one
/// reorder event carrying the estimated fuel upper bound before/after when
/// a cost-based reorder was kept.
pub fn trace_report(tracer: Option<&Tracer>, report: &OptReport) {
    let Some(t) = tracer else { return };
    for &i in &report.simplified {
        t.instant(Phase::Optimize, "opt.simplify", vec![("binding", i.into())]);
    }
    for &i in &report.schema_pruned {
        t.instant(
            Phase::Optimize,
            "opt.schema_prune",
            vec![("binding", i.into())],
        );
    }
    if !report.reordered.is_empty() {
        let mut fields: Vec<(&'static str, FieldValue)> =
            vec![("moved", report.reordered.len().into())];
        if let Some(b) = &report.before {
            fields.push(("fuel_hi_before", b.fuel.hi.to_string().into()));
        }
        if let Some(a) = &report.after {
            fields.push(("fuel_hi_after", a.fuel.hi.to_string().into()));
        }
        t.instant(Phase::Optimize, "opt.reorder", fields);
    }
}

/// [`optimize_with_stats`] wrapped in a [`Phase::Optimize`] span, with the
/// report's decisions emitted as instant events ([`trace_report`]).
pub fn optimize_with_stats_traced(
    query: &SelectQuery,
    schema: Option<&Schema>,
    stats: Option<&DataStats>,
    tracer: Option<&Tracer>,
) -> (SelectQuery, OptReport) {
    let _sp = ssd_trace::span(tracer, Phase::Optimize, "optimize", None);
    let (out, report) = optimize_with_stats(query, schema, stats);
    trace_report(tracer, &report);
    (out, report)
}

/// [`optimize_datalog`] wrapped in a [`Phase::Optimize`] span, with the
/// report's decisions emitted as instant events ([`trace_report`]).
pub fn optimize_datalog_traced(
    program: &Program,
    stats: Option<&DataStats>,
    tracer: Option<&Tracer>,
) -> (Program, OptReport) {
    let _sp = ssd_trace::span(tracer, Phase::Optimize, "optimize.datalog", None);
    let (out, report) = optimize_datalog(program, stats);
    trace_report(tracer, &report);
    (out, report)
}

/// Could any path from the schema root satisfy `path`? Conservative:
/// `true` may be wrong (lost optimization), `false` is a proof of
/// emptiness for every database conforming to `schema`.
///
/// Boolean view of the analyzer's product-reachability inference
/// ([`crate::analyze::typing::reach`]): the path is allowed iff the set of
/// schema nodes it can reach from the root is non-empty. Label variables
/// are wildcards for this purpose.
pub fn schema_allows(schema: &Schema, path: &Rpe) -> bool {
    let seeds: BTreeSet<_> = std::iter::once(schema.root()).collect();
    !typing::reach(schema, path, &seeds).nodes.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;
    use ssd_schema::Pred;

    fn movie_schema() -> Schema {
        let mut s = Schema::new();
        let root = s.root();
        let entry = s.add_node();
        let movie = s.add_node();
        let strval = s.add_node();
        s.add_edge(root, Pred::Symbol("Entry".into()), entry);
        s.add_edge(entry, Pred::Symbol("Movie".into()), movie);
        s.add_edge(movie, Pred::Symbol("Title".into()), strval);
        s.add_edge(
            movie,
            Pred::Symbol("Cast".into()),
            movie, // cast loops back for nested structure
        );
        s.add_edge(strval, Pred::Kind(ssd_graph::LabelKind::Str), strval);
        s
    }

    #[test]
    fn schema_allows_valid_paths() {
        let s = movie_schema();
        let p = parse_query("select T from db.Entry.Movie.Title T")
            .unwrap()
            .bindings[0]
            .path
            .clone();
        assert!(schema_allows(&s, &p));
    }

    #[test]
    fn schema_refutes_impossible_paths() {
        let s = movie_schema();
        let p = parse_query("select T from db.Entry.Director T")
            .unwrap()
            .bindings[0]
            .path
            .clone();
        assert!(!schema_allows(&s, &p));
    }

    #[test]
    fn schema_allows_wildcards_and_stars() {
        let s = movie_schema();
        let star = parse_query("select T from db.%*.Title T").unwrap().bindings[0]
            .path
            .clone();
        assert!(schema_allows(&s, &star));
        let nowhere = parse_query("select T from db.%*.Nonexistent T")
            .unwrap()
            .bindings[0]
            .path
            .clone();
        assert!(!schema_allows(&s, &nowhere));
    }

    #[test]
    fn schema_allows_nullable_path_trivially() {
        let s = Schema::new();
        assert!(schema_allows(&s, &Rpe::symbol("x").star()));
        assert!(!schema_allows(&s, &Rpe::symbol("x")));
    }

    #[test]
    fn optimize_simplifies_and_prunes() {
        let q = parse_query("select T from db.Entry.Movie.Title.%** T").unwrap();
        let s = movie_schema();
        let (opt, report) = optimize(&q, Some(&s));
        assert_eq!(report.simplified, vec![0]);
        assert!(report.schema_pruned.is_empty());
        assert!(opt.bindings[0].path.to_string().len() <= q.bindings[0].path.to_string().len());

        let q2 = parse_query("select T from db.Bogus.Path T").unwrap();
        let (_, report2) = optimize(&q2, Some(&s));
        assert_eq!(report2.schema_pruned, vec![0]);
    }

    #[test]
    fn optimize_without_schema_only_simplifies() {
        let q = parse_query("select T from db.a?* T").unwrap();
        let (opt, report) = optimize(&q, None);
        assert_eq!(report.simplified, vec![0]);
        assert!(report.schema_pruned.is_empty());
        assert_eq!(opt.bindings[0].path.to_string(), "(a)*");
    }

    #[test]
    fn cost_reorder_moves_cheap_binding_first_and_preserves_results() {
        use ssd_graph::bisim::graphs_bisimilar;
        use ssd_graph::literal::parse_graph;
        use ssd_schema::figure1_schema;

        let g = parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                               Cast: {Actors: "Bogart", Actress: "Bergman"}}},
                Entry: {Movie: {Title: "Sam", Cast: {Actors: "Allen"}}}}"#,
        )
        .unwrap();
        let schema = figure1_schema();
        let stats = DataStats::collect_with_schema(&g, &schema);
        // `X` ranges over every node, `T` over the two entries: cheapest
        // first means `T` moves ahead of `X`.
        let q = crate::lang::parse_query("select {x: X, t: T} from db.%* X, db.Entry T").unwrap();
        let (opt, report) = optimize_with_stats(&q, Some(&schema), Some(&stats));
        assert_eq!(report.reordered, vec![1, 0], "{report:?}");
        assert_eq!(opt.bindings[0].var, "T");
        let (before, after) = (report.before.unwrap(), report.after.unwrap());
        assert!(after.fuel.hi < before.fuel.hi, "{report:?}");
        // Same results either way (the enumeration is a join).
        let opts = EvalOptions::default();
        let (base, _) = crate::lang::evaluate_select(&g, &q, &opts).unwrap();
        let (reord, _) = crate::lang::evaluate_select(&g, &opt, &opts).unwrap();
        assert!(graphs_bisimilar(&base, &reord));
    }

    #[test]
    fn cost_reorder_respects_dependencies() {
        use ssd_graph::literal::parse_graph;
        use ssd_schema::figure1_schema;

        let g = parse_graph(r#"{Entry: {Movie: {Title: "Casablanca"}}}"#).unwrap();
        let schema = figure1_schema();
        let stats = DataStats::collect_with_schema(&g, &schema);
        // `T` sources from `M`: it can never be enumerated first, however
        // cheap it looks.
        let q = crate::lang::parse_query("select T from db.Entry.Movie M, M.Title T").unwrap();
        let (opt, report) = optimize_with_stats(&q, Some(&schema), Some(&stats));
        assert!(report.reordered.is_empty(), "{report:?}");
        assert_eq!(opt.bindings[0].var, "M");
        assert!(report.before.is_some() && report.after.is_some());
    }

    #[test]
    fn datalog_reorder_scans_small_relations_first() {
        use ssd_graph::literal::parse_graph;
        use ssd_triples::datalog::{evaluate, parse_program};
        use ssd_triples::TripleStore;

        let g = parse_graph("{a: {b: 1}, c: {b: 2}}").unwrap();
        let stats = DataStats::collect(&g);
        let p = parse_program(
            "hit(X) :- edge(A, _L, X), root(A).\n\
             far(X) :- edge(A, _L, M), root(A), edge(M, _K, X), not hit(X).",
            g.symbols(),
        )
        .unwrap();
        let (opt, report) = optimize_datalog(&p, Some(&stats));
        // `root/1` (one tuple) moves ahead of `edge/3` in both rules.
        assert_eq!(report.reordered, vec![0, 1], "{report:?}");
        assert_eq!(opt.rules[0].body[0].atom.pred, "root");
        // The negated filter still follows the literal binding `X`.
        let far = &opt.rules[1].body;
        let neg_at = far.iter().position(|l| !l.positive).unwrap();
        assert!(
            far[..neg_at]
                .iter()
                .any(|l| l.positive && l.atom.vars().any(|v| v == "X")),
            "{far:?}"
        );
        // Same derived tuples.
        let store = TripleStore::from_graph(&g);
        let base = evaluate(&p, &store).unwrap();
        let reord = evaluate(&opt, &store).unwrap();
        for pred in ["hit", "far"] {
            let a: std::collections::BTreeSet<_> = base.tuples(pred).collect();
            let b: std::collections::BTreeSet<_> = reord.tuples(pred).collect();
            assert_eq!(a, b, "{pred}");
        }
        assert!(report.before.unwrap().fuel.is_bounded());
        assert!(report.after.unwrap().fuel.is_bounded());
    }

    #[test]
    fn cyclic_schema_paths_allowed_to_any_depth() {
        let s = movie_schema();
        // Cast loops: Entry.Movie.Cast.Cast.Cast.Title is allowed.
        let q = parse_query("select T from db.Entry.Movie.Cast.Cast.Cast.Title T").unwrap();
        assert!(schema_allows(&s, &q.bindings[0].path));
    }
}
