//! The relational fragment (§3).
//!
//! "A property of this algebra is that, when restricted to input and
//! output data that conform to a relational (nested relational) schema, it
//! expresses exactly the relational (nested relational) algebra. Hence an
//! SQL-like language is a natural fragment of UnQL."
//!
//! This module makes the claim executable: relations are graph-encoded
//! (\[10\]-style, `{R: {tup: {A: a, B: b}, ...}}`), the SPJRU operators are
//! implemented *by compiling to the surface select-from-where language*
//! and running the graph query engine, and the results are decoded and
//! cross-checked against a native row-set evaluator (the oracle). The one
//! deliberate gap: set *difference* needs a correlated negated subquery,
//! which the positive select fragment cannot express — it is provided
//! natively and flagged ([`difference_native`]), mirroring the classical
//! SPJRU vs full-algebra boundary.

use crate::lang::{evaluate_select, parse_query, EvalOptions};
use ssd_graph::encode::relational::{decode_relation, encode_style10, NamedRelation};
use ssd_graph::{Graph, Value};
use std::collections::BTreeSet;

/// Errors from the fragment compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    UnknownColumn(String),
    SchemaMismatch,
    Query(String),
    Decode(String),
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            FragmentError::SchemaMismatch => write!(f, "relation schemas do not match"),
            FragmentError::Query(m) => write!(f, "query error: {m}"),
            FragmentError::Decode(m) => write!(f, "decode error: {m}"),
        }
    }
}

impl std::error::Error for FragmentError {}

/// Encode one or two relations into a fresh database graph.
pub fn database_of(relations: &[NamedRelation]) -> Graph {
    let mut g = Graph::new();
    encode_style10(&mut g, relations);
    g
}

fn run_query(
    g: &Graph,
    text: &str,
    out_name: &str,
    columns: &[&str],
) -> Result<NamedRelation, FragmentError> {
    let q = parse_query(text).map_err(|e| FragmentError::Query(e.to_string()))?;
    let (result, _) =
        evaluate_select(g, &q, &EvalOptions::default()).map_err(FragmentError::Query)?;
    // The query emits one `tup` edge per result tuple at the result root.
    let mut rel = NamedRelation::new(out_name, columns);
    for tup in result.successors_by_name(result.root(), "tup") {
        let mut row = Vec::with_capacity(columns.len());
        for col in columns {
            let attrs = result.successors_by_name(tup, col);
            let attr = attrs
                .first()
                .ok_or_else(|| FragmentError::Decode(format!("tuple missing attribute {col}")))?;
            let v = result
                .atomic_value(*attr)
                .ok_or_else(|| FragmentError::Decode(format!("attribute {col} is not atomic")))?;
            row.push(v.clone());
        }
        rel.push(row);
    }
    let set = rel.row_set();
    rel.rows = set.into_iter().collect();
    Ok(rel)
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Int(i) => i.to_string(),
        Value::Real(r) => format!("{r}"),
        Value::Bool(b) => b.to_string(),
    }
}

/// σ — selection `col = v`, compiled to the surface language.
pub fn select_eq(
    g: &Graph,
    rel: &NamedRelation,
    col: &str,
    v: &Value,
) -> Result<NamedRelation, FragmentError> {
    if !rel.columns.iter().any(|c| c == col) {
        return Err(FragmentError::UnknownColumn(col.to_owned()));
    }
    let text = format!(
        "select {{tup: T}} from db.{rel_name}.tup T, T.{col} V where V = {lit}",
        rel_name = rel.name,
        col = col,
        lit = value_literal(v)
    );
    let cols: Vec<&str> = rel.columns.iter().map(String::as_str).collect();
    run_query(g, &text, &rel.name, &cols)
}

/// π — projection onto `keep`, compiled to the surface language.
pub fn project(
    g: &Graph,
    rel: &NamedRelation,
    keep: &[&str],
) -> Result<NamedRelation, FragmentError> {
    for c in keep {
        if !rel.columns.iter().any(|rc| rc == c) {
            return Err(FragmentError::UnknownColumn((*c).to_owned()));
        }
    }
    let mut bindings = format!("db.{}.tup T", rel.name);
    let mut construct_fields = Vec::new();
    for (i, c) in keep.iter().enumerate() {
        bindings.push_str(&format!(", T.{c} V{i}"));
        construct_fields.push(format!("{c}: V{i}"));
    }
    let text = format!(
        "select {{tup: {{{fields}}}}} from {bindings}",
        fields = construct_fields.join(", "),
        bindings = bindings
    );
    run_query(g, &text, &rel.name, keep)
}

/// ⋈ — equijoin of two encoded relations on `left_col = right_col`,
/// compiled to the surface language. Output columns: all of `left` then
/// the non-join columns of `right`.
pub fn join(
    g: &Graph,
    left: &NamedRelation,
    right: &NamedRelation,
    left_col: &str,
    right_col: &str,
) -> Result<NamedRelation, FragmentError> {
    if !left.columns.iter().any(|c| c == left_col) {
        return Err(FragmentError::UnknownColumn(left_col.to_owned()));
    }
    if !right.columns.iter().any(|c| c == right_col) {
        return Err(FragmentError::UnknownColumn(right_col.to_owned()));
    }
    let mut bindings = format!("db.{}.tup T1, db.{}.tup T2", left.name, right.name);
    let mut fields = Vec::new();
    let mut out_cols: Vec<String> = Vec::new();
    for (i, c) in left.columns.iter().enumerate() {
        bindings.push_str(&format!(", T1.{c} L{i}"));
        fields.push(format!("{c}: L{i}"));
        out_cols.push(c.clone());
    }
    for (i, c) in right.columns.iter().enumerate() {
        if c == right_col {
            continue;
        }
        // Disambiguate duplicated column names.
        let out_name = if out_cols.contains(c) {
            format!("{}_{}", right.name, c)
        } else {
            c.clone()
        };
        bindings.push_str(&format!(", T2.{c} R{i}"));
        fields.push(format!("{out_name}: R{i}"));
        out_cols.push(out_name);
    }
    bindings.push_str(&format!(", T2.{right_col} RJ"));
    let left_join_var = left
        .columns
        .iter()
        .position(|c| c == left_col)
        .ok_or_else(|| FragmentError::UnknownColumn(left_col.to_owned()))?;
    let text = format!(
        "select {{tup: {{{fields}}}}} from {bindings} where L{lj} = RJ",
        fields = fields.join(", "),
        bindings = bindings,
        lj = left_join_var
    );
    let cols: Vec<&str> = out_cols.iter().map(String::as_str).collect();
    let mut out = run_query(g, &text, "joined", &cols)?;
    out.name = "joined".to_owned();
    Ok(out)
}

/// ∪ — union of two same-schema relations, via graph union of their
/// encodings.
pub fn union(left: &NamedRelation, right: &NamedRelation) -> Result<NamedRelation, FragmentError> {
    if left.columns != right.columns {
        return Err(FragmentError::SchemaMismatch);
    }
    let mut merged = NamedRelation::new(
        &left.name,
        &left.columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for row in left.rows.iter().chain(right.rows.iter()) {
        merged.push(row.clone());
    }
    // Round-trip through the graph encoding to stay inside the model.
    let g = database_of(&[merged]);
    let cols: Vec<&str> = left.columns.iter().map(String::as_str).collect();
    decode_relation(&g, &left.name, &cols).map_err(|e| FragmentError::Decode(e.to_string()))
}

/// − — set difference. **Not expressible** in the positive select
/// fragment (it needs a correlated negated subquery), so this operator is
/// implemented natively on decoded rows; its presence marks the boundary
/// the paper draws between the select fragment and full UnQL.
pub fn difference_native(
    left: &NamedRelation,
    right: &NamedRelation,
) -> Result<NamedRelation, FragmentError> {
    if left.columns != right.columns {
        return Err(FragmentError::SchemaMismatch);
    }
    let rset = right.row_set();
    let mut out = NamedRelation::new(
        &left.name,
        &left.columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for row in &left.row_set() {
        if !rset.contains(row) {
            out.push(row.clone());
        }
    }
    Ok(out)
}

// --- Native row-set oracle ------------------------------------------------

/// Oracle: σ on rows.
pub fn native_select_eq(rel: &NamedRelation, col: &str, v: &Value) -> NamedRelation {
    let mut out = NamedRelation::new(
        &rel.name,
        &rel.columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    // An unknown column selects nothing rather than panicking.
    let Some(i) = rel.columns.iter().position(|c| c == col) else {
        return out;
    };
    for row in &rel.row_set() {
        if &row[i] == v {
            out.push(row.clone());
        }
    }
    out
}

/// Oracle: π on rows. Unknown columns are ignored.
pub fn native_project(rel: &NamedRelation, keep: &[&str]) -> NamedRelation {
    let idx: Vec<usize> = keep
        .iter()
        .filter_map(|c| rel.columns.iter().position(|rc| rc == c))
        .collect();
    let mut out = NamedRelation::new(&rel.name, keep);
    let mut seen = BTreeSet::new();
    for row in &rel.row_set() {
        let proj: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
        if seen.insert(proj.clone()) {
            out.push(proj);
        }
    }
    out
}

/// Oracle: equijoin on rows (same output convention as [`join`]).
pub fn native_join(
    left: &NamedRelation,
    right: &NamedRelation,
    left_col: &str,
    right_col: &str,
) -> NamedRelation {
    // Unknown join columns produce an empty join rather than panicking.
    let cols = (
        left.columns.iter().position(|c| c == left_col),
        right.columns.iter().position(|c| c == right_col),
    );
    let (li, ri) = match cols {
        (Some(li), Some(ri)) => (li, ri),
        _ => (0, 0),
    };
    let mut out_cols: Vec<String> = left.columns.clone();
    for (i, c) in right.columns.iter().enumerate() {
        if i == ri {
            continue;
        }
        if out_cols.contains(c) {
            out_cols.push(format!("{}_{}", right.name, c));
        } else {
            out_cols.push(c.clone());
        }
    }
    let mut out = NamedRelation::new(
        "joined",
        &out_cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    if matches!(cols, (None, _) | (_, None)) {
        return out;
    }
    for l in &left.row_set() {
        for r in &right.row_set() {
            if l[li] == r[ri] {
                let mut row = l.clone();
                for (i, v) in r.iter().enumerate() {
                    if i != ri {
                        row.push(v.clone());
                    }
                }
                out.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movies() -> NamedRelation {
        let mut r = NamedRelation::new("movie", &["title", "year", "director"]);
        r.push(vec!["Casablanca".into(), 1942i64.into(), "Curtiz".into()]);
        r.push(vec![
            "Play it again, Sam".into(),
            1972i64.into(),
            "Ross".into(),
        ]);
        r.push(vec!["Annie Hall".into(), 1977i64.into(), "Allen".into()]);
        r
    }

    fn directors() -> NamedRelation {
        let mut r = NamedRelation::new("director", &["name", "born"]);
        r.push(vec!["Curtiz".into(), 1886i64.into()]);
        r.push(vec!["Allen".into(), 1935i64.into()]);
        r
    }

    #[test]
    fn select_eq_matches_oracle() {
        let rel = movies();
        let g = database_of(std::slice::from_ref(&rel));
        let via_graph = select_eq(&g, &rel, "year", &Value::Int(1942)).unwrap();
        let oracle = native_select_eq(&rel, "year", &Value::Int(1942));
        assert_eq!(via_graph.row_set(), oracle.row_set());
        assert_eq!(via_graph.rows.len(), 1);
    }

    #[test]
    fn select_eq_string() {
        let rel = movies();
        let g = database_of(std::slice::from_ref(&rel));
        let via_graph = select_eq(&g, &rel, "director", &Value::Str("Allen".into())).unwrap();
        assert_eq!(
            via_graph.row_set(),
            native_select_eq(&rel, "director", &Value::Str("Allen".into())).row_set()
        );
    }

    #[test]
    fn select_eq_empty_result() {
        let rel = movies();
        let g = database_of(std::slice::from_ref(&rel));
        let via_graph = select_eq(&g, &rel, "year", &Value::Int(2024)).unwrap();
        assert!(via_graph.rows.is_empty());
    }

    #[test]
    fn project_matches_oracle_and_dedupes() {
        let mut rel = NamedRelation::new("r", &["a", "b"]);
        rel.push(vec![1i64.into(), 10i64.into()]);
        rel.push(vec![1i64.into(), 20i64.into()]);
        rel.push(vec![2i64.into(), 30i64.into()]);
        let g = database_of(std::slice::from_ref(&rel));
        let via_graph = project(&g, &rel, &["a"]).unwrap();
        let oracle = native_project(&rel, &["a"]);
        assert_eq!(via_graph.row_set(), oracle.row_set());
        assert_eq!(via_graph.rows.len(), 2, "projection must dedupe");
    }

    #[test]
    fn project_reorders_columns() {
        let rel = movies();
        let g = database_of(std::slice::from_ref(&rel));
        let via_graph = project(&g, &rel, &["director", "title"]).unwrap();
        let oracle = native_project(&rel, &["director", "title"]);
        assert_eq!(via_graph.row_set(), oracle.row_set());
    }

    #[test]
    fn join_matches_oracle() {
        let m = movies();
        let d = directors();
        let g = database_of(&[m.clone(), d.clone()]);
        let via_graph = join(&g, &m, &d, "director", "name").unwrap();
        let oracle = native_join(&m, &d, "director", "name");
        assert_eq!(via_graph.row_set(), oracle.row_set());
        // Curtiz and Allen match; Ross does not.
        assert_eq!(via_graph.rows.len(), 2);
        assert_eq!(via_graph.columns.len(), 4); // title, year, director, born
    }

    #[test]
    fn union_and_difference() {
        let mut a = NamedRelation::new("r", &["x"]);
        a.push(vec![1i64.into()]);
        a.push(vec![2i64.into()]);
        let mut b = NamedRelation::new("r", &["x"]);
        b.push(vec![2i64.into()]);
        b.push(vec![3i64.into()]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.rows.len(), 3);
        let d = difference_native(&a, &b).unwrap();
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0][0], Value::Int(1));
    }

    #[test]
    fn union_schema_mismatch() {
        let a = NamedRelation::new("r", &["x"]);
        let b = NamedRelation::new("r", &["y"]);
        assert_eq!(union(&a, &b), Err(FragmentError::SchemaMismatch));
    }

    #[test]
    fn unknown_column_errors() {
        let rel = movies();
        let g = database_of(std::slice::from_ref(&rel));
        assert!(matches!(
            select_eq(&g, &rel, "bogus", &Value::Int(0)),
            Err(FragmentError::UnknownColumn(_))
        ));
        assert!(matches!(
            project(&g, &rel, &["bogus"]),
            Err(FragmentError::UnknownColumn(_))
        ));
    }

    #[test]
    fn composed_pipeline_select_then_project() {
        // π_title(σ_year<1975(movie)) — composition through re-encoding.
        let rel = movies();
        let g = database_of(std::slice::from_ref(&rel));
        let selected = select_eq(&g, &rel, "year", &Value::Int(1942)).unwrap();
        let g2 = database_of(std::slice::from_ref(&selected));
        let projected = project(&g2, &selected, &["title"]).unwrap();
        assert_eq!(projected.rows.len(), 1);
        assert_eq!(projected.rows[0][0], Value::Str("Casablanca".into()));
    }
}

// ---------------------------------------------------------------------------
// The *nested* relational extension (§3: "it expresses exactly the
// relational (nested relational) algebra"). `nest` groups tuples by the
// remaining columns, folding the nested column's values into a set
// subtree; `unnest` inverts it. Both operate on the graph encoding
// directly — nested values are exactly where the semistructured model
// outshines flat relations.

/// ν — nest: group by all columns except `nested_col`; each group becomes
/// one tuple whose `nested_col` child is a *set node* carrying one
/// value edge per grouped value.
pub fn nest(g: &Graph, rel: &NamedRelation, nested_col: &str) -> Result<Graph, FragmentError> {
    if !rel.columns.iter().any(|c| c == nested_col) {
        return Err(FragmentError::UnknownColumn(nested_col.to_owned()));
    }
    // Read the tuples back off the graph (we stay inside the model), then
    // rebuild the nested encoding.
    let decoded = decode_relation(
        g,
        &rel.name,
        &rel.columns.iter().map(String::as_str).collect::<Vec<_>>(),
    )
    .map_err(|e| FragmentError::Decode(e.to_string()))?;
    let ni = rel
        .columns
        .iter()
        .position(|c| c == nested_col)
        .expect("checked");
    let mut groups: std::collections::BTreeMap<Vec<Value>, BTreeSet<Value>> =
        std::collections::BTreeMap::new();
    for row in &decoded.rows {
        let mut key = row.clone();
        let v = key.remove(ni);
        groups.entry(key).or_default().insert(v);
    }
    let mut out = Graph::with_symbols(g.symbols_handle());
    let rel_node = out.add_node();
    let root = out.root();
    out.add_sym_edge(root, &rel.name, rel_node);
    for (key, vals) in groups {
        let tup = out.add_node();
        out.add_sym_edge(rel_node, "tup", tup);
        let mut ki = 0usize;
        for (ci, col) in rel.columns.iter().enumerate() {
            if ci == ni {
                let set = out.add_node();
                out.add_sym_edge(tup, col, set);
                for v in &vals {
                    out.add_value_edge(set, v.clone());
                }
            } else {
                out.add_attr(tup, col, key[ki].clone());
                ki += 1;
            }
        }
    }
    Ok(out)
}

/// μ — unnest: invert [`nest`], flattening the set under `nested_col`
/// back into one tuple per element. Returns the flat relation.
pub fn unnest(
    g: &Graph,
    name: &str,
    columns: &[&str],
    nested_col: &str,
) -> Result<NamedRelation, FragmentError> {
    if !columns.contains(&nested_col) {
        return Err(FragmentError::UnknownColumn(nested_col.to_owned()));
    }
    let rel_nodes = g.successors_by_name(g.root(), name);
    let rel_node = rel_nodes
        .first()
        .ok_or_else(|| FragmentError::Decode(format!("relation {name} not found")))?;
    let mut out = NamedRelation::new(name, columns);
    for tup in g.successors_by_name(*rel_node, "tup") {
        // Flat columns.
        let mut flat: Vec<Option<Value>> = Vec::with_capacity(columns.len());
        let mut nested_vals: Vec<Value> = Vec::new();
        for col in columns {
            let attrs = g.successors_by_name(tup, col);
            let attr = *attrs
                .first()
                .ok_or_else(|| FragmentError::Decode(format!("tuple missing attribute {col}")))?;
            if col == &nested_col {
                nested_vals = g.values_at(attr).into_iter().cloned().collect();
                flat.push(None);
            } else {
                let v = g
                    .atomic_value(attr)
                    .ok_or_else(|| FragmentError::Decode(format!("attribute {col} not atomic")))?;
                flat.push(Some(v.clone()));
            }
        }
        for nv in &nested_vals {
            let row: Vec<Value> = flat
                .iter()
                .map(|o| o.clone().unwrap_or_else(|| nv.clone()))
                .collect();
            out.push(row);
        }
    }
    let set = out.row_set();
    out.rows = set.into_iter().collect();
    Ok(out)
}

#[cfg(test)]
mod nested_tests {
    use super::*;

    fn cast_relation() -> NamedRelation {
        let mut r = NamedRelation::new("cast", &["title", "actor"]);
        r.push(vec!["Casablanca".into(), "Bogart".into()]);
        r.push(vec!["Casablanca".into(), "Bacall".into()]);
        r.push(vec!["Annie Hall".into(), "Allen".into()]);
        r
    }

    #[test]
    fn nest_groups_values() {
        let rel = cast_relation();
        let g = database_of(std::slice::from_ref(&rel));
        let nested = nest(&g, &rel, "actor").unwrap();
        let rel_node = nested.successors_by_name(nested.root(), "cast")[0];
        let tuples = nested.successors_by_name(rel_node, "tup");
        assert_eq!(tuples.len(), 2); // grouped by title
        let casablanca = tuples
            .iter()
            .find(|&&t| {
                let title = nested.successors_by_name(t, "title")[0];
                nested.atomic_value(title) == Some(&Value::Str("Casablanca".into()))
            })
            .copied()
            .expect("casablanca group");
        let actors = nested.successors_by_name(casablanca, "actor")[0];
        assert_eq!(nested.values_at(actors).len(), 2);
    }

    #[test]
    fn unnest_inverts_nest() {
        let rel = cast_relation();
        let g = database_of(std::slice::from_ref(&rel));
        let nested = nest(&g, &rel, "actor").unwrap();
        let flat = unnest(&nested, "cast", &["title", "actor"], "actor").unwrap();
        assert_eq!(flat.row_set(), rel.row_set());
    }

    #[test]
    fn nest_unknown_column_errors() {
        let rel = cast_relation();
        let g = database_of(std::slice::from_ref(&rel));
        assert!(matches!(
            nest(&g, &rel, "bogus"),
            Err(FragmentError::UnknownColumn(_))
        ));
        assert!(matches!(
            unnest(&g, "cast", &["title", "actor"], "bogus"),
            Err(FragmentError::UnknownColumn(_))
        ));
    }

    #[test]
    fn nested_result_is_queryable() {
        // The nested encoding is ordinary semistructured data: query it.
        let rel = cast_relation();
        let g = database_of(std::slice::from_ref(&rel));
        let nested = nest(&g, &rel, "actor").unwrap();
        let q =
            parse_query(r#"select {t: T} from db.cast.tup U, U.title T, U.actor A, A."Bacall" X"#)
                .unwrap();
        let (result, _) = evaluate_select(&nested, &q, &EvalOptions::default()).unwrap();
        assert_eq!(
            result.graph_values_helper(),
            vec![Value::Str("Casablanca".into())]
        );
    }

    trait GraphValuesHelper {
        fn graph_values_helper(&self) -> Vec<Value>;
    }

    impl GraphValuesHelper for Graph {
        fn graph_values_helper(&self) -> Vec<Value> {
            let ts = self.successors_by_name(self.root(), "t");
            ts.iter()
                .filter_map(|&t| self.atomic_value(t).cloned())
                .collect()
        }
    }

    #[test]
    fn nest_on_single_group() {
        let mut r = NamedRelation::new("r", &["k", "v"]);
        r.push(vec![1i64.into(), 10i64.into()]);
        r.push(vec![1i64.into(), 20i64.into()]);
        let g = database_of(&[r.clone()]);
        let nested = nest(&g, &r, "v").unwrap();
        let rel_node = nested.successors_by_name(nested.root(), "r")[0];
        assert_eq!(nested.successors_by_name(rel_node, "tup").len(), 1);
        let flat = unnest(&nested, "r", &["k", "v"], "v").unwrap();
        assert_eq!(flat.row_set(), r.row_set());
    }
}
