//! The §1.3 browsing queries.
//!
//! "Generally speaking, a user cannot write a database query without
//! knowledge of the schema ... It may help in understanding the schema to
//! be able to query data without full knowledge of the schema. For example
//! the queries:
//!
//! * Where in the database is the string "Casablanca" to be found?
//! * Are there integers in the database greater than 2^16?
//! * What objects in the database have an attribute name that starts with
//!   "act"?
//!
//! Such questions cannot be answered in any generic fashion by standard
//! relational or object-oriented query languages."
//!
//! Here they *are* answered, generically, in two ways each: by a full scan
//! of the reachable graph (the baseline) and through the
//! [`ssd_graph::index::GraphIndex`] (the §4 optimization);
//! experiment E2 benchmarks the gap. A found occurrence is reported with
//! one shortest label path from the root, so the answer is *localised*
//! ("where in the database"), not just boolean.

use ssd_graph::index::GraphIndex;
use ssd_graph::{Graph, Label, NodeId, Value};
use std::collections::{HashMap, VecDeque};

/// An occurrence of a browsing hit: the edge, plus one shortest label path
/// from the root to the edge's source.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub from: NodeId,
    pub label: Label,
    pub to: NodeId,
    /// Shortest path of labels from the root to `from` (empty if `from` is
    /// the root).
    pub path: Vec<Label>,
}

/// Compute one shortest label path from the root to every reachable node.
fn shortest_paths(g: &Graph) -> HashMap<NodeId, Vec<Label>> {
    let mut paths: HashMap<NodeId, Vec<Label>> = HashMap::new();
    paths.insert(g.root(), Vec::new());
    let mut queue = VecDeque::new();
    queue.push_back(g.root());
    while let Some(n) = queue.pop_front() {
        let base = paths[&n].clone();
        for e in g.edges(n) {
            if let std::collections::hash_map::Entry::Vacant(slot) = paths.entry(e.to) {
                let mut p = base.clone();
                p.push(e.label.clone());
                slot.insert(p);
                queue.push_back(e.to);
            }
        }
    }
    paths
}

fn hits_from_edges(g: &Graph, edges: Vec<(NodeId, Label, NodeId)>) -> Vec<Hit> {
    let paths = shortest_paths(g);
    edges
        .into_iter()
        .map(|(from, label, to)| Hit {
            from,
            label,
            to,
            path: paths.get(&from).cloned().unwrap_or_default(),
        })
        .collect()
}

/// Raw located edge, before path annotation.
pub type Located = (NodeId, Label, NodeId);

/// Q1 locate (scan): edges carrying the string `text` as a value or a
/// symbol name. The pure search step, without path annotation.
pub fn locate_string_scan(g: &Graph, text: &str) -> Vec<Located> {
    let mut out = Vec::new();
    for n in g.reachable() {
        for e in g.edges(n) {
            let matched = match &e.label {
                Label::Value(Value::Str(s)) => s == text,
                Label::Symbol(s) => &*g.symbols().resolve(*s) == text,
                _ => false,
            };
            if matched {
                out.push((n, e.label.clone(), e.to));
            }
        }
    }
    out
}

/// Q1 locate (index).
pub fn locate_string_indexed(g: &Graph, idx: &GraphIndex, text: &str) -> Vec<Located> {
    idx.find_string(g, text)
        .into_iter()
        .flat_map(|(from, to)| {
            g.edges(from)
                .iter()
                .filter(|e| e.to == to && e.label.text(g.symbols()).as_deref() == Some(text))
                .map(|e| (from, e.label.clone(), e.to))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Q1 (scan): where is the string `text`? With path annotation.
pub fn find_string_scan(g: &Graph, text: &str) -> Vec<Hit> {
    hits_from_edges(g, locate_string_scan(g, text))
}

/// Q1 (index), with path annotation.
pub fn find_string_indexed(g: &Graph, idx: &GraphIndex, text: &str) -> Vec<Hit> {
    hits_from_edges(g, locate_string_indexed(g, idx, text))
}

/// Q2 locate (scan): integer edges with value > `threshold`.
pub fn locate_ints_greater_scan(g: &Graph, threshold: i64) -> Vec<(i64, Located)> {
    let mut out = Vec::new();
    for n in g.reachable() {
        for e in g.edges(n) {
            if let Label::Value(Value::Int(i)) = &e.label {
                if *i > threshold {
                    out.push((*i, (n, e.label.clone(), e.to)));
                }
            }
        }
    }
    out
}

/// Q2 locate (index): a range probe on the value btree.
pub fn locate_ints_greater_indexed(
    g: &Graph,
    idx: &GraphIndex,
    threshold: i64,
) -> Vec<(i64, Located)> {
    let _ = g;
    idx.ints_in_range(threshold.checked_add(1), None)
        .into_iter()
        .map(|(i, (from, to))| (i, (from, Label::int(i), to)))
        .collect()
}

/// Q2 (scan): integers greater than `threshold`, with paths.
pub fn ints_greater_scan(g: &Graph, threshold: i64) -> Vec<(i64, Hit)> {
    let (vals, edges): (Vec<i64>, Vec<_>) =
        locate_ints_greater_scan(g, threshold).into_iter().unzip();
    vals.into_iter().zip(hits_from_edges(g, edges)).collect()
}

/// Q2 (index), with paths.
pub fn ints_greater_indexed(g: &Graph, idx: &GraphIndex, threshold: i64) -> Vec<(i64, Hit)> {
    let (vals, raw): (Vec<i64>, Vec<_>) = locate_ints_greater_indexed(g, idx, threshold)
        .into_iter()
        .unzip();
    vals.into_iter().zip(hits_from_edges(g, raw)).collect()
}

/// Q3 locate (scan): symbol edges whose name starts with `prefix`.
pub fn locate_attrs_prefix_scan(g: &Graph, prefix: &str) -> Vec<Located> {
    let mut out = Vec::new();
    for n in g.reachable() {
        for e in g.edges(n) {
            if let Label::Symbol(s) = &e.label {
                if g.symbols().resolve(*s).starts_with(prefix) {
                    out.push((n, e.label.clone(), e.to));
                }
            }
        }
    }
    out
}

/// Q3 locate (index): symbol-table prefix search + label index — no graph
/// scan at all.
pub fn locate_attrs_prefix_indexed(g: &Graph, idx: &GraphIndex, prefix: &str) -> Vec<Located> {
    idx.attrs_with_prefix(g, prefix)
        .into_iter()
        .map(|(sym, (from, to))| (from, Label::Symbol(sym), to))
        .collect()
}

/// Q3 (scan): objects with an attribute name starting with `prefix`, with
/// paths.
pub fn attrs_with_prefix_scan(g: &Graph, prefix: &str) -> Vec<Hit> {
    hits_from_edges(g, locate_attrs_prefix_scan(g, prefix))
}

/// Q3 (index), with paths.
pub fn attrs_with_prefix_indexed(g: &Graph, idx: &GraphIndex, prefix: &str) -> Vec<Hit> {
    hits_from_edges(g, locate_attrs_prefix_indexed(g, idx, prefix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;
    use std::collections::BTreeSet;

    fn db() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                                Cast: {Actors: "Bogart", Actors: "Bacall"},
                                BoxOffice: 1200000,
                                Year: 1942}},
                Entry: {Movie: {Title: "Play it again, Sam",
                                Cast: {Credit: {actors: "Allen"}},
                                Year: 1972}}}"#,
        )
        .unwrap()
    }

    fn norm(hits: &[Hit]) -> BTreeSet<(NodeId, NodeId)> {
        hits.iter().map(|h| (h.from, h.to)).collect()
    }

    #[test]
    fn q1_scan_and_index_agree() {
        let g = db();
        let idx = GraphIndex::build(&g);
        for text in ["Casablanca", "Bogart", "Title", "actors", "nothing-here"] {
            let s = find_string_scan(&g, text);
            let i = find_string_indexed(&g, &idx, text);
            assert_eq!(norm(&s), norm(&i), "disagree on {text}");
        }
    }

    #[test]
    fn q1_finds_casablanca_with_path() {
        let g = db();
        let hits = find_string_scan(&g, "Casablanca");
        assert_eq!(hits.len(), 1);
        let path: Vec<String> = hits[0]
            .path
            .iter()
            .map(|l| l.display(g.symbols()).to_string())
            .collect();
        assert_eq!(path, vec!["Entry", "Movie", "Title"]);
    }

    #[test]
    fn q2_scan_and_index_agree() {
        let g = db();
        let idx = GraphIndex::build(&g);
        for threshold in [0, 1941, 65536, 10_000_000] {
            let s: BTreeSet<i64> = ints_greater_scan(&g, threshold)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let i: BTreeSet<i64> = ints_greater_indexed(&g, &idx, threshold)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            assert_eq!(s, i, "disagree at threshold {threshold}");
        }
    }

    #[test]
    fn q2_finds_ints_above_2_16() {
        let g = db();
        let hits = ints_greater_scan(&g, 1 << 16);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1_200_000);
    }

    #[test]
    fn q3_scan_and_index_agree() {
        let g = db();
        let idx = GraphIndex::build(&g);
        for prefix in ["Act", "act", "T", "Zzz"] {
            let s = attrs_with_prefix_scan(&g, prefix);
            let i = attrs_with_prefix_indexed(&g, &idx, prefix);
            assert_eq!(norm(&s), norm(&i), "disagree on {prefix}");
        }
    }

    #[test]
    fn q3_finds_act_attributes() {
        let g = db();
        // Case-sensitive: "Actors" x2 + "actors" x1.
        assert_eq!(attrs_with_prefix_scan(&g, "Act").len(), 2);
        assert_eq!(attrs_with_prefix_scan(&g, "act").len(), 1);
    }

    #[test]
    fn browsing_works_on_cyclic_data() {
        let g = parse_graph(r#"@e = {References: @e, Title: "Loop"}"#).unwrap();
        let idx = GraphIndex::build(&g);
        let hits = find_string_indexed(&g, &idx, "Loop");
        assert_eq!(hits.len(), 1);
        assert!(ints_greater_scan(&g, 0).is_empty());
    }

    #[test]
    fn paths_are_shortest() {
        // Two routes to the same node; the reported path must be the short
        // one.
        let g = parse_graph(r#"{short: @t = {leaf: "X"}, long: {mid: @t}}"#).unwrap();
        let hits = find_string_scan(&g, "X");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path.len(), 2); // short.leaf
    }
}
