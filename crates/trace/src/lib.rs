//! # ssd-trace — deterministic structured tracing
//!
//! A zero-dependency (workspace-internal only) event layer threaded through
//! the whole stack: parser, analyzer, cost estimator, optimizer, the three
//! evaluators (select, RPE, datalog), the resource guard, and the query
//! server. Everything observable is *deterministic* — span ids are
//! monotonic, fuel/memory deltas come from the [`Guard`]'s deterministic
//! accounting, and no wall-clock value ever enters an event — so traces can
//! be golden-tested and diffed across runs.
//!
//! ## Model
//!
//! A [`Tracer`] hands out [`Span`]s (open/close pairs with parent links
//! maintained by an internal stack) and [`Event`]s flow into [`Sink`]s:
//!
//! * [`RingSink`] — bounded in-memory buffer with deterministic batch
//!   truncation (the scheduler-trace idiom: grow to 2× capacity, then drop
//!   the oldest half-capacity in one step).
//! * [`JsonlSink`] — one JSON object per line, for `--trace-out FILE`.
//! * [`SharedRing`] — a cloneable handle around a [`RingSink`] so a caller
//!   can both register the sink and read the events back after the run.
//!
//! Span `Close` events carry the fuel/memory *consumed during* the span
//! (sampled from the guard at open and close); `Open` and `Instant` events
//! carry the absolute counters at emission. Dropping a span closes it, so
//! early exits via `?`, budget exhaustion, cancellation, and panics all
//! still produce balanced traces ([`validate`] checks this invariant).

use ssd_guard::Guard;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Default capacity of a [`RingSink`] (events kept after truncation).
pub const DEFAULT_RING_CAP: usize = 65_536;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Source-text parsing (query, datalog, rewrite, data literal).
    Parse,
    /// Static analysis (variables, schema-aware typing).
    Analyze,
    /// Static cost estimation (the estimated-vs-actual envelope).
    Estimate,
    /// Optimizer rewrite/reorder decisions.
    Optimize,
    /// Select-from-where evaluation.
    Eval,
    /// Regular-path-expression product BFS.
    Rpe,
    /// Datalog fixpoint rounds.
    Datalog,
    /// Resource-guard exhaustion and cancellation.
    Guard,
    /// Query-serving: admission, queueing, dispatch, job lifecycle.
    Serve,
    /// Durable storage: WAL commits, recovery replay, generation swaps.
    Store,
    /// Columnar triple index: batched operators, delta merges.
    Index,
    /// Workload harness: generation, scenario replay, bench phases.
    Workload,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Analyze => "analyze",
            Phase::Estimate => "estimate",
            Phase::Optimize => "optimize",
            Phase::Eval => "eval",
            Phase::Rpe => "rpe",
            Phase::Datalog => "datalog",
            Phase::Guard => "guard",
            Phase::Serve => "serve",
            Phase::Store => "store",
            Phase::Index => "index",
            Phase::Workload => "workload",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Open a span, close a span, or record a point-in-time fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Open,
    Close,
    Instant,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Close => "close",
            EventKind::Instant => "instant",
        }
    }
}

/// One structured trace event. `seq` is the global emission order, `id` a
/// monotonic span/event id (never 0), `parent` the enclosing span's id (0
/// for roots). `fuel`/`memory` hold the guard's absolute counters on
/// `Open`/`Instant` events and the *delta consumed during the span* on
/// `Close` events.
#[derive(Debug, Clone)]
pub struct Event {
    pub seq: u64,
    pub id: u64,
    pub parent: u64,
    pub kind: EventKind,
    pub phase: Phase,
    pub name: &'static str,
    pub fuel: u64,
    pub memory: u64,
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Where events go. Sinks must be `Send` so a server can own a tracer
/// behind a mutex; they are driven under the tracer's interior borrow, so
/// they never need their own locking for single-threaded use.
pub trait Sink: Send {
    fn record(&mut self, event: &Event);
    fn flush(&mut self) {}
}

/// Bounded in-memory event buffer with deterministic batch truncation:
/// the buffer grows to 2× capacity, then the oldest `capacity` events are
/// dropped in one step (same idiom as the scheduler's decision trace, so
/// truncation points do not depend on allocation behavior).
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    dropped: u64,
    events: Vec<Event>,
}

impl RingSink {
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            dropped: 0,
            events: Vec::new(),
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drain and return all retained events.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// How many events truncation has discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
        if self.events.len() >= self.cap * 2 {
            let excess = self.events.len() - self.cap;
            self.events.drain(..excess);
            self.dropped += excess as u64;
        }
    }
}

/// A cloneable handle over a [`RingSink`]: register one clone as a sink,
/// keep the other to read events back after the run.
#[derive(Clone)]
pub struct SharedRing(Arc<Mutex<RingSink>>);

impl SharedRing {
    pub fn new(cap: usize) -> SharedRing {
        SharedRing(Arc::new(Mutex::new(RingSink::new(cap))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingSink> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().events().to_vec()
    }

    /// Drain and return all retained events.
    pub fn take(&self) -> Vec<Event> {
        self.lock().take()
    }

    pub fn dropped(&self) -> u64 {
        self.lock().dropped()
    }
}

impl Sink for SharedRing {
    fn record(&mut self, event: &Event) {
        self.lock().record(event);
    }
}

/// One JSON object per line (`--trace-out FILE`). The encoding is
/// hand-rolled (no serde in the workspace): stable key order, `\u{...}`
/// escapes for control characters.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", event_to_json(event));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render one event as a single-line JSON object (the `--trace-out`
/// format). Keys, in order: `seq`, `id`, `parent`, `kind`, `phase`,
/// `name`, `fuel`, `mem`, `fields`.
pub fn event_to_json(e: &Event) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"seq\":");
    out.push_str(&e.seq.to_string());
    out.push_str(",\"id\":");
    out.push_str(&e.id.to_string());
    out.push_str(",\"parent\":");
    out.push_str(&e.parent.to_string());
    out.push_str(",\"kind\":\"");
    out.push_str(e.kind.as_str());
    out.push_str("\",\"phase\":\"");
    out.push_str(e.phase.as_str());
    out.push_str("\",\"name\":\"");
    escape_json_into(e.name, &mut out);
    out.push_str("\",\"fuel\":");
    out.push_str(&e.fuel.to_string());
    out.push_str(",\"mem\":");
    out.push_str(&e.memory.to_string());
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in e.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(k, &mut out);
        out.push_str("\":");
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::I64(n) => out.push_str(&n.to_string()),
            FieldValue::Str(s) => {
                out.push('"');
                escape_json_into(s, &mut out);
                out.push('"');
            }
        }
    }
    out.push_str("}}");
    out
}

/// Minimal structural check of one `--trace-out` line: used by the trace
/// smoke gate in `ci.sh` and the JSONL schema unit test. Verifies the
/// required keys are present, in order, and that `kind` is one of the
/// three event kinds.
pub fn jsonl_line_ok(line: &str) -> bool {
    let t = line.trim();
    if !t.starts_with('{') || !t.ends_with("}}") {
        return false;
    }
    let keys = [
        "{\"seq\":",
        "\"id\":",
        "\"parent\":",
        "\"kind\":\"",
        "\"phase\":\"",
        "\"name\":\"",
        "\"fuel\":",
        "\"mem\":",
        "\"fields\":{",
    ];
    let mut pos = 0;
    for k in keys {
        match t[pos..].find(k) {
            Some(i) => pos += i + k.len(),
            None => return false,
        }
    }
    [
        "\"kind\":\"open\"",
        "\"kind\":\"close\"",
        "\"kind\":\"instant\"",
    ]
    .iter()
    .any(|k| t.contains(k))
}

struct Inner {
    next_id: u64,
    seq: u64,
    stack: Vec<u64>,
    sinks: Vec<Box<dyn Sink>>,
}

impl Inner {
    fn emit(&mut self, mut event: Event) {
        event.seq = self.seq;
        self.seq += 1;
        for s in &mut self.sinks {
            s.record(&event);
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

/// The event source: hands out spans, assigns monotonic ids, maintains the
/// parent stack, and fans events out to the registered sinks.
///
/// A `Tracer` is single-threaded (`!Sync`); the server wraps one in a
/// mutex and uses the `*_detached` API (explicit parent ids, no stack) for
/// events emitted from worker threads.
pub struct Tracer {
    inner: RefCell<Inner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with no sinks (events are assigned ids and dropped).
    pub fn new() -> Tracer {
        Tracer {
            inner: RefCell::new(Inner {
                next_id: 1,
                seq: 0,
                stack: Vec::new(),
                sinks: Vec::new(),
            }),
        }
    }

    pub fn with_sink(sink: Box<dyn Sink>) -> Tracer {
        let t = Tracer::new();
        t.add_sink(sink);
        t
    }

    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.borrow_mut().sinks.push(sink);
    }

    /// Open a span nested under the current innermost span. If `guard` is
    /// given, the span's `Close` event reports the fuel/memory consumed
    /// while it was open. Dropping the returned [`Span`] closes it.
    pub fn span<'t>(
        &'t self,
        phase: Phase,
        name: &'static str,
        guard: Option<&'t Guard>,
    ) -> Span<'t> {
        let fuel = guard.map_or(0, Guard::steps_used);
        let memory = guard.map_or(0, Guard::memory_used);
        let mut inner = self.inner.borrow_mut();
        let id = inner.fresh_id();
        let parent = inner.stack.last().copied().unwrap_or(0);
        inner.stack.push(id);
        inner.emit(Event {
            seq: 0,
            id,
            parent,
            kind: EventKind::Open,
            phase,
            name,
            fuel,
            memory,
            fields: Vec::new(),
        });
        Span {
            tracer: Some(self),
            guard,
            id,
            parent,
            phase,
            name,
            fuel_at_open: fuel,
            mem_at_open: memory,
            fields: Vec::new(),
            detached: false,
        }
    }

    /// Record a point-in-time event under the current innermost span.
    pub fn instant(
        &self,
        phase: Phase,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.fresh_id();
        let parent = inner.stack.last().copied().unwrap_or(0);
        inner.emit(Event {
            seq: 0,
            id,
            parent,
            kind: EventKind::Instant,
            phase,
            name,
            fuel: 0,
            memory: 0,
            fields,
        });
    }

    /// Open a span with an explicit parent, without touching the nesting
    /// stack — for cross-thread lifecycles (a server job span opened at
    /// dispatch on one thread, closed at completion on another). Returns
    /// the span id to pass to [`Tracer::close_detached`].
    pub fn open_detached(
        &self,
        phase: Phase,
        name: &'static str,
        parent: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let id = inner.fresh_id();
        inner.emit(Event {
            seq: 0,
            id,
            parent,
            kind: EventKind::Open,
            phase,
            name,
            fuel: 0,
            memory: 0,
            fields,
        });
        id
    }

    /// Close a span opened with [`Tracer::open_detached`]. `fuel`/`memory`
    /// are the amounts consumed during the span (the caller accounts them;
    /// there is no shared guard across threads).
    pub fn close_detached(
        &self,
        id: u64,
        phase: Phase,
        name: &'static str,
        fuel: u64,
        memory: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        inner.emit(Event {
            seq: 0,
            id,
            parent: 0,
            kind: EventKind::Close,
            phase,
            name,
            fuel,
            memory,
            fields,
        });
    }

    /// Record a point-in-time event with an explicit parent (cross-thread
    /// companion to [`Tracer::instant`]).
    pub fn instant_at(
        &self,
        phase: Phase,
        name: &'static str,
        parent: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.fresh_id();
        inner.emit(Event {
            seq: 0,
            id,
            parent,
            kind: EventKind::Instant,
            phase,
            name,
            fuel: 0,
            memory: 0,
            fields,
        });
    }

    /// Flush all sinks.
    pub fn flush(&self) {
        for s in &mut self.inner.borrow_mut().sinks {
            s.flush();
        }
    }

    fn close_span(&self, span: &mut Span<'_>) {
        // `try_borrow_mut` so a drop during unwinding (a panic inside a
        // sink) cannot double-panic.
        let Ok(mut inner) = self.inner.try_borrow_mut() else {
            return;
        };
        if let Some(pos) = inner.stack.iter().rposition(|&x| x == span.id) {
            inner.stack.remove(pos);
        }
        let fuel = span
            .guard
            .map_or(0, Guard::steps_used)
            .saturating_sub(span.fuel_at_open);
        let memory = span
            .guard
            .map_or(0, Guard::memory_used)
            .saturating_sub(span.mem_at_open);
        inner.emit(Event {
            seq: 0,
            id: span.id,
            parent: span.parent,
            kind: EventKind::Close,
            phase: span.phase,
            name: span.name,
            fuel,
            memory,
            fields: std::mem::take(&mut span.fields),
        });
    }
}

/// An open span. Closed exactly once: on [`Span::close`] or on drop
/// (whichever comes first), so early returns, exhaustion, cancellation,
/// and panics still balance the trace.
pub struct Span<'t> {
    tracer: Option<&'t Tracer>,
    guard: Option<&'t Guard>,
    id: u64,
    parent: u64,
    phase: Phase,
    name: &'static str,
    fuel_at_open: u64,
    mem_at_open: u64,
    fields: Vec<(&'static str, FieldValue)>,
    detached: bool,
}

impl Span<'_> {
    /// A span that records nothing — the disabled-tracing fast path.
    pub fn noop() -> Span<'static> {
        Span {
            tracer: None,
            guard: None,
            id: 0,
            parent: 0,
            phase: Phase::Eval,
            name: "",
            fuel_at_open: 0,
            mem_at_open: 0,
            fields: Vec::new(),
            detached: false,
        }
    }

    /// True when this span feeds a real tracer — check before computing
    /// expensive field values.
    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The span id (0 for a no-op span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a field, reported on the `Close` event.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.tracer.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// Close explicitly (equivalent to dropping, but reads better at call
    /// sites that want the close point visible).
    pub fn close(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let detached = self.detached;
        if let Some(t) = self.tracer.take() {
            if !detached {
                t.close_span(self);
            }
        }
    }
}

/// Open a span if tracing is enabled; otherwise a free no-op. The standard
/// instrumentation entry point:
///
/// ```
/// use ssd_trace::{span, Phase, SharedRing, Sink, Tracer};
/// let ring = SharedRing::new(16);
/// let tracer = Tracer::with_sink(Box::new(ring.clone()));
/// {
///     let mut s = span(Some(&tracer), Phase::Eval, "select", None);
///     s.field("results", 3u64);
/// }
/// assert_eq!(ring.snapshot().len(), 2); // open + close
/// ```
pub fn span<'t>(
    tracer: Option<&'t Tracer>,
    phase: Phase,
    name: &'static str,
    guard: Option<&'t Guard>,
) -> Span<'t> {
    match tracer {
        Some(t) => t.span(phase, name, guard),
        None => Span::noop(),
    }
}

/// Record an instant event if tracing is enabled. Call sites that must
/// build costly fields should check `tracer.is_some()` first.
pub fn instant(
    tracer: Option<&Tracer>,
    phase: Phase,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
) {
    if let Some(t) = tracer {
        t.instant(phase, name, fields);
    }
}

/// Check trace well-formedness: strictly increasing `seq`, unique span
/// ids, every `Open` closed exactly once, no `Close` without an `Open`,
/// and acyclic parent links (a parent id is 0 or a previously opened span
/// with a smaller id). Returns the first violation found.
pub fn validate(events: &[Event]) -> Result<(), String> {
    let mut last_seq: Option<u64> = None;
    let mut state: HashMap<u64, bool> = HashMap::new(); // id -> still open
    for e in events {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                return Err(format!("seq not strictly increasing at {}", e.seq));
            }
        }
        last_seq = Some(e.seq);
        match e.kind {
            EventKind::Open => {
                if e.id == 0 {
                    return Err("open event with id 0".to_owned());
                }
                if e.parent != 0 {
                    if e.parent >= e.id {
                        return Err(format!("span {} has parent {} >= its id", e.id, e.parent));
                    }
                    if !state.contains_key(&e.parent) {
                        return Err(format!("span {} has unknown parent {}", e.id, e.parent));
                    }
                }
                if state.insert(e.id, true).is_some() {
                    return Err(format!("span id {} opened twice", e.id));
                }
            }
            EventKind::Close => match state.get_mut(&e.id) {
                Some(open @ true) => *open = false,
                Some(false) => return Err(format!("span {} closed twice", e.id)),
                None => return Err(format!("span {} closed but never opened", e.id)),
            },
            EventKind::Instant => {
                if e.parent != 0 && !state.contains_key(&e.parent) {
                    return Err(format!("instant {} has unknown parent {}", e.id, e.parent));
                }
            }
        }
    }
    if let Some((id, _)) = state.iter().find(|(_, open)| **open) {
        return Err(format!("span {id} opened but never closed"));
    }
    Ok(())
}

/// Collapse a trace into folded-stack lines (`a;b;c weight`), the input
/// format of flamegraph tools. The weight of a frame is its *self* fuel:
/// the span's close-event fuel delta minus its direct children's. Spans
/// with zero self-fuel are omitted.
pub fn folded_stacks(events: &[Event]) -> String {
    // id -> (name, parent)
    let mut meta: HashMap<u64, (&'static str, u64)> = HashMap::new();
    // id -> fuel delta at close
    let mut closed: HashMap<u64, u64> = HashMap::new();
    // parent id -> sum of direct children's close fuel
    let mut child_fuel: HashMap<u64, u64> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Open => {
                meta.insert(e.id, (e.name, e.parent));
            }
            EventKind::Close => {
                closed.insert(e.id, e.fuel);
                if let Some((_, parent)) = meta.get(&e.id) {
                    if *parent != 0 {
                        *child_fuel.entry(*parent).or_insert(0) += e.fuel;
                    }
                }
            }
            EventKind::Instant => {}
        }
    }
    let frames = |mut id: u64| -> String {
        let mut names = Vec::new();
        while id != 0 {
            match meta.get(&id) {
                Some((name, parent)) => {
                    names.push(*name);
                    id = *parent;
                }
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    };
    let mut weights: HashMap<String, u64> = HashMap::new();
    let mut ids: Vec<u64> = closed.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let total = closed[&id];
        let self_fuel = total.saturating_sub(child_fuel.get(&id).copied().unwrap_or(0));
        if self_fuel > 0 {
            *weights.entry(frames(id)).or_insert(0) += self_fuel;
        }
    }
    let mut lines: Vec<String> = weights
        .into_iter()
        .map(|(stack, w)| format!("{stack} {w}"))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Human-readable rendering (the `--trace` flag): one line per event,
/// indented by nesting depth, close events annotated with their fuel and
/// memory deltas and their fields.
pub fn render_events(events: &[Event]) -> String {
    let mut depth: HashMap<u64, usize> = HashMap::new();
    let mut out = String::new();
    for e in events {
        let d = if e.parent == 0 {
            0
        } else {
            depth.get(&e.parent).copied().map_or(0, |p| p + 1)
        };
        if e.kind == EventKind::Open {
            depth.insert(e.id, d);
        }
        let indent = "  ".repeat(match e.kind {
            EventKind::Close => depth.get(&e.id).copied().unwrap_or(d),
            _ => d,
        });
        let marker = match e.kind {
            EventKind::Open => '>',
            EventKind::Close => '<',
            EventKind::Instant => '.',
        };
        out.push_str(&format!("{indent}{marker} {}:{}", e.phase, e.name));
        if e.kind == EventKind::Close {
            out.push_str(&format!(" fuel={} mem={}", e.fuel, e.memory));
        }
        for (k, v) in &e.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    out
}

/// Aggregate per-phase fuel and event counts (the plain `--profile`
/// output): stable `phase spans fuel` lines, one per phase seen.
pub fn phase_totals(events: &[Event]) -> String {
    let mut totals: HashMap<Phase, (u64, u64)> = HashMap::new();
    for e in events {
        if e.kind == EventKind::Close {
            let t = totals.entry(e.phase).or_insert((0, 0));
            t.0 += 1;
            t.1 += e.fuel;
        }
    }
    let mut phases: Vec<Phase> = totals.keys().copied().collect();
    phases.sort();
    let mut out = String::new();
    for p in phases {
        let (spans, fuel) = totals[&p];
        out.push_str(&format!("{p} spans={spans} fuel={fuel}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_guard::Budget;

    fn ring_tracer(cap: usize) -> (Tracer, SharedRing) {
        let ring = SharedRing::new(cap);
        let tracer = Tracer::with_sink(Box::new(ring.clone()));
        (tracer, ring)
    }

    #[test]
    fn spans_nest_and_balance() {
        let (tracer, ring) = ring_tracer(64);
        {
            let mut a = tracer.span(Phase::Eval, "select", None);
            a.field("results", 2u64);
            {
                let b = tracer.span(Phase::Rpe, "rpe", None);
                b.close();
            }
            tracer.instant(Phase::Guard, "exhausted", vec![("cause", "fuel".into())]);
        }
        let events = ring.snapshot();
        validate(&events).unwrap();
        assert_eq!(events.len(), 5);
        // rpe nests under select; the instant too.
        let select_id = events[0].id;
        assert_eq!(events[1].parent, select_id);
        assert_eq!(events[3].parent, select_id);
        // Fields ride on the close event.
        let close = events.last().unwrap();
        assert_eq!(close.kind, EventKind::Close);
        assert_eq!(close.fields, vec![("results", FieldValue::U64(2))]);
    }

    #[test]
    fn guard_deltas_are_recorded() {
        let (tracer, ring) = ring_tracer(64);
        let guard = Budget::metered().guard();
        assert!(guard.tick(5).unwrap());
        {
            let _s = tracer.span(Phase::Eval, "work", Some(&guard));
            assert!(guard.tick(7).unwrap());
            assert!(guard.alloc(100).unwrap());
        }
        let events = ring.snapshot();
        let close = events.last().unwrap();
        assert_eq!(close.kind, EventKind::Close);
        assert_eq!(close.fuel, 7);
        assert_eq!(close.memory, 100);
        // The open event carries the absolute counter.
        assert_eq!(events[0].fuel, 5);
    }

    #[test]
    fn drop_closes_on_panic() {
        let (tracer, ring) = ring_tracer(64);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = tracer.span(Phase::Datalog, "round", None);
            panic!("boom");
        }));
        assert!(r.is_err());
        let events = ring.snapshot();
        validate(&events).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, EventKind::Close);
    }

    #[test]
    fn noop_span_records_nothing() {
        let mut s = span(None, Phase::Eval, "select", None);
        s.field("ignored", 1u64);
        assert!(!s.enabled());
        drop(s);
        instant(None, Phase::Guard, "exhausted", Vec::new());
    }

    #[test]
    fn ring_truncates_in_batches() {
        let mut ring = RingSink::new(4);
        let mk = |i: u64| Event {
            seq: i,
            id: i + 1,
            parent: 0,
            kind: EventKind::Instant,
            phase: Phase::Serve,
            name: "e",
            fuel: 0,
            memory: 0,
            fields: Vec::new(),
        };
        for i in 0..7 {
            ring.record(&mk(i));
        }
        assert_eq!(ring.events().len(), 7);
        assert_eq!(ring.dropped(), 0);
        ring.record(&mk(7)); // hits 2*cap: drop oldest 4
        assert_eq!(ring.events().len(), 4);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.events()[0].seq, 4);
    }

    #[test]
    fn jsonl_round_trip_shape() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            let e = Event {
                seq: 0,
                id: 1,
                parent: 0,
                kind: EventKind::Open,
                phase: Phase::Parse,
                name: "parse",
                fuel: 3,
                memory: 9,
                fields: vec![
                    ("src", FieldValue::Str("a\"b\nc".into())),
                    ("n", 4u64.into()),
                ],
            };
            sink.record(&e);
            sink.flush();
        }
        let line = String::from_utf8(buf).unwrap();
        assert!(jsonl_line_ok(&line), "{line}");
        assert!(line.contains("\"phase\":\"parse\""));
        assert!(line.contains("\\\"b\\nc"));
        assert!(line.contains("\"n\":4"));
        assert!(!jsonl_line_ok("{\"seq\":1}"));
        assert!(!jsonl_line_ok("not json"));
    }

    #[test]
    fn detached_spans_for_cross_thread_lifecycles() {
        let (tracer, ring) = ring_tracer(64);
        let job = tracer.open_detached(Phase::Serve, "job", 0, vec![("job", 1u64.into())]);
        tracer.instant_at(Phase::Serve, "dispatch", job, Vec::new());
        tracer.close_detached(
            job,
            Phase::Serve,
            "job",
            42,
            0,
            vec![("outcome", "done".into())],
        );
        let events = ring.snapshot();
        validate(&events).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].parent, job);
        assert_eq!(events[2].fuel, 42);
    }

    #[test]
    fn validate_rejects_malformed() {
        let base = Event {
            seq: 0,
            id: 1,
            parent: 0,
            kind: EventKind::Open,
            phase: Phase::Eval,
            name: "x",
            fuel: 0,
            memory: 0,
            fields: Vec::new(),
        };
        // Unclosed span.
        assert!(validate(std::slice::from_ref(&base)).is_err());
        // Close without open.
        let close = Event {
            kind: EventKind::Close,
            seq: 1,
            id: 2,
            ..base.clone()
        };
        assert!(validate(&[close]).is_err());
        // Parent cycle (parent >= id).
        let cyc = Event {
            parent: 1,
            ..base.clone()
        };
        assert!(validate(&[cyc]).is_err());
        // Balanced pair passes.
        let ok = [
            base.clone(),
            Event {
                kind: EventKind::Close,
                seq: 1,
                ..base
            },
        ];
        validate(&ok).unwrap();
    }

    #[test]
    fn folded_stacks_self_fuel() {
        let (tracer, ring) = ring_tracer(64);
        let guard = Budget::metered().guard();
        {
            let _outer = tracer.span(Phase::Eval, "select", Some(&guard));
            assert!(guard.tick(10).unwrap());
            {
                let _inner = tracer.span(Phase::Rpe, "rpe", Some(&guard));
                assert!(guard.tick(30).unwrap());
            }
        }
        let folded = folded_stacks(&ring.snapshot());
        assert!(folded.contains("select 10\n"), "{folded}");
        assert!(folded.contains("select;rpe 30\n"), "{folded}");
    }

    #[test]
    fn render_and_phase_totals() {
        let (tracer, ring) = ring_tracer(64);
        let guard = Budget::metered().guard();
        {
            let mut s = tracer.span(Phase::Datalog, "datalog", Some(&guard));
            assert!(guard.tick(4).unwrap());
            s.field("rounds", 2u64);
        }
        let events = ring.snapshot();
        let text = render_events(&events);
        assert!(text.contains("> datalog:datalog"), "{text}");
        assert!(
            text.contains("< datalog:datalog fuel=4 mem=0 rounds=2"),
            "{text}"
        );
        let totals = phase_totals(&events);
        assert_eq!(totals, "datalog spans=1 fuel=4\n");
    }
}
