//! # ssd-lint — workspace invariant checker
//!
//! Static analysis over the workspace's *own* Rust sources, applying
//! the same "reject statically what would fail dynamically" discipline
//! the query analyzer applies to user programs. Zero dependencies
//! beyond `ssd-diag` (whose renderer it reuses), built on a token-level
//! lexer rather than `syn` — consistent with the hermetic offline
//! build.
//!
//! Ten lints across two bands. The SSD90x band is intraprocedural:
//!
//! | code   | lint            | invariant |
//! |--------|-----------------|-----------|
//! | SSD901 | registry-sync   | diag registry ⇔ docs tables ⇔ tests |
//! | SSD902 | guard-threading | evaluator entry points have governed variants; no Guard bypass |
//! | SSD903 | panic-sites     | panic sites within per-crate budgets |
//! | SSD904 | lock-order      | `.lock()` nesting follows serve's LOCK_ORDER; no blocking while held |
//! | SSD905 | span-discipline | tracer spans are bound and closed |
//!
//! The SSD91x band is interprocedural, built on a workspace call graph
//! ([`callgraph`]) whose per-function effect summaries (locks acquired,
//! blocking primitives, WAL appends/fsyncs, fault points) are
//! propagated to a fixpoint:
//!
//! | code   | lint               | invariant |
//! |--------|--------------------|-----------|
//! | SSD910 | interproc-locks    | no call chain re-enters the hierarchy at an outer rank |
//! | SSD911 | blocking-under-lock| no blocking primitive reachable while a lock is held |
//! | SSD912 | atomic-ordering    | `Ordering::Relaxed` only with a declared reason |
//! | SSD913 | publish-before-log | store generation swap dominated by WAL append + fsync |
//! | SSD914 | fault-coverage     | raw store I/O reachable from a `wal.*` fault point |
//!
//! Deliberate exceptions are annotated in the source as
//! `// lint: allow(panic|guard|lock|span|atomic|durability) — <reason>`;
//! the reason is mandatory (a reasonless annotation is inert and itself
//! reported). See `docs/LINTS.md`.

mod callgraph;
mod concurrency;
mod durability;
mod guards;
pub mod lexer;
mod locks;
mod panics;
mod registry;
mod scan;
mod spans;

use std::collections::BTreeMap;
use std::path::Path;

use ssd_diag::{Code, Diagnostic};

pub use scan::{functions, FnInfo, SourceFile, Workspace};

/// One lint finding: a diagnostic anchored to a workspace file.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path the span indexes.
    pub file: String,
    pub diag: Diagnostic,
}

impl Finding {
    pub fn new(file: impl Into<String>, diag: Diagnostic) -> Finding {
        Finding {
            file: file.into(),
            diag,
        }
    }
}

/// The result of linting one workspace.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub functions_scanned: usize,
    sources: BTreeMap<String, String>,
}

impl Report {
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.diag.is_error()).count()
    }

    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Rustc-style rendering of every finding, followed by a summary
    /// line. `deny_warnings` only changes the summary's advice, not the
    /// findings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let source = self.sources.get(&f.file).map(String::as_str).unwrap_or("");
            out.push_str(&f.diag.render(source, &f.file));
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Machine-readable rendering: one JSON object per finding, one
    /// per line, no summary — for `ssd lint --json`. Hand-formatted to
    /// keep the crate dependency-free.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let line = f
                .diag
                .span
                .and_then(|s| {
                    self.sources
                        .get(&f.file)
                        .map(|src| lexer::line_of(src, s.start))
                })
                .unwrap_or(0);
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}\n",
                f.diag.code.as_str(),
                if f.diag.is_error() { "error" } else { "warning" },
                json_escape(&f.file),
                line,
                json_escape(&f.diag.message),
            ));
        }
        out
    }

    pub fn summary(&self) -> String {
        if self.findings.is_empty() {
            format!("ssd lint: clean ({} files scanned)", self.files_scanned)
        } else {
            format!(
                "ssd lint: {} error(s), {} warning(s) across {} files",
                self.error_count(),
                self.warning_count(),
                self.files_scanned
            )
        }
    }
}

/// Minimal JSON string escaping for the `--json` rendering.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run all ten lints over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let ws = scan::load(root)?;
    let mut findings = Vec::new();
    // Reasonless allow annotations are inert; say so rather than let
    // them look like they worked.
    for f in &ws.files {
        for a in f.allows.values() {
            if !a.has_reason {
                let kind = a.kinds.first().map(String::as_str).unwrap_or("panic");
                findings.push(Finding::new(
                    &f.rel,
                    Diagnostic::new(
                        code_for_kind(kind),
                        format!("allow({kind}) annotation has no reason and is ignored"),
                    )
                    .with_span(ssd_diag::Span::new(a.start, a.end))
                    .with_suggestion("write `// lint: allow(..) — <why this site is exempt>`"),
                ));
            }
            for k in &a.kinds {
                if !["panic", "guard", "lock", "span", "atomic", "durability"].contains(&k.as_str())
                {
                    findings.push(Finding::new(
                        &f.rel,
                        Diagnostic::new(
                            Code::PanicSite,
                            format!("unknown lint kind `{k}` in allow annotation"),
                        )
                        .with_span(ssd_diag::Span::new(a.start, a.end)),
                    ));
                }
            }
        }
    }
    registry::run(&ws, &mut findings);
    guards::run(&ws, &mut findings);
    panics::run(&ws, &mut findings);
    locks::run(&ws, &mut findings);
    spans::run(&ws, &mut findings);
    let order = locks::lock_order_of(&ws);
    let graph = callgraph::build(&ws, order.as_deref());
    concurrency::run(&ws, &graph, &mut findings);
    durability::run(&ws, &graph, &mut findings);
    findings.sort_by(|a, b| {
        let ka = (
            a.file.as_str(),
            a.diag.span.map_or(0, |s| s.start),
            a.diag.code.as_str(),
            a.diag.message.as_str(),
        );
        let kb = (
            b.file.as_str(),
            b.diag.span.map_or(0, |s| s.start),
            b.diag.code.as_str(),
            b.diag.message.as_str(),
        );
        ka.cmp(&kb)
    });
    Ok(Report {
        files_scanned: ws.files.len(),
        functions_scanned: graph.nodes.len(),
        sources: ws.sources(),
        findings,
    })
}

/// Deterministic text rendering of the workspace call graph — nodes,
/// resolved edges, fixpoint effect summaries. Exposed for the
/// determinism/termination property tests and for debugging.
pub fn callgraph_debug(root: &Path) -> Result<String, String> {
    let ws = scan::load(root)?;
    let order = locks::lock_order_of(&ws);
    let graph = callgraph::build(&ws, order.as_deref());
    Ok(graph.render(&ws))
}

fn code_for_kind(kind: &str) -> Code {
    match kind {
        "guard" => Code::GuardBypass,
        "lock" => Code::LockOrderViolation,
        "span" => Code::SpanLeak,
        "atomic" => Code::AtomicOrderingUndeclared,
        "durability" => Code::PublishBeforeLog,
        _ => Code::PanicSite,
    }
}

/// Long-form explanation for `ssd lint --explain SSD9xx`.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match code {
        "SSD901" => {
            "SSD901 registry-sync: the diagnostic registry in crates/diag is the single source \
             of truth for SSD codes. This lint cross-checks it three ways: every `Code::Variant \
             => \"SSDxxx\"` arm must have exactly one `| SSDxxx |` row in the docs/LANGUAGE.md \
             or docs/SERVING.md band tables; every code must be referenced by at least one test \
             under tests/ (by literal or by variant name); and each band's numbers must be \
             contiguous (a gap usually means a code was deleted without renumbering, or a new \
             one skipped a slot). Doc rows naming codes that no variant defines are phantom \
             documentation and are flagged at the row."
        }
        "SSD902" => {
            "SSD902 guard-threading: evaluation must be governable — every public evaluator \
             entry point (eval*/evaluate*/ext*/gext* in crates/query and crates/triples) either \
             takes a Guard/EvalOptions itself or has a governed sibling (*_guarded, *_with, \
             *_traced). Inside a function that runs under a Guard, calling a bare ungoverned \
             wrapper would evaluate outside the caller's fuel/memory/deadline envelope, so such \
             calls are flagged; thread the guard through the governed sibling instead. \
             Deliberately ungoverned evaluators carry `// lint: allow(guard) — <reason>`."
        }
        "SSD903" => {
            "SSD903 panic-sites: unwrap/expect/panic!/unreachable!/todo!/unimplemented! outside \
             test code, counted token-accurately (string literals, comments and #[cfg(test)] \
             items do not count; the parser's own `self.expect(..)` helper is exempt). Counts \
             are reconciled against crates/lint/panic-budgets.txt in both directions: over \
             budget means a new panic site needs justifying or removing; under budget means the \
             budget should ratchet down so slack cannot be spent silently. A deliberate site is \
             annotated `// lint: allow(panic) — <reason>` and does not charge the budget."
        }
        "SSD904" => {
            "SSD904 lock-order: crates/serve/src/lib.rs declares LOCK_ORDER, the global mutex \
             hierarchy. Per function, every `.lock()` is resolved to its hierarchy rank and the \
             set of currently-held guards is tracked (let-bindings until scope end or drop(x), \
             temporaries until end of statement). Flagged: locking a mutex absent from the \
             hierarchy, acquiring a rank ≤ one already held (deadlock-shaped), and calling \
             blocking operations — JoinHandle::join(), channel .send()/.recv() — while any lock \
             is held. The check is intraprocedural; the hierarchy documents the cross-function \
             contract."
        }
        "SSD905" => {
            "SSD905 span-discipline: tracer spans are RAII values whose Drop records the close \
             event, so a span must be bound for the region it measures. Flagged: spans \
             discarded at the open site (`span(..);` in statement position, or `let _ = \
             span(..)`), open_detached with no close_detached in the same function (detached \
             spans are for cross-thread regions; if another function owns the close, annotate \
             `// lint: allow(span) — <reason>`), and mem::forget in library code. The dynamic \
             counterpart is Tracer::validate, exercised by tests/trace.rs."
        }
        "SSD910" => {
            "SSD910 interproc-locks: lock-order inversion across function boundaries. The \
             workspace call graph resolves every unambiguous call and propagates the set of \
             LOCK_ORDER ranks each function (transitively) acquires to a fixpoint. A call made \
             while holding rank R whose callee summary contains a rank ≤ R is a deadlock shape \
             SSD904 cannot see — the two acquisitions live in different bodies, potentially \
             several hops apart. The finding names the shortest call path to the offending \
             acquisition. Fix by dropping the guard before the call or hoisting the inner \
             acquisition to the caller; annotate `// lint: allow(lock) — <reason>` at the call \
             site only when the path is provably not concurrent."
        }
        "SSD911" => {
            "SSD911 blocking-under-lock: a blocking primitive — channel .send()/.recv(), \
             JoinHandle::join(), fsync (.sync_data()/.sync_all()), or a WAL .write_all() — is \
             reachable through the call graph from a call made while a LOCK_ORDER lock is held. \
             Holding a mutex across I/O or a rendezvous stalls every other thread that needs \
             that rank, which is precisely the contention the serve crate's hierarchy exists to \
             bound. Release the guard first, or annotate the blocking site itself with \
             `// lint: allow(lock) — <reason>` when it cannot actually block (e.g. an unbounded \
             mpsc send, which only enqueues)."
        }
        "SSD912" => {
            "SSD912 atomic-ordering: every atomic access is keyed by (crate, field) and its \
             `Ordering` arguments collected. `Ordering::Relaxed` provides no happens-before \
             edge, so any Relaxed use on a cross-thread flag must carry a declared reason: \
             `// lint: allow(atomic) — <why relaxed is sound here>`. Mixing Relaxed with \
             stronger orderings on the same flag is called out in the message, since the \
             stronger sites usually mark a synchronization contract the Relaxed site is \
             silently opting out of."
        }
        "SSD913" => {
            "SSD913 publish-before-log: the store's crash-safety argument is the WAL protocol \
             log → fsync → apply → swap. Publishing a new store generation (an assignment \
             through the `current` mutex) without a WAL append AND an fsync earlier in the same \
             body — directly or via callees whose effect summaries carry them — would let a \
             crash lose an acknowledged mutation or expose an unlogged state. Durability \
             effects ignore allow() annotations, so an allowed fsync still counts as evidence; \
             a genuinely volatile publish (e.g. first boot before any WAL exists) is annotated \
             `// lint: allow(durability) — <reason>`."
        }
        "SSD914" => {
            "SSD914 fault-coverage: the crash matrix in tests/crash.rs drives recovery through \
             registered `wal.*` fault points. Every store-crate function performing raw file \
             I/O (write_all, sync_data, set_len, seek, rename, ...) must be reachable from one: \
             either its body checks a `\"wal.…\"` point or a (transitive) caller does, \
             propagated along resolved call edges. An unreachable I/O site is a failure path \
             the matrix can never exercise. Register a fault point on the path, or annotate \
             `// lint: allow(durability) — <reason>` when a crash at the site is benign."
        }
        _ => return None,
    })
}

/// The lint codes, for help output.
pub fn lint_codes() -> Vec<Code> {
    Code::all()
        .iter()
        .copied()
        .filter(|c| c.is_lint())
        .collect()
}

/// `--deny-warnings` verdict: true when the report should fail the build.
pub fn should_fail(report: &Report, deny_warnings: bool) -> bool {
    report.error_count() > 0 || (deny_warnings && !report.findings.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_covers_every_lint_code() {
        for code in lint_codes() {
            assert!(
                explain(code.as_str()).is_some(),
                "no explanation for {code}"
            );
            assert_eq!(
                code.severity() == ssd_diag::Severity::Error,
                code != Code::PanicSite
            );
        }
        assert!(explain("SSD001").is_none());
        assert!(explain("bogus").is_none());
    }
}
