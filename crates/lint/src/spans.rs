//! L5 span-discipline (SSD905): tracing spans are RAII — a span value
//! must be *bound* so its `Drop` (or explicit `.close()`) records the
//! closing event. This pass flags spans discarded at the open site
//! (statement-position `span(..);` or `let _ = span(..)`), detached
//! spans (`open_detached`) with no matching `close_detached` in the
//! same function, and `mem::forget` in library code (which would defeat
//! RAII closing wholesale). It is the static face of the well-
//! formedness property `tests/trace.rs` checks dynamically.

use ssd_diag::{Code, Diagnostic, Span};

use crate::lexer::{line_of, TokKind};
use crate::scan::{functions, Workspace};
use crate::Finding;

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let src = &f.src;
        let toks = &f.toks;
        for info in functions(src, toks) {
            let Some(body) = info.body else { continue };
            let mut first_open: Option<usize> = None;
            let mut opens = 0usize;
            let mut closes = 0usize;
            for j in body.0..=body.1 {
                let t = &toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let next_paren = j < body.1 && toks[j + 1].is_punct(b'(');
                let is_decl = j > 0 && toks[j - 1].is(src, "fn");
                match t.text(src) {
                    "open_detached" if next_paren && !is_decl => {
                        opens += 1;
                        first_open.get_or_insert(j);
                    }
                    "close_detached" if next_paren && !is_decl => closes += 1,
                    "span" if next_paren && !is_decl => {
                        check_discard(f, j, body, out);
                    }
                    "forget"
                        if next_paren
                            && j >= 3
                            && toks[j - 1].is_punct(b':')
                            && toks[j - 2].is_punct(b':')
                            && toks[j - 3].is(src, "mem")
                            && !f.allowed(line_of(src, t.start), "span") =>
                    {
                        out.push(Finding::new(
                            &f.rel,
                            Diagnostic::new(
                                Code::SpanLeak,
                                format!(
                                    "`{}` calls mem::forget, defeating RAII span closing",
                                    info.name
                                ),
                            )
                            .with_span(Span::new(t.start, t.end)),
                        ));
                    }
                    _ => {}
                }
            }
            if opens > 0 && closes == 0 {
                let t = &toks[first_open.unwrap_or(body.0)];
                if !f.allowed(line_of(src, t.start), "span") {
                    out.push(Finding::new(
                        &f.rel,
                        Diagnostic::new(
                            Code::SpanLeak,
                            format!(
                                "`{}` opens a detached span but never calls close_detached",
                                info.name
                            ),
                        )
                        .with_span(Span::new(t.start, t.end))
                        .with_suggestion(
                            "close the span on every path, or annotate \
                             `// lint: allow(span) — <reason>` if another function owns closing",
                        ),
                    ));
                }
            }
        }
    }
}

/// Is the `span(..)` call at token `j` discarded where it is opened?
fn check_discard(
    f: &crate::scan::SourceFile,
    j: usize,
    body: (usize, usize),
    out: &mut Vec<Finding>,
) {
    let src = &f.src;
    let toks = &f.toks;
    // Walk back over the callee chain (`ssd_trace::span`, `t.span`).
    let mut k = j;
    loop {
        if k >= 2 && toks[k - 1].is_punct(b':') && toks[k - 2].is_punct(b':') {
            k -= 2;
            if k > 0 && toks[k - 1].kind == TokKind::Ident {
                k -= 1;
            }
        } else if k >= 1 && toks[k - 1].is_punct(b'.') {
            k -= 1;
            if k > 0 && toks[k - 1].kind == TokKind::Ident {
                k -= 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    if k == 0 || k <= body.0 {
        return;
    }
    let t = &toks[j];
    let line = line_of(src, t.start);
    let prev = &toks[k - 1];
    // `let _ = span(..)`: dropped before the traced work even starts.
    let underscore_bind =
        prev.is_punct(b'=') && k >= 3 && toks[k - 2].is(src, "_") && toks[k - 3].is(src, "let");
    // Statement position with the call's `)` followed directly by `;`:
    // the span closes on the same line it opened.
    let stmt_position = prev.is_punct(b';') || prev.is_punct(b'{') || prev.is_punct(b'}');
    let close = crate::lexer::matching(toks, j + 1);
    let dropped_at_stmt = stmt_position && close < body.1 && toks[close + 1].is_punct(b';');
    if (underscore_bind || dropped_at_stmt) && !f.allowed(line, "span") {
        out.push(Finding::new(
            &f.rel,
            Diagnostic::new(
                Code::SpanLeak,
                "span is dropped at its open site, so it measures nothing",
            )
            .with_span(Span::new(t.start, t.end))
            .with_suggestion(
                "bind it for the traced region (`let _span = span(..);`) instead of discarding it",
            ),
        ));
    }
}
