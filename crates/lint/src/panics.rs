//! L3 panic-sites (SSD903): token-accurate count of `unwrap`/`expect`/
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` outside test code,
//! checked against the per-crate budget file
//! `crates/lint/panic-budgets.txt`. The budget is a ratchet in both
//! directions: going over means a new panic site needs justifying;
//! going under means the budget should be lowered so the slack can't be
//! silently spent later. `// lint: allow(panic) — <reason>` exempts a
//! deliberate site without charging the budget.

use std::collections::BTreeMap;

use ssd_diag::{Code, Diagnostic, Span};

use crate::lexer::{line_of, TokKind};
use crate::scan::Workspace;
use crate::Finding;

const METHODS: &[&str] = &["unwrap", "expect"];
const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

struct Site {
    rel: String,
    line: usize,
    span: Span,
    what: String,
}

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    // Budget file: `crate N` lines, `#` comments.
    let mut budgets: BTreeMap<String, usize> = BTreeMap::new();
    match &ws.budgets {
        None => {
            out.push(Finding::new(
                &ws.budgets_rel,
                Diagnostic::new(
                    Code::PanicSite,
                    format!("panic budget file {} is missing", ws.budgets_rel),
                )
                .with_suggestion("list every crate as `<name> <count>`, one per line"),
            ));
        }
        Some(content) => {
            let mut offset = 0usize;
            for line in content.split_inclusive('\n') {
                let body = line.split('#').next().unwrap_or_default();
                let fields: Vec<&str> = body.split_whitespace().collect();
                match fields.as_slice() {
                    [] => {}
                    [name, n] if n.parse::<usize>().is_ok() => {
                        budgets.insert((*name).to_owned(), n.parse().unwrap_or(0));
                    }
                    _ => {
                        out.push(Finding::new(
                            &ws.budgets_rel,
                            Diagnostic::new(
                                Code::PanicSite,
                                format!("malformed budget line `{}`", body.trim()),
                            )
                            .with_span(Span::new(offset, offset + line.trim_end().len()))
                            .with_suggestion("expected `<crate> <count>`"),
                        ));
                    }
                }
                offset += line.len();
            }
        }
    }

    // Count panic sites per crate over test-elided tokens.
    let mut sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    let mut crates_seen: Vec<String> = Vec::new();
    for f in &ws.files {
        if !crates_seen.contains(&f.krate) {
            crates_seen.push(f.krate.clone());
        }
        let src = &f.src;
        for (i, t) in f.toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let text = t.text(src);
            let next_is = |b: u8| f.toks.get(i + 1).is_some_and(|n| n.is_punct(b));
            let hit = if METHODS.contains(&text) {
                let method_call = i > 0 && f.toks[i - 1].is_punct(b'.') && next_is(b'(');
                // `self.expect(..)` is the parser's own fallible helper,
                // not Option/Result::expect — the old awk gate skipped
                // it too.
                let parser_expect = text == "expect" && i >= 2 && f.toks[i - 2].is(src, "self");
                method_call && !parser_expect
            } else {
                MACROS.contains(&text) && next_is(b'!')
            };
            if !hit {
                continue;
            }
            let line = line_of(src, t.start);
            if f.allowed(line, "panic") {
                continue;
            }
            sites.entry(f.krate.clone()).or_default().push(Site {
                rel: f.rel.clone(),
                line,
                span: Span::new(t.start, t.end),
                what: text.to_owned(),
            });
        }
    }

    // Reconcile counts against budgets.
    for krate in &crates_seen {
        let found = sites.get(krate).map_or(0, Vec::len);
        let Some(&budget) = budgets.get(krate) else {
            if ws.budgets.is_some() {
                out.push(Finding::new(
                    &ws.budgets_rel,
                    Diagnostic::new(
                        Code::PanicSite,
                        format!(
                            "crate `{krate}` has {found} panic site(s) but no entry in {}",
                            ws.budgets_rel
                        ),
                    )
                    .with_suggestion(format!("add `{krate} {found}`")),
                ));
            }
            continue;
        };
        if found > budget {
            let list = sites.get(krate).map(Vec::as_slice).unwrap_or_default();
            let newest = &list[list.len() - 1];
            let examples: Vec<String> = list
                .iter()
                .rev()
                .take(4)
                .map(|s| format!("{}:{} ({})", s.rel, s.line, s.what))
                .collect();
            out.push(Finding::new(
                &newest.rel,
                Diagnostic::new(
                    Code::PanicSite,
                    format!("crate `{krate}` has {found} panic sites, over its budget of {budget}"),
                )
                .with_span(newest.span)
                .with_suggestion(format!(
                    "remove one, annotate `// lint: allow(panic) — <reason>`, or raise the \
                     budget in {}; latest sites: {}",
                    ws.budgets_rel,
                    examples.join(", ")
                )),
            ));
        } else if found < budget {
            out.push(Finding::new(
                &ws.budgets_rel,
                Diagnostic::new(
                    Code::PanicSite,
                    format!(
                        "crate `{krate}` has only {found} panic site(s); ratchet its budget down \
                         from {budget}"
                    ),
                )
                .with_suggestion(format!("set `{krate} {found}` in {}", ws.budgets_rel)),
            ));
        }
    }
    for name in budgets.keys() {
        if !crates_seen.contains(name) {
            out.push(Finding::new(
                &ws.budgets_rel,
                Diagnostic::new(
                    Code::PanicSite,
                    format!("budget entry for `{name}` matches no crate in crates/"),
                ),
            ));
        }
    }
}
