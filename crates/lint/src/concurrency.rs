//! L6–L8 concurrency soundness (SSD910–SSD912), on top of the
//! workspace call graph.
//!
//! * **SSD910** — interprocedural lock-order inversion: a serve-crate
//!   function holds a `LOCK_ORDER` lock across a call whose transitive
//!   callees acquire an equal or outer rank. SSD904 sees only one body
//!   at a time; this pass flows the held set into resolved callees.
//! * **SSD911** — blocking under a lock, one or more calls deep: a
//!   callee reachable from the call site sends/recvs on a channel,
//!   joins a thread, fsyncs, or appends to the WAL.
//! * **SSD912** — atomic-ordering discipline: cross-thread flags must
//!   not use `Ordering::Relaxed` without a declared reason, and mixing
//!   Relaxed with stronger orderings on the same flag is called out.

use std::collections::{BTreeMap, BTreeSet};

use ssd_diag::{Code, Diagnostic, Span};

use crate::callgraph::CallGraph;
use crate::lexer::{line_of, matching, TokKind};
use crate::locks;
use crate::scan::{functions, SourceFile, Workspace};
use crate::Finding;

pub fn run(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    interprocedural(ws, graph, out);
    atomics(ws, out);
}

/// SSD910/SSD911: walk serve-crate bodies with the SSD904 held-set
/// tracker and judge every resolved call made while a lock is held
/// against the callee's transitive summary.
fn interprocedural(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    let serve: Vec<&SourceFile> = ws.files_of("serve").collect();
    let Some(order) = locks::lock_order(&serve) else {
        return; // SSD904 already reports the missing hierarchy
    };
    let file_index: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();
    for f in &serve {
        let fi = file_index[f.rel.as_str()];
        for info in functions(&f.src, &f.toks) {
            let Some(body) = info.body else { continue };
            // Collect (call token, held locks) events first; the walker
            // re-runs the SSD904 analysis into a scratch vec we drop.
            let mut events: Vec<(usize, Vec<(usize, String)>)> = Vec::new();
            let mut scratch = Vec::new();
            locks::check_body(f, &info.name, body, &order, &mut scratch, |j, _, held| {
                if !held.is_empty() {
                    let held: Vec<(usize, String)> =
                        held.iter().map(|h| (h.rank, h.name.clone())).collect();
                    events.push((j, held));
                }
            });
            for (j, held) in events {
                let Some(callee) = graph.callee_at(fi, j) else {
                    continue;
                };
                let t = &f.toks[j];
                if f.allowed(line_of(&f.src, t.start), "lock") {
                    continue;
                }
                let callee_node = &graph.nodes[callee];
                let summary = &callee_node.summary;
                let holding: Vec<&str> = held.iter().map(|(_, n)| n.as_str()).collect();
                // SSD910: the callee (transitively) acquires a rank at
                // or outside one we hold. One finding per site.
                if let Some((rank, name)) = held.iter().find_map(|(hr, hn)| {
                    summary
                        .acquires
                        .iter()
                        .find(|&&r| r <= *hr)
                        .map(|&r| (r, hn.clone()))
                }) {
                    let path = graph
                        .path_to(callee, |n| n.summary.direct_acquires.contains(&rank))
                        .map(|p| graph.path_names(&p))
                        .unwrap_or_else(|| callee_node.name.clone());
                    out.push(Finding::new(
                        &f.rel,
                        Diagnostic::new(
                            Code::InterprocLockInversion,
                            format!(
                                "`{}` holds `{name}` and calls `{}`, which acquires `{}` \
                                 (rank {rank}) via {path}; LOCK_ORDER is {}",
                                info.name,
                                callee_node.name,
                                order[rank],
                                order.join(" → ")
                            ),
                        )
                        .with_span(Span::new(t.start, t.end))
                        .with_suggestion(
                            "drop the guard before the call, hoist the inner acquisition to the \
                             caller, or annotate `// lint: allow(lock) — <reason>`",
                        ),
                    ));
                } else if summary.blocks {
                    // SSD911 (else: an inversion already covers the site).
                    let blocked = graph.path_to(callee, |n| n.summary.direct_blocks.is_some());
                    let path = blocked
                        .as_deref()
                        .map(|p| graph.path_names(p))
                        .unwrap_or_else(|| callee_node.name.clone());
                    let prim = blocked
                        .as_deref()
                        .and_then(|p| p.last())
                        .and_then(|&i| graph.nodes[i].summary.direct_blocks)
                        .map(|b| b.describe())
                        .unwrap_or("a blocking call");
                    out.push(Finding::new(
                        &f.rel,
                        Diagnostic::new(
                            Code::BlockingUnderLock,
                            format!(
                                "`{}` calls `{}` while holding lock(s) {}; {prim} is reachable \
                                 via {path}",
                                info.name,
                                callee_node.name,
                                holding.join(", "),
                            ),
                        )
                        .with_span(Span::new(t.start, t.end))
                        .with_suggestion(
                            "release the guard before the call, or annotate \
                             `// lint: allow(lock) — <reason>` if the callee cannot block here",
                        ),
                    ));
                }
            }
        }
    }
}

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Per-flag record: the `Ordering`s seen, and every Relaxed site as a
/// (file index, op token index) pair.
type FlagUses = (BTreeSet<String>, Vec<(usize, usize)>);

/// SSD912: collect every atomic access keyed by `(crate, receiver)`
/// and flag `Ordering::Relaxed` uses that carry no declared reason.
fn atomics(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut flags: BTreeMap<(String, String), FlagUses> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        let (src, toks) = (&f.src, &f.toks);
        for (j, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !ATOMIC_OPS.contains(&t.text(src))
                || j == 0
                || !toks[j - 1].is_punct(b'.')
                || j + 1 >= toks.len()
                || !toks[j + 1].is_punct(b'(')
            {
                continue;
            }
            // Receiver field: the ident (or tuple index) before the dot.
            let recv = (j >= 2
                && (toks[j - 2].kind == TokKind::Ident || toks[j - 2].kind == TokKind::Num))
                .then(|| toks[j - 2].text(src).to_owned());
            let Some(recv) = recv else { continue };
            // Orderings inside the argument list; none means this is
            // not an atomic op (`Vec::store`, `Read::load`, ...).
            let close = matching(toks, j + 1);
            let mut orderings = Vec::new();
            for k in j + 2..close {
                if toks[k].kind == TokKind::Ident
                    && ORDERINGS.contains(&toks[k].text(src))
                    && k >= 3
                    && toks[k - 1].is_punct(b':')
                    && toks[k - 2].is_punct(b':')
                    && toks[k - 3].is(src, "Ordering")
                {
                    orderings.push((k, toks[k].text(src).to_owned()));
                }
            }
            if orderings.is_empty() {
                continue;
            }
            let entry = flags.entry((f.krate.clone(), recv)).or_default();
            for (_, o) in &orderings {
                entry.0.insert(o.clone());
            }
            if orderings.iter().any(|(_, o)| o == "Relaxed") {
                entry.1.push((fi, j));
            }
        }
    }
    for ((krate, recv), (orders, relaxed_sites)) in &flags {
        for &(fi, j) in relaxed_sites {
            let f = &ws.files[fi];
            let t = &f.toks[j];
            if f.allowed(line_of(&f.src, t.start), "atomic") {
                continue;
            }
            let stronger: Vec<&str> = orders
                .iter()
                .map(String::as_str)
                .filter(|o| *o != "Relaxed")
                .collect();
            let mixing = if stronger.is_empty() {
                String::new()
            } else {
                format!(", mixing with {} elsewhere", stronger.join("/"))
            };
            out.push(Finding::new(
                &f.rel,
                Diagnostic::new(
                    Code::AtomicOrderingUndeclared,
                    format!(
                        "atomic `{recv}` (crate `{krate}`) uses Ordering::Relaxed{mixing} \
                         with no declared reason"
                    ),
                )
                .with_span(Span::new(t.start, t.end))
                .with_suggestion(
                    "use the ordering the flag's cross-thread contract needs, or annotate \
                     `// lint: allow(atomic) — <why relaxed is sound here>`",
                ),
            ));
        }
    }
}
