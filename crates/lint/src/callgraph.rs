//! Workspace call graph with per-function effect summaries, the
//! foundation of the interprocedural SSD91x band.
//!
//! Nodes are the `fn` items of every workspace source file (test code
//! already elided). Call sites resolve by name: a call resolves to the
//! unique function of that name in the caller's crate, or — failing
//! that — to the unique function of that name anywhere in the
//! workspace. Ambiguous names (two `submit`s, three `cancel`s) stay
//! unresolved on purpose: a wrong edge would manufacture findings,
//! a missing edge only loses one.
//!
//! Each node carries a [`Summary`] of its concurrency-relevant
//! effects — hierarchy ranks acquired, blocking primitives called, WAL
//! append/fsync behavior, `wal.*` fault points registered — seeded
//! from its own tokens and propagated caller-ward to a fixpoint. All
//! effects are monotone booleans or sets over a finite domain, so the
//! propagation terminates on any call graph, cycles included.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{line_of, TokKind};
use crate::locks;
use crate::scan::{functions, Workspace};

/// Keywords that may precede `(` without naming a call.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "move", "else", "let",
];

/// What a blocking primitive does, for messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Blocking {
    Send,
    Recv,
    Join,
    Fsync,
    WriteAll,
}

impl Blocking {
    pub fn describe(self) -> &'static str {
        match self {
            Blocking::Send => ".send(..)",
            Blocking::Recv => ".recv(..)",
            Blocking::Join => ".join()",
            Blocking::Fsync => "fsync (.sync_data())",
            Blocking::WriteAll => ".write_all(..)",
        }
    }
}

/// Concurrency/durability effects of one function, direct and
/// propagated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Summary {
    /// LOCK_ORDER ranks this body acquires itself.
    pub direct_acquires: BTreeSet<usize>,
    /// Ranks acquired here or in any transitive callee.
    pub acquires: BTreeSet<usize>,
    /// The blocking primitive this body calls itself, if any.
    pub direct_blocks: Option<Blocking>,
    /// A blocking primitive is reachable from this function.
    pub blocks: bool,
    /// Appends bytes to the WAL (a store-crate `write_all`), directly
    /// or transitively.
    pub appends: bool,
    /// Calls fsync (`sync_data`/`sync_all`), directly or transitively.
    pub fsyncs: bool,
    /// The body checks a `wal.*` fault point (a `"wal.…"` literal).
    pub fault_checked: bool,
}

/// One resolved intra-workspace call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CallSite {
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// Node index of the callee.
    pub callee: usize,
}

pub(crate) struct FnNode {
    /// Index into `ws.files`.
    pub file: usize,
    pub krate: String,
    pub name: String,
    /// Token index of the name ident, for anchoring findings.
    pub name_idx: usize,
    pub body: Option<(usize, usize)>,
    pub calls: Vec<CallSite>,
    pub summary: Summary,
}

pub(crate) struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// (file index, token index of callee name) → callee node index.
    sites: BTreeMap<(usize, usize), usize>,
}

impl CallGraph {
    /// The node a resolved call site points at, if the name resolved.
    pub fn callee_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.sites.get(&(file, tok)).copied()
    }

    /// Shortest call path (BFS, deterministic) from `from` to a node
    /// matching `pred`, as node indices; `None` if unreachable.
    pub fn path_to(&self, from: usize, pred: impl Fn(&FnNode) -> bool) -> Option<Vec<usize>> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if pred(&self.nodes[n]) {
                let mut path = vec![n];
                let mut cur = n;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for cs in &self.nodes[n].calls {
                if seen.insert(cs.callee) {
                    parent.insert(cs.callee, n);
                    queue.push_back(cs.callee);
                }
            }
        }
        None
    }

    /// Render a `path_to` result as "a → b → c".
    pub fn path_names(&self, path: &[usize]) -> String {
        path.iter()
            .map(|&i| self.nodes[i].name.as_str())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Deterministic text rendering of every node, its call edges, and
    /// its fixpoint summary — the oracle the determinism proptest
    /// compares across independent builds.
    pub fn render(&self, ws: &Workspace) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            let s = &n.summary;
            let callees: Vec<&str> = n
                .calls
                .iter()
                .map(|c| self.nodes[c.callee].name.as_str())
                .collect();
            out.push_str(&format!(
                "{}::{} [{}] calls=[{}] acquires={:?} blocks={} appends={} fsyncs={} fault={}\n",
                n.krate,
                n.name,
                ws.files[n.file].rel,
                callees.join(","),
                s.acquires,
                s.blocks,
                s.appends,
                s.fsyncs,
                s.fault_checked,
            ));
        }
        out
    }
}

/// The blocking primitive a `.name(` method call names, if any.
fn blocking_primitive(name: &str, no_args: bool) -> Option<Blocking> {
    match name {
        // JoinHandle::join takes no arguments; slice join takes one.
        "join" if no_args => Some(Blocking::Join),
        "send" => Some(Blocking::Send),
        "recv" | "recv_timeout" | "recv_deadline" => Some(Blocking::Recv),
        "sync_data" | "sync_all" => Some(Blocking::Fsync),
        "write_all" => Some(Blocking::WriteAll),
        _ => None,
    }
}

/// Build the graph: collect nodes, seed direct effects, resolve calls,
/// and propagate summaries to a fixpoint.
pub(crate) fn build(ws: &Workspace, order: Option<&[String]>) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for info in functions(&f.src, &f.toks) {
            nodes.push(FnNode {
                file: fi,
                krate: f.krate.clone(),
                name: info.name,
                name_idx: info.name_idx,
                body: info.body,
                calls: Vec::new(),
                summary: Summary::default(),
            });
        }
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.clone()).or_default().push(i);
    }

    // Seed direct effects and resolve call sites.
    let mut sites: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut seeded: Vec<(Vec<CallSite>, Summary)> = Vec::with_capacity(nodes.len());
    for n in &nodes {
        let Some(body) = n.body else {
            seeded.push((Vec::new(), Summary::default()));
            continue;
        };
        let f = &ws.files[n.file];
        let (src, toks) = (&f.src, &f.toks);
        let mut s = Summary::default();
        let mut calls = Vec::new();
        let mut j = body.0;
        while j <= body.1 {
            let t = &toks[j];
            match t.kind {
                TokKind::Str if t.text(src).starts_with("\"wal.") => {
                    s.fault_checked = true;
                }
                TokKind::Ident => {
                    let next_paren = j < body.1 && toks[j + 1].is_punct(b'(');
                    if !next_paren {
                        j += 1;
                        continue;
                    }
                    let text = t.text(src);
                    let prev_dot = j > body.0 && toks[j - 1].is_punct(b'.');
                    let defines = j > 0 && toks[j - 1].is(src, "fn");
                    let no_args = j + 2 <= body.1 && toks[j + 2].is_punct(b')');
                    if prev_dot && text == "lock" {
                        // An acquisition, not a call; charge the rank.
                        if let Some(order) = order {
                            let (resolved, _) = locks::lock_receiver(src, toks, body, j, order);
                            let rank = resolved.and_then(|r| order.iter().position(|o| o == &r));
                            if let Some(rank) = rank {
                                if !f.allowed(line_of(src, t.start), "lock") {
                                    s.direct_acquires.insert(rank);
                                }
                            }
                        }
                    } else if let Some(prim) = prev_dot
                        .then(|| blocking_primitive(text, no_args))
                        .flatten()
                    {
                        // Durability effects count even when a site is
                        // allow()ed — SSD913 needs them to *pass*; only
                        // the blocking attribution is suppressible.
                        if prim == Blocking::Fsync {
                            s.fsyncs = true;
                        }
                        if prim == Blocking::WriteAll && f.krate == "store" {
                            s.appends = true;
                        }
                        if !f.allowed(line_of(src, t.start), "lock") {
                            s.direct_blocks.get_or_insert(prim);
                        }
                    } else if !defines && !NOT_CALLS.contains(&text) {
                        if let Some(callee) = resolve(&by_name, &nodes, text, &n.krate) {
                            calls.push(CallSite { tok: j, callee });
                            sites.insert((n.file, j), callee);
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        s.acquires = s.direct_acquires.clone();
        s.blocks = s.direct_blocks.is_some();
        seeded.push((calls, s));
    }
    for (n, (calls, summary)) in nodes.iter_mut().zip(seeded) {
        n.calls = calls;
        n.summary = summary;
    }

    // Propagate effects caller-ward to a fixpoint. Monotone over a
    // finite lattice, so this terminates even on recursive graphs.
    loop {
        let mut changed = false;
        for i in 0..nodes.len() {
            let callees: Vec<usize> = nodes[i].calls.iter().map(|c| c.callee).collect();
            for callee in callees {
                if callee == i {
                    continue;
                }
                let cs = nodes[callee].summary.clone();
                let s = &mut nodes[i].summary;
                let before = s.acquires.len();
                s.acquires.extend(cs.acquires.iter().copied());
                changed |= s.acquires.len() != before;
                for (mine, theirs) in [
                    (&mut s.blocks, cs.blocks),
                    (&mut s.appends, cs.appends),
                    (&mut s.fsyncs, cs.fsyncs),
                ] {
                    if theirs && !*mine {
                        *mine = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    CallGraph { nodes, sites }
}

fn resolve(
    by_name: &BTreeMap<String, Vec<usize>>,
    nodes: &[FnNode],
    name: &str,
    krate: &str,
) -> Option<usize> {
    let cands = by_name.get(name)?;
    let same: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].krate == krate)
        .collect();
    match (same.len(), cands.len()) {
        (1, _) => Some(same[0]),
        (0, 1) => Some(cands[0]),
        _ => None,
    }
}
