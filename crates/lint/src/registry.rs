//! L1 registry-sync (SSD901): the SSD diagnostic registry in
//! `crates/diag` must agree with the documentation tables in
//! `docs/LANGUAGE.md`/`docs/SERVING.md` and be exercised by the test
//! suite — every defined code documented exactly once, tested at least
//! once, no duplicate or phantom codes, no gaps inside a band.

use ssd_diag::{Code, Diagnostic, Span};

use crate::lexer::TokKind;
use crate::scan::Workspace;
use crate::Finding;

const DIAG_REL: &str = "crates/diag/src/lib.rs";

/// One `Code::Variant => "SSDxxx"` arm from the registry.
struct Defined {
    code: String,
    variant: String,
    span: Span,
}

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(diag) = ws.files.iter().find(|f| f.rel == DIAG_REL) else {
        out.push(Finding::new(
            DIAG_REL,
            Diagnostic::new(
                Code::RegistryDrift,
                "diagnostic registry crates/diag/src/lib.rs not found",
            ),
        ));
        return;
    };
    let src = &diag.src;
    let toks = &diag.toks;
    let mut defined: Vec<Defined> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Str {
            continue;
        }
        let text = t.text(src);
        // `"SSDxxx"` as the right-hand side of a `Code::Variant =>` arm.
        let is_code = text.len() == 8
            && text.starts_with("\"SSD")
            && text.ends_with('"')
            && text[4..7].bytes().all(|b| b.is_ascii_digit());
        if !is_code || i < 6 {
            continue;
        }
        let arm = toks[i - 1].is_punct(b'>')
            && toks[i - 2].is_punct(b'=')
            && toks[i - 3].kind == TokKind::Ident
            && toks[i - 4].is_punct(b':')
            && toks[i - 5].is_punct(b':')
            && toks[i - 6].is(src, "Code");
        if arm {
            defined.push(Defined {
                code: text[1..7].to_owned(),
                variant: toks[i - 3].text(src).to_owned(),
                span: Span::new(t.start + 1, t.end - 1),
            });
        }
    }
    if defined.is_empty() {
        out.push(Finding::new(
            DIAG_REL,
            Diagnostic::new(
                Code::RegistryDrift,
                "no `Code::Variant => \"SSDxxx\"` arms found in the diagnostic registry",
            ),
        ));
        return;
    }

    // Duplicate definitions.
    for (i, d) in defined.iter().enumerate() {
        if defined[..i].iter().any(|p| p.code == d.code) {
            out.push(Finding::new(
                DIAG_REL,
                Diagnostic::new(
                    Code::RegistryDrift,
                    format!("{} is defined more than once in the registry", d.code),
                )
                .with_span(d.span),
            ));
        }
    }

    // Documentation rows: `| SSDxxx ...` table lines in the docs.
    // (rel, byte offset of the code text, code)
    let mut rows: Vec<(String, usize, String)> = Vec::new();
    for (rel, content) in &ws.docs {
        let mut offset = 0usize;
        for line in content.split_inclusive('\n') {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix('|') {
                let cell = rest.trim_start();
                if cell.len() >= 6
                    && cell.starts_with("SSD")
                    && cell[3..6].bytes().all(|b| b.is_ascii_digit())
                    && !cell[6..].starts_with(|c: char| c.is_ascii_alphanumeric())
                {
                    let at = offset + (line.len() - trimmed.len()) + (rest.len() - cell.len()) + 1;
                    rows.push((rel.clone(), at, cell[..6].to_owned()));
                }
            }
            offset += line.len();
        }
    }
    if ws.docs.is_empty() {
        out.push(Finding::new(
            DIAG_REL,
            Diagnostic::new(
                Code::RegistryDrift,
                "neither docs/LANGUAGE.md nor docs/SERVING.md was found; the registry has no documented bands",
            ),
        ));
    }
    for d in &defined {
        let count = rows.iter().filter(|(_, _, c)| c == &d.code).count();
        if count == 0 {
            out.push(Finding::new(
                DIAG_REL,
                Diagnostic::new(
                    Code::RegistryDrift,
                    format!(
                        "{} ({}) has no row in the docs/LANGUAGE.md / docs/SERVING.md code tables",
                        d.code, d.variant
                    ),
                )
                .with_span(d.span)
                .with_suggestion(format!(
                    "add a `| {} | ... |` row to the band table documenting this code",
                    d.code
                )),
            ));
        } else if count > 1 {
            let places: Vec<&str> = rows
                .iter()
                .filter(|(_, _, c)| c == &d.code)
                .map(|(rel, _, _)| rel.as_str())
                .collect();
            out.push(Finding::new(
                DIAG_REL,
                Diagnostic::new(
                    Code::RegistryDrift,
                    format!(
                        "{} is documented {count} times ({}); each code gets exactly one row",
                        d.code,
                        places.join(", ")
                    ),
                )
                .with_span(d.span),
            ));
        }
    }
    // Phantom rows: documented codes with no defining variant.
    for (rel, at, code) in &rows {
        if !defined.iter().any(|d| &d.code == code) {
            out.push(Finding::new(
                rel,
                Diagnostic::new(
                    Code::RegistryDrift,
                    format!("{code} is documented here but no Code variant defines it"),
                )
                .with_span(Span::new(*at, *at + 6)),
            ));
        }
    }

    // Test coverage: the literal code or its variant name in tests/.
    for d in &defined {
        let covered = ws
            .tests
            .iter()
            .any(|(_, t)| t.contains(&d.code) || t.contains(&d.variant));
        if !covered {
            out.push(Finding::new(
                DIAG_REL,
                Diagnostic::new(
                    Code::RegistryDrift,
                    format!(
                        "no test under tests/ references {} (literal or Code::{})",
                        d.code, d.variant
                    ),
                )
                .with_span(d.span)
                .with_suggestion(
                    "every diagnostic code needs at least one integration test exercising it",
                ),
            ));
        }
    }

    // Band contiguity: within each decade, defined numbers are contiguous.
    let mut nums: Vec<u32> = defined
        .iter()
        .filter_map(|d| d.code[3..6].parse().ok())
        .collect();
    nums.sort_unstable();
    nums.dedup();
    for decade in nums
        .iter()
        .map(|n| n / 10)
        .collect::<std::collections::BTreeSet<u32>>()
    {
        let band: Vec<u32> = nums.iter().copied().filter(|n| n / 10 == decade).collect();
        let (lo, hi) = (band[0], band[band.len() - 1]);
        let missing: Vec<String> = (lo..=hi)
            .filter(|n| !band.contains(n))
            .map(|n| format!("SSD{n:03}"))
            .collect();
        if !missing.is_empty() {
            out.push(Finding::new(
                DIAG_REL,
                Diagnostic::new(
                    Code::RegistryDrift,
                    format!(
                        "band SSD{lo:03}–SSD{hi:03} has gaps: {} missing; renumber or fill the band",
                        missing.join(", ")
                    ),
                ),
            ));
        }
    }
}
