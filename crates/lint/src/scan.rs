//! Workspace loading and shared token-level analyses: file discovery,
//! function extraction, and the `// lint: allow(...)` escape hatch.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok, TokKind};

/// One lexed `.rs` file under `crates/*/src`.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Crate directory name (`query`, `serve`, ...).
    pub krate: String,
    pub src: String,
    /// Tokens with `#[cfg(test)]` / `#[test]` items elided; lints see
    /// only shipping code. Spans still index the original source.
    pub toks: Vec<Tok>,
    /// `lint: allow(...)` annotations, keyed by 1-based line.
    pub allows: BTreeMap<usize, Allow>,
}

impl SourceFile {
    /// Is `kind` allowed for a site on `line`? An annotation counts on
    /// the same line (trailing comment) or the line above.
    pub fn allowed(&self, line: usize, kind: &str) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|a| a.has_reason && a.kinds.iter().any(|k| k == kind))
        })
    }
}

/// A parsed `// lint: allow(kind, ...) — reason` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    pub kinds: Vec<String>,
    /// Annotations without a reason are inert and reported.
    pub has_reason: bool,
    /// Byte span of the comment, for reporting malformed annotations.
    pub start: usize,
    pub end: usize,
}

/// Everything a lint pass may look at.
pub struct Workspace {
    pub root: PathBuf,
    /// `crates/*/src/**/*.rs`, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `(rel, content)` for the documentation registry files.
    pub docs: Vec<(String, String)>,
    /// `(rel, content)` for `tests/*.rs` at the workspace root.
    pub tests: Vec<(String, String)>,
    /// Relative path of the panic-budget file (whether or not present).
    pub budgets_rel: String,
    pub budgets: Option<String>,
}

impl Workspace {
    pub fn files_of<'a>(&'a self, krate: &'a str) -> impl Iterator<Item = &'a SourceFile> + 'a {
        self.files.iter().filter(move |f| f.krate == krate)
    }

    /// Every source loaded, for rendering findings against any file.
    pub fn sources(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        for f in &self.files {
            map.insert(f.rel.clone(), f.src.clone());
        }
        for (rel, src) in self.docs.iter().chain(&self.tests) {
            map.insert(rel.clone(), src.clone());
        }
        if let Some(b) = &self.budgets {
            map.insert(self.budgets_rel.clone(), b.clone());
        }
        map
    }
}

/// Load and lex the workspace rooted at `root`. Missing pieces (no
/// docs, no tests, no budget file) load as empty/None — the lints
/// report them; loading never fails on them.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; is it a workspace root?",
            root.display()
        ));
    }
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let krate = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut rs = Vec::new();
        collect_rs(&dir.join("src"), &mut rs);
        rs.sort();
        for path in rs {
            let src =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            files.push(lex_file(rel_of(root, &path), krate.clone(), src));
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut docs = Vec::new();
    for name in ["docs/LANGUAGE.md", "docs/SERVING.md"] {
        if let Ok(content) = fs::read_to_string(root.join(name)) {
            docs.push((name.to_owned(), content));
        }
    }
    let mut tests = Vec::new();
    if let Ok(rd) = fs::read_dir(root.join("tests")) {
        let mut paths: Vec<PathBuf> = rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        paths.sort();
        for p in paths {
            if let Ok(content) = fs::read_to_string(&p) {
                tests.push((rel_of(root, &p), content));
            }
        }
    }
    let budgets_rel = "crates/lint/panic-budgets.txt".to_owned();
    let budgets = fs::read_to_string(root.join(&budgets_rel)).ok();
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        docs,
        tests,
        budgets_rel,
        budgets,
    })
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn lex_file(rel: String, krate: String, src: String) -> SourceFile {
    let lexed = lexer::lex(&src);
    let toks = lexer::elide_tests(&src, &lexed.toks);
    let mut allows = BTreeMap::new();
    for c in &lexed.comments {
        let text = &src[c.start..c.end];
        if let Some(a) = parse_allow(text, c.start, c.end) {
            allows.insert(lexer::line_of(&src, c.start), a);
        }
    }
    SourceFile {
        rel,
        krate,
        src,
        toks,
        allows,
    }
}

/// Parse `lint: allow(kind, ...) — reason` out of one comment. The
/// annotation must start the comment (after the `//` / `/*` marker), so
/// prose *mentioning* the syntax — docs, this file — is never an
/// annotation.
fn parse_allow(comment: &str, start: usize, end: usize) -> Option<Allow> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches(['*', '!'])
        .trim_start();
    let after = body.strip_prefix("lint:")?.trim_start();
    let rest = after.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let kinds: Vec<String> = rest[..close]
        .split(',')
        .map(|k| k.trim().to_owned())
        .filter(|k| !k.is_empty())
        .collect();
    let reason = rest[close + 1..]
        .trim_start_matches(['*', '/'])
        .trim_start_matches(|c: char| c.is_whitespace() || "—–-:".contains(c));
    Some(Allow {
        kinds,
        has_reason: reason.trim().len() >= 3,
        start,
        end,
    })
}

/// One `fn` item (or nested fn) found in a token stream.
pub struct FnInfo {
    pub name: String,
    pub is_pub: bool,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Token range of the parameter list, `(` to `)` inclusive.
    pub params: (usize, usize),
    /// Token range of the body, `{` to `}` inclusive; `None` for
    /// trait-method declarations ending in `;`.
    pub body: Option<(usize, usize)>,
}

/// Extract every `fn` item from a (test-elided) token stream. Token
/// pattern matching only: enough to attribute lint findings to the
/// right function and walk its body.
pub fn functions(src: &str, toks: &[Tok]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is(src, "fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name_idx = i + 1;
        let name = toks[name_idx].text(src).to_owned();
        // Parameter list: first `(` outside the generic parameter
        // brackets. `->` inside generics (Fn bounds) must not close `<`.
        let mut j = name_idx + 1;
        let mut angle = 0i32;
        let mut popen = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct(b'<') => angle += 1,
                TokKind::Punct(b'>') if angle > 0 => angle -= 1,
                TokKind::Punct(b'-') if j + 1 < toks.len() && toks[j + 1].is_punct(b'>') => j += 1,
                TokKind::Punct(b'(') if angle == 0 => {
                    popen = Some(j);
                    break;
                }
                TokKind::Punct(b'{') | TokKind::Punct(b';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(popen) = popen else {
            i = name_idx + 1;
            continue;
        };
        let pclose = lexer::matching(toks, popen);
        // Body: first `{` at bracket depth 0 past the return type /
        // where clause; a `;` first means a bodyless declaration.
        let mut k = pclose + 1;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut body = None;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'<') if depth == 0 => angle += 1,
                TokKind::Punct(b'>') if depth == 0 && angle > 0 => angle -= 1,
                TokKind::Punct(b'-') if k + 1 < toks.len() && toks[k + 1].is_punct(b'>') => k += 1,
                TokKind::Punct(b'{') if depth == 0 && angle == 0 => {
                    body = Some((k, lexer::matching(toks, k)));
                    break;
                }
                TokKind::Punct(b';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        // Visibility: `pub` (optionally `pub(crate)` etc.) before the
        // `fn`, looking back over `const`/`async`/`unsafe`/`extern "C"`.
        let mut v = i;
        while v > 0 {
            let p = &toks[v - 1];
            if p.is(src, "const")
                || p.is(src, "async")
                || p.is(src, "unsafe")
                || p.is(src, "extern")
                || p.kind == TokKind::Str
            {
                v -= 1;
            } else {
                break;
            }
        }
        let is_pub = if v > 0 && toks[v - 1].is_punct(b')') {
            let mut d = 0i32;
            let mut w = v - 1;
            loop {
                if toks[w].is_punct(b')') {
                    d += 1;
                } else if toks[w].is_punct(b'(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if w == 0 {
                    break;
                }
                w -= 1;
            }
            w > 0 && toks[w - 1].is(src, "pub")
        } else {
            v > 0 && toks[v - 1].is(src, "pub")
        };
        out.push(FnInfo {
            name,
            is_pub,
            name_idx,
            params: (popen, pclose),
            body,
        });
        i = name_idx + 1;
    }
    out
}

/// Does a token range mention any of `idents` (as whole identifiers)?
pub fn range_mentions(src: &str, toks: &[Tok], range: (usize, usize), idents: &[&str]) -> bool {
    toks[range.0..=range.1.min(toks.len().saturating_sub(1))]
        .iter()
        .any(|t| idents.iter().any(|w| t.is(src, w)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        lex_file("x.rs".into(), "x".into(), src.to_owned())
    }

    #[test]
    fn extracts_functions_with_generics_and_bounds() {
        let f = file(
            "pub fn plain(a: u8) -> u8 { a }\n\
             fn generic<F: Fn(&u8) -> bool>(f: F) -> Vec<u8> where F: Clone { vec![] }\n\
             pub(crate) fn scoped() {}\n\
             trait T { fn decl(&self); }",
        );
        let fns = functions(&f.src, &f.toks);
        let names: Vec<(&str, bool, bool)> = fns
            .iter()
            .map(|i| (i.name.as_str(), i.is_pub, i.body.is_some()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("plain", true, true),
                ("generic", false, true),
                ("scoped", true, true),
                ("decl", false, false),
            ]
        );
        // The generic fn's params are the `(f: F)` group, not `(&u8)`.
        let g = &fns[1];
        assert_eq!(f.toks[g.params.0 + 1].text(&f.src), "f");
    }

    #[test]
    fn allow_annotations_need_reasons() {
        let f = file(
            "fn a() {} // lint: allow(panic) — checked above\n\
             fn b() {} // lint: allow(lock)\n\
             fn c() {} // lint: allow(guard, span): shared reason\n",
        );
        assert!(f.allowed(1, "panic"));
        assert!(!f.allowed(1, "lock"));
        assert!(!f.allowed(2, "lock"), "reasonless allow must be inert");
        assert!(f.allowed(3, "guard"));
        assert!(f.allowed(3, "span"));
        // Line-above application.
        let g = file("// lint: allow(panic) — next line\nfn d() {}\n");
        assert!(g.allowed(2, "panic"));
    }
}
