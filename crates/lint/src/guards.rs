//! L2 guard-threading (SSD902): every public evaluator entry point in
//! `crates/query`/`crates/triples` must have a governed variant
//! (`*_guarded`/`*_with`/`*_traced`, or take `Guard`/`EvalOptions`
//! itself), and code already running under a `Guard` must never call
//! back into an ungoverned wrapper — that would evaluate outside the
//! fuel/memory/deadline envelope the caller was given.

use std::collections::BTreeSet;

use ssd_diag::{Code, Diagnostic, Span};

use crate::lexer::{line_of, TokKind};
use crate::scan::{functions, range_mentions, Workspace};
use crate::Finding;

const SCOPE: &[&str] = &["query", "triples"];
/// Entry-point name prefixes (whole word or `prefix_...`).
const PREFIXES: &[&str] = &["evaluate", "eval", "gext", "ext"];
/// Suffixes marking a fn as itself the governed variant.
const GOVERNED_SUFFIX: &[&str] = &["_guarded", "_with", "_traced"];
/// Parameter types that carry governance.
const GOVERNING_TYPES: &[&str] = &["Guard", "EvalOptions"];

fn is_entry_name(name: &str) -> bool {
    PREFIXES.iter().any(|p| {
        name == *p
            || name
                .strip_prefix(p)
                .is_some_and(|rest| rest.starts_with('_'))
    })
}

fn has_governed_suffix(name: &str) -> bool {
    GOVERNED_SUFFIX.iter().any(|s| name.ends_with(s))
}

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    // Pass 1: collect every fn in scope, globally (siblings may live in
    // another file of the same crate pair).
    let mut all_names: BTreeSet<String> = BTreeSet::new();
    for f in ws
        .files
        .iter()
        .filter(|f| SCOPE.contains(&f.krate.as_str()))
    {
        for info in functions(&f.src, &f.toks) {
            all_names.insert(info.name);
        }
    }

    // Pass 2: entry-point coverage, and remember the bare wrappers —
    // ungoverned entry points whose governed sibling exists.
    let mut bare: BTreeSet<String> = BTreeSet::new();
    for f in ws
        .files
        .iter()
        .filter(|f| SCOPE.contains(&f.krate.as_str()))
    {
        for info in functions(&f.src, &f.toks) {
            if !info.is_pub || !is_entry_name(&info.name) || has_governed_suffix(&info.name) {
                continue;
            }
            if range_mentions(&f.src, &f.toks, info.params, GOVERNING_TYPES) {
                continue; // governed by its own signature
            }
            let sibling = GOVERNED_SUFFIX
                .iter()
                .find(|s| all_names.contains(&format!("{}{}", info.name, s)));
            if let Some(s) = sibling {
                let _ = s;
                bare.insert(info.name.clone());
                continue;
            }
            let t = &f.toks[info.name_idx];
            if f.allowed(line_of(&f.src, t.start), "guard") {
                continue;
            }
            out.push(Finding::new(
                &f.rel,
                Diagnostic::new(
                    Code::GuardBypass,
                    format!(
                        "public evaluator entry point `{}` has no governed variant",
                        info.name
                    ),
                )
                .with_span(Span::new(t.start, t.end))
                .with_suggestion(format!(
                    "add `{}_guarded(.., &Guard)` (or take Guard/EvalOptions here), or annotate \
                     `// lint: allow(guard) — <reason>`",
                    info.name
                )),
            ));
        }
    }

    // Pass 3: no governed fn calls back into a bare wrapper.
    for f in ws
        .files
        .iter()
        .filter(|f| SCOPE.contains(&f.krate.as_str()))
    {
        for info in functions(&f.src, &f.toks) {
            let Some(body) = info.body else { continue };
            if !range_mentions(&f.src, &f.toks, info.params, GOVERNING_TYPES) {
                continue; // not running under a guard; wrappers may call wrappers
            }
            for j in body.0..=body.1 {
                let t = &f.toks[j];
                if t.kind != TokKind::Ident || !bare.contains(t.text(&f.src)) {
                    continue;
                }
                let calls = j < body.1 && f.toks[j + 1].is_punct(b'(');
                if !calls {
                    continue;
                }
                let prev = &f.toks[j - 1];
                if prev.is(&f.src, "fn") || prev.is_punct(b'.') {
                    continue; // a definition, or a method on some other type
                }
                let line = line_of(&f.src, t.start);
                if f.allowed(line, "guard") {
                    continue;
                }
                let name = t.text(&f.src);
                out.push(Finding::new(
                    &f.rel,
                    Diagnostic::new(
                        Code::GuardBypass,
                        format!(
                            "`{}` runs under a Guard but calls ungoverned `{}`",
                            info.name, name
                        ),
                    )
                    .with_span(Span::new(t.start, t.end))
                    .with_suggestion(format!(
                        "call the governed sibling (e.g. `{name}_guarded`) and thread the Guard through"
                    )),
                ));
            }
        }
    }
}
