//! L9–L10 durability discipline (SSD913/SSD914) over the store crate.
//!
//! * **SSD913** — publish-before-log: the store's commit protocol is
//!   *log → fsync → apply → swap*. Any assignment to the generation
//!   pointer (`…current… = …`) must be preceded, on the same path,
//!   by a WAL append and an fsync — directly or via callees whose
//!   summaries carry those effects.
//! * **SSD914** — fault-site coverage: every function in the store
//!   crate that performs raw I/O must be reachable from a registered
//!   `wal.*` fault point (contain one, or be called — transitively —
//!   by a function that does), so the crash matrix keeps exercising
//!   every failure path as the store grows.

use ssd_diag::{Code, Diagnostic, Span};

use crate::callgraph::CallGraph;
use crate::lexer::{line_of, TokKind};
use crate::scan::Workspace;
use crate::Finding;

const STORE: &str = "store";

/// Raw I/O primitives whose failure paths the fault matrix must reach.
const RAW_IO: &[&str] = &[
    "write_all",
    "sync_data",
    "sync_all",
    "set_len",
    "seek",
    "read",
    "read_exact",
    "read_to_string",
    "metadata",
    "create_dir_all",
    "rename",
    "remove_file",
];

/// Method-chain tokens allowed between the `current` field and its
/// assignment (`*lock(&self.current) = db`, `*self.current.lock() = db`).
const CHAIN_IDENTS: &[&str] = &["lock", "unwrap", "expect", "write", "borrow_mut", "get_mut"];

pub fn run(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    publishes(ws, graph, out);
    coverage(ws, graph, out);
}

/// SSD913: find generation publishes and check the append+fsync
/// evidence earlier on the same body.
fn publishes(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    for n in graph.nodes.iter().filter(|n| n.krate == STORE) {
        let Some(body) = n.body else { continue };
        let f = &ws.files[n.file];
        let (src, toks) = (&f.src, &f.toks);
        for j in body.0..=body.1 {
            let t = &toks[j];
            // A publish: `.current`, then an optional method chain,
            // then `=` (assignment, not `==`; struct-literal `current:`
            // and plain reads never match).
            if !(t.is(src, "current") && j > body.0 && toks[j - 1].is_punct(b'.')) {
                continue;
            }
            let mut k = j + 1;
            while k <= body.1 {
                let c = &toks[k];
                let chain = c.is_punct(b'(')
                    || c.is_punct(b')')
                    || c.is_punct(b'.')
                    || (c.kind == TokKind::Ident && CHAIN_IDENTS.contains(&c.text(src)));
                if chain {
                    k += 1;
                } else {
                    break;
                }
            }
            let assigns = k <= body.1
                && toks[k].is_punct(b'=')
                && !(k < body.1 && toks[k + 1].is_punct(b'='));
            if !assigns {
                continue;
            }
            // Evidence before the publish: WAL append + fsync, direct
            // or through a resolved callee's summary.
            let (mut append, mut fsync) = (false, false);
            for e in body.0..j {
                let et = &toks[e];
                if et.kind != TokKind::Ident || e >= body.1 || !toks[e + 1].is_punct(b'(') {
                    continue;
                }
                match et.text(src) {
                    "write_all" => append = true,
                    "sync_data" | "sync_all" => fsync = true,
                    _ => {
                        if let Some(c) = graph.callee_at(n.file, e) {
                            let cs = &graph.nodes[c].summary;
                            append |= cs.appends;
                            fsync |= cs.fsyncs;
                        }
                    }
                }
            }
            if append && fsync {
                continue;
            }
            if f.allowed(line_of(src, t.start), "durability") {
                continue;
            }
            let missing = if !append && !fsync {
                "a WAL append or an fsync"
            } else if !append {
                "a WAL append"
            } else {
                "an fsync"
            };
            out.push(Finding::new(
                &f.rel,
                Diagnostic::new(
                    Code::PublishBeforeLog,
                    format!(
                        "`{}` publishes a new store generation without {missing} earlier on \
                         the same path; the commit protocol is log → fsync → apply → swap",
                        n.name
                    ),
                )
                .with_span(Span::new(t.start, t.end))
                .with_suggestion(
                    "append the op + COMMIT frames and fsync the WAL before swapping the \
                     generation, or annotate `// lint: allow(durability) — <reason>`",
                ),
            ));
        }
    }
}

/// SSD914: propagate fault-point coverage from functions that register
/// a `wal.*` point down their call edges, then flag store functions
/// doing raw I/O that no fault point reaches.
fn coverage(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    if !graph.nodes.iter().any(|n| n.krate == STORE) {
        return;
    }
    let mut covered: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| n.summary.fault_checked)
        .collect();
    loop {
        let mut changed = false;
        for (i, n) in graph.nodes.iter().enumerate() {
            if !covered[i] {
                continue;
            }
            for cs in &n.calls {
                if !covered[cs.callee] {
                    covered[cs.callee] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.krate != STORE || covered[i] {
            continue;
        }
        let Some(body) = n.body else { continue };
        let f = &ws.files[n.file];
        let (src, toks) = (&f.src, &f.toks);
        let mut prims: Vec<&str> = Vec::new();
        for j in body.0..body.1 {
            let t = &toks[j];
            let io = t.kind == TokKind::Ident
                && RAW_IO.contains(&t.text(src))
                && toks[j + 1].is_punct(b'(')
                && j > body.0
                && (toks[j - 1].is_punct(b'.') || toks[j - 1].is_punct(b':'));
            if io && !prims.contains(&t.text(src)) {
                prims.push(t.text(src));
            }
        }
        if prims.is_empty() {
            continue;
        }
        let name_tok = &toks[n.name_idx];
        if f.allowed(line_of(src, name_tok.start), "durability") {
            continue;
        }
        out.push(Finding::new(
            &f.rel,
            Diagnostic::new(
                Code::FaultCoverageGap,
                format!(
                    "`{}` performs raw I/O ({}) that no registered `wal.*` fault point \
                     reaches; the crash matrix cannot exercise this path",
                    n.name,
                    prims.join(", ")
                ),
            )
            .with_span(Span::new(name_tok.start, name_tok.end))
            .with_suggestion(
                "check a faults.hit(\"wal.…\") point on this path, or annotate \
                 `// lint: allow(durability) — <reason>` if a crash here is benign",
            ),
        ));
    }
}
