//! A small token-level Rust lexer — just enough surface syntax to run
//! workspace lints without `syn` (the build is hermetic/offline).
//!
//! It produces identifier, literal, and punctuation tokens with byte
//! spans into the original source, records comments separately (the
//! allow-annotation escape hatch lives in comments), and can elide
//! `#[cfg(test)]` / `#[test]` items so lints see only the code that
//! ships. It is deliberately *not* a parser: brace matching and a few
//! token-pattern scans are all the structure the lints need.

/// What a token is. Punctuation is one byte per token (`=>` is `=`
/// then `>`); the lints match multi-byte operators as sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Single punctuation byte.
    Punct(u8),
}

/// One token, spanning `start..end` bytes of the source.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
}

impl Tok {
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    pub fn is(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }

    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// A comment with its byte span (text includes the `//` / `/* */`).
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    pub start: usize,
    pub end: usize,
}

/// Lexed file: tokens (comments stripped) plus the comments themselves.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lex `src`. Unterminated constructs consume to end of file rather
/// than erroring: a lint must never panic on the code it inspects.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { start, end: i });
                continue;
            }
            if b[i + 1] == b'*' {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment { start, end: i });
                continue;
            }
        }
        // Raw / byte string prefixes: r"", r#""#, br"", b"", b''.
        if (c == b'r' || c == b'b') && i + 1 < b.len() {
            let (raw_at, is_raw) = if c == b'r' {
                (i + 1, true)
            } else if b[i + 1] == b'r' {
                (i + 2, i + 2 < b.len())
            } else {
                (i + 1, false)
            };
            if is_raw && raw_at < b.len() && (b[raw_at] == b'#' || b[raw_at] == b'"') {
                let start = i;
                let mut j = raw_at;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        start,
                        end: j,
                    });
                    i = j;
                    continue;
                }
            }
            if c == b'b' && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
                let quote = b[i + 1];
                let start = i;
                let mut j = i + 2;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == quote {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: if quote == b'"' {
                        TokKind::Str
                    } else {
                        TokKind::Char
                    },
                    start,
                    end: j.min(b.len()),
                });
                i = j.min(b.len());
                continue;
            }
        }
        if c == b'"' {
            let start = i;
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                start,
                end: j.min(b.len()),
            });
            i = j.min(b.len());
            continue;
        }
        if c == b'\'' {
            // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
            let mut j = i + 1;
            let is_lifetime = j < b.len()
                && (b[j].is_ascii_alphabetic() || b[j] == b'_')
                && b[j] != b'\\'
                && !(j + 1 < b.len() && b[j + 1] == b'\'');
            if is_lifetime {
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start: i,
                    end: j,
                });
                i = j;
                continue;
            }
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'\'' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                start: i,
                end: j.min(b.len()),
            });
            i = j.min(b.len());
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                start,
                end: i,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            // Fractional part only when a digit follows the dot, so
            // `1.max(2)` stays three tokens.
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                start,
                end: i,
            });
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct(c),
            start: i,
            end: i + 1,
        });
        i += 1;
    }
    out
}

/// Index of the token matching the opener at `open` (`{`→`}`, `(`→`)`,
/// `[`→`]`), or `toks.len() - 1` if unbalanced.
pub fn matching(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].kind {
        TokKind::Punct(b'{') => (b'{', b'}'),
        TokKind::Punct(b'(') => (b'(', b')'),
        TokKind::Punct(b'[') => (b'[', b']'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Drop every token belonging to a `#[cfg(test)]`- or `#[test]`-
/// annotated item (attribute included). The item is the attribute's
/// target: everything up to the end of the next brace-matched block,
/// or the next top-level `;` for block-less items.
pub fn elide_tests(src: &str, toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct(b'#') && i + 1 < toks.len() && toks[i + 1].is_punct(b'[') {
            let close = matching(toks, i + 1);
            let attr = &toks[i + 2..close];
            let is_test_attr = attr.first().is_some_and(|t| t.is(src, "test"))
                || (attr.len() >= 4
                    && attr[0].is(src, "cfg")
                    && attr[1].is_punct(b'(')
                    && attr.iter().any(|t| t.is(src, "test")));
            if is_test_attr {
                // Skip this attribute, any further attributes, then the
                // annotated item itself.
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].is_punct(b'#') && toks[j + 1].is_punct(b'[') {
                    j = matching(toks, j + 1) + 1;
                }
                let mut depth_pa = 0i32;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth_pa += 1,
                        TokKind::Punct(b')') | TokKind::Punct(b']') => depth_pa -= 1,
                        TokKind::Punct(b'{') if depth_pa == 0 => {
                            j = matching(toks, j);
                            break;
                        }
                        TokKind::Punct(b';') if depth_pa == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        out.push(toks[i]);
        i += 1;
    }
    out
}

/// 1-based line number of byte offset `pos`.
pub fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .map(|t| format!("{:?}:{}", t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn strings_comments_and_lifetimes() {
        let src = r##"fn f<'a>(x: &'a str) { // panic!(
            let _s = "has .unwrap() inside";
            let _r = r#"raw "panic!" text"#;
            let _c = 'x'; /* unreachable!( */
        }"##;
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        let text: Vec<&str> = lx.toks.iter().map(|t| t.text(src)).collect();
        assert!(text.contains(&"'a"));
        assert!(text.contains(&"'x'"));
        // Nothing inside strings or comments surfaced as tokens.
        assert!(!text.contains(&"unwrap"));
        assert!(!text.contains(&"panic"));
        assert!(!text.contains(&"unreachable"));
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let k = kinds("1.max(2) + 1.5");
        assert!(k[0].starts_with("Num:1"), "{k:?}");
        assert!(k.iter().any(|t| t == "Ident:max"), "{k:?}");
        assert!(k.iter().any(|t| t == "Num:1.5"), "{k:?}");
    }

    #[test]
    fn elides_cfg_test_modules_and_test_fns() {
        let src = "fn keep() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn gone() { b.unwrap(); } }\n\
                   #[test]\nfn also_gone() { c.unwrap(); }\n\
                   fn keep2() {}";
        let lx = lex(src);
        let kept = elide_tests(src, &lx.toks);
        let names: Vec<&str> = kept
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"keep2"));
        assert!(!names.contains(&"gone"));
        assert!(!names.contains(&"also_gone"));
        assert_eq!(names.iter().filter(|n| **n == "unwrap").count(), 1);
    }

    #[test]
    fn matching_braces() {
        let src = "fn f(a: (u8, u8)) { if x { y(); } }";
        let lx = lex(src);
        let open = lx.toks.iter().position(|t| t.is_punct(b'{')).unwrap();
        let close = matching(&lx.toks, open);
        assert_eq!(lx.toks[close].kind, TokKind::Punct(b'}'));
        assert_eq!(close, lx.toks.len() - 1);
    }
}
