//! L4 lock-order (SSD904): `crates/serve` declares its lock hierarchy
//! as `LOCK_ORDER` in `src/lib.rs`; this pass extracts every `.lock()`
//! acquisition per function, tracks how long each guard is held
//! (let-binding → scope end or `drop(x)`; temporary → end of
//! statement), and flags (a) locks not in the declared hierarchy,
//! (b) nested acquisition out of hierarchy order (including
//! re-acquiring the same rank), and (c) blocking operations —
//! `JoinHandle::join()`, channel `.send(..)`/`.recv(..)` — while any
//! lock is held. The analysis here is intraprocedural; the same
//! held-set walker feeds the interprocedural SSD910/SSD911 checks in
//! `concurrency.rs` via the `at_call` hook of [`check_body`].

use ssd_diag::{Code, Diagnostic, Span};

use crate::lexer::{line_of, Tok, TokKind};
use crate::scan::{functions, SourceFile, Workspace};
use crate::Finding;

const SERVE_LIB: &str = "crates/serve/src/lib.rs";

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let serve: Vec<&SourceFile> = ws.files_of("serve").collect();
    if serve.is_empty() {
        return;
    }
    let Some(order) = lock_order(&serve) else {
        out.push(Finding::new(
            SERVE_LIB,
            Diagnostic::new(
                Code::LockOrderViolation,
                "crates/serve declares no LOCK_ORDER hierarchy in src/lib.rs",
            )
            .with_suggestion(
                "declare `pub const LOCK_ORDER: &[&str] = &[\"outermost\", ..];` naming every \
                 Mutex field in acquisition order",
            ),
        ));
        return;
    };
    for f in &serve {
        for info in functions(&f.src, &f.toks) {
            let Some(body) = info.body else { continue };
            check_body(f, &info.name, body, &order, out, |_, _, _| {});
        }
    }
}

/// Parse `LOCK_ORDER: &[&str] = &["a", "b", ...]` from serve's lib.rs.
pub(crate) fn lock_order(serve: &[&SourceFile]) -> Option<Vec<String>> {
    let lib = serve.iter().find(|f| f.rel == SERVE_LIB)?;
    let toks = &lib.toks;
    let at = toks.iter().position(|t| t.is(&lib.src, "LOCK_ORDER"))?;
    let mut names = Vec::new();
    for t in &toks[at..] {
        if t.kind == TokKind::Str {
            let text = t.text(&lib.src);
            names.push(text.trim_matches('"').to_owned());
        } else if t.is_punct(b';') {
            break;
        } else if t.is(&lib.src, "str") {
            continue; // the `&[&str]` type annotation
        }
    }
    (!names.is_empty()).then_some(names)
}

/// The hierarchy for a whole workspace, if its serve crate declares one.
pub(crate) fn lock_order_of(ws: &Workspace) -> Option<Vec<String>> {
    let serve: Vec<&SourceFile> = ws.files_of("serve").collect();
    lock_order(&serve)
}

/// One lock currently held while walking a function body.
pub(crate) struct Held {
    pub rank: usize,
    pub name: String,
    /// `Some(var)` for `let var = ..lock()..`, `None` for a temporary.
    pub var: Option<String>,
    /// Brace depth at acquisition; lets release when depth drops below,
    /// temporaries at the `;` ending their statement (or a `}` closing
    /// a block they were the tail expression of).
    pub depth: i32,
}

/// Walk one function body tracking held locks, emitting the SSD904
/// findings into `out`. `at_call` fires for every call site
/// (`name(..)` or `.name(..)`, excluding `.lock()` acquisitions and
/// `drop(x)`) with the token index of the callee name and the locks
/// held at that point — the hook the interprocedural checks build on.
pub(crate) fn check_body(
    f: &SourceFile,
    fn_name: &str,
    body: (usize, usize),
    order: &[String],
    out: &mut Vec<Finding>,
    mut at_call: impl FnMut(usize, bool, &[Held]),
) {
    let src = &f.src;
    let toks = &f.toks;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut j = body.0;
    while j <= body.1 {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                // Let-bound guards and block-tail temporaries alike die
                // when their block does.
                held.retain(|h| depth >= h.depth);
            }
            TokKind::Punct(b';') => {
                held.retain(|h| h.var.is_some() || depth != h.depth);
            }
            TokKind::Ident => {
                let text = t.text(src);
                let prev_dot = j > body.0 && toks[j - 1].is_punct(b'.');
                let next_paren = j < body.1 && toks[j + 1].is_punct(b'(');
                if text == "lock" && prev_dot && next_paren {
                    acquire(f, fn_name, body, j, depth, order, &mut held, out);
                } else if text == "drop"
                    && next_paren
                    && j + 3 <= body.1
                    && toks[j + 2].kind == TokKind::Ident
                    && toks[j + 3].is_punct(b')')
                {
                    let var = toks[j + 2].text(src);
                    held.retain(|h| h.var.as_deref() != Some(var));
                } else if next_paren {
                    if prev_dot && !held.is_empty() {
                        let blocking = match text {
                            // JoinHandle::join takes no arguments; slice
                            // join (`parts.join(", ")`) always takes one.
                            "join" => j + 2 <= body.1 && toks[j + 2].is_punct(b')'),
                            "send" | "recv" | "recv_timeout" | "recv_deadline" => true,
                            _ => false,
                        };
                        if blocking && !f.allowed(line_of(src, t.start), "lock") {
                            let holding: Vec<&str> = held.iter().map(|h| h.name.as_str()).collect();
                            out.push(Finding::new(
                                &f.rel,
                                Diagnostic::new(
                                    Code::LockOrderViolation,
                                    format!(
                                        "`{fn_name}` calls blocking `.{text}(..)` while holding \
                                         lock(s) {}",
                                        holding.join(", ")
                                    ),
                                )
                                .with_span(Span::new(t.start, t.end))
                                .with_suggestion(
                                    "release the guard first (`drop(guard)`) or move the blocking \
                                     call out of the critical section",
                                ),
                            ));
                        }
                    }
                    at_call(j, prev_dot, &held);
                }
            }
            _ => {}
        }
        j += 1;
    }
}

/// Resolve the receiver of the `.lock()` whose `lock` ident is `toks[j]`.
///
/// Returns `(resolved, display)`: a plain field chain
/// (`self.inner.state.lock()`) resolves to its trailing field name; a
/// chain through calls (`self.state_cell().lock()`) renders the whole
/// chain as `display` and resolves to the innermost chain identifier
/// that names a hierarchy lock, when one exists.
pub(crate) fn lock_receiver(
    src: &str,
    toks: &[Tok],
    body: (usize, usize),
    j: usize,
    order: &[String],
) -> (Option<String>, String) {
    if j >= 2 && toks[j - 2].kind == TokKind::Ident {
        let recv = toks[j - 2].text(src);
        return (Some(recv.to_owned()), recv.to_owned());
    }
    if j < 2 || !toks[j - 2].is_punct(b')') {
        return (None, String::new());
    }
    // Walk the receiver chain backwards from the `.` before `lock`,
    // skipping over `(..)` groups so `self.cell().lock()` resolves as
    // one chain rather than stopping at the `)`.
    let mut k = j - 1;
    while k > body.0 {
        let p = &toks[k - 1];
        match p.kind {
            TokKind::Ident | TokKind::Num | TokKind::Punct(b'.') | TokKind::Punct(b':') => k -= 1,
            TokKind::Punct(b')') => {
                let mut d = 0i32;
                let mut m = k - 1;
                loop {
                    if toks[m].is_punct(b')') {
                        d += 1;
                    } else if toks[m].is_punct(b'(') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    if m == body.0 {
                        break;
                    }
                    m -= 1;
                }
                if d != 0 {
                    break;
                }
                k = m;
            }
            _ => break,
        }
    }
    if k >= j - 1 {
        return (None, String::new());
    }
    let display = src[toks[k].start..toks[j - 1].start].trim().to_owned();
    let resolved = toks[k..j - 1]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .rfind(|name| order.iter().any(|o| o == name))
        .map(str::to_owned);
    (resolved, display)
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    f: &SourceFile,
    fn_name: &str,
    body: (usize, usize),
    j: usize,
    depth: i32,
    order: &[String],
    held: &mut Vec<Held>,
    out: &mut Vec<Finding>,
) {
    let src = &f.src;
    let toks = &f.toks;
    let t = &toks[j];
    let line = line_of(src, t.start);
    // Receiver: the identifier before `.lock()` — for a field chain
    // like `self.inner.state.lock()` that is the field name `state` —
    // or, for a chain through calls, the hierarchy name the chain
    // resolves to (`self.state_cell().lock()` → `state` if named).
    let (resolved, display) = lock_receiver(src, toks, body, j, order);
    let Some(recv) = resolved else {
        if !f.allowed(line, "lock") {
            let what = if display.is_empty() {
                "an expression".to_owned()
            } else {
                format!("`{display}`")
            };
            out.push(Finding::new(
                &f.rel,
                Diagnostic::new(
                    Code::LockOrderViolation,
                    format!(
                        "`{fn_name}` calls .lock() on {what}; name the mutex so the \
                             hierarchy applies"
                    ),
                )
                .with_span(Span::new(t.start, t.end)),
            ));
        }
        return;
    };
    let Some(rank) = order.iter().position(|n| n == &recv) else {
        if !f.allowed(line, "lock") {
            out.push(Finding::new(
                &f.rel,
                Diagnostic::new(
                    Code::LockOrderViolation,
                    format!("mutex `{recv}` is not in the LOCK_ORDER hierarchy"),
                )
                .with_span(Span::new(t.start, t.end))
                .with_suggestion(format!(
                    "add \"{recv}\" to LOCK_ORDER in {SERVE_LIB} at its acquisition position"
                )),
            ));
        }
        return;
    };
    for h in held.iter() {
        if rank <= h.rank && !f.allowed(line, "lock") {
            let via = if display == recv {
                String::new()
            } else {
                format!(" via `{display}.lock()`")
            };
            out.push(Finding::new(
                &f.rel,
                Diagnostic::new(
                    Code::LockOrderViolation,
                    format!(
                        "`{fn_name}` acquires `{recv}` (rank {rank}){via} while holding `{}` \
                         (rank {}); LOCK_ORDER is {}",
                        h.name,
                        h.rank,
                        order.join(" → ")
                    ),
                )
                .with_span(Span::new(t.start, t.end))
                .with_suggestion("acquire locks in hierarchy order, or drop the outer guard first"),
            ));
        }
    }
    // Binding: the guard is let-bound only when the lock chain is the
    // *direct* right-hand side of a `let` (`let g = self.state.lock()…`).
    // A chain nested inside a call (`mem::take(&mut *self.m.lock())`)
    // yields a temporary guard that dies at the statement's `;`, even
    // though the statement is a let.
    let mut var = None;
    let mut root = j - 1; // the `.` before `lock`
    while root > body.0 {
        let p = &toks[root - 1];
        if p.kind == TokKind::Ident || p.is_punct(b'.') || p.is_punct(b':') {
            root -= 1;
        } else {
            break;
        }
    }
    let mut r = root;
    while r > body.0
        && (toks[r - 1].is_punct(b'&') || toks[r - 1].is_punct(b'*') || toks[r - 1].is(src, "mut"))
    {
        r -= 1;
    }
    if r > body.0 && toks[r - 1].is_punct(b'=') {
        let mut k = r - 1;
        while k > body.0 {
            k -= 1;
            match toks[k].kind {
                TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => break,
                TokKind::Ident if toks[k].is(src, "let") => {
                    let mut v = k + 1;
                    if v < toks.len() && toks[v].is(src, "mut") {
                        v += 1;
                    }
                    if v < toks.len() && toks[v].kind == TokKind::Ident {
                        var = Some(toks[v].text(src).to_owned());
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    held.push(Held {
        rank,
        name: recv,
        var,
        depth,
    });
}
