//! The scenario catalog: the mixed op classes `ssd bench` replays.
//!
//! Shaped by the pattern-mode taxonomy of GQL-style query workloads:
//! joins (conjunctive select), point σ-label lookups, fixed-length
//! regular path expressions, recursive closure (datalog), durable
//! write transactions, and mid-flight cancellation. Every op text is a
//! pure function of `(config, op index)`, so two runs with the same
//! seed submit byte-identical work.

use crate::gen::GenConfig;
use ssd_serve::sched::JobKind;

/// One scenario class. `All` fans out across every class in a fixed
/// interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Conjunctive select joining Title × Director over every movie.
    SelectJoin,
    /// Point lookup of one generated title (σ on a value label).
    SigmaLookup,
    /// 3-step regular path expression (`Entry.Movie.Title`).
    Rpe3,
    /// Datalog transitive closure over the `References` chains.
    DatalogClosure,
    /// Durable INSERT/DELETE batches committed through the store.
    WriteTxn,
    /// An expensive full-reachability job cancelled mid-flight.
    Cancel,
}

/// All classes, in the interleaving order of the mixed run.
pub const ALL: [Scenario; 6] = [
    Scenario::SelectJoin,
    Scenario::SigmaLookup,
    Scenario::Rpe3,
    Scenario::DatalogClosure,
    Scenario::WriteTxn,
    Scenario::Cancel,
];

impl Scenario {
    pub fn name(self) -> &'static str {
        match self {
            Scenario::SelectJoin => "select_join",
            Scenario::SigmaLookup => "sigma_lookup",
            Scenario::Rpe3 => "rpe3",
            Scenario::DatalogClosure => "datalog_closure",
            Scenario::WriteTxn => "write_txn",
            Scenario::Cancel => "cancel",
        }
    }

    pub fn from_name(name: &str) -> Option<Scenario> {
        ALL.into_iter().find(|s| s.name() == name)
    }

    pub fn kind(self) -> JobKind {
        match self {
            Scenario::SelectJoin | Scenario::SigmaLookup => JobKind::Query,
            Scenario::Rpe3 => JobKind::Rpe,
            Scenario::DatalogClosure | Scenario::Cancel => JobKind::Datalog,
            Scenario::WriteTxn => JobKind::Commit,
        }
    }

    /// Ops of this class in one mixed run at `scale`. Whole-graph scans
    /// (joins, closure) are dear and get few reps; point ops are cheap
    /// and get many. Tuned so the 10^6 mixed run finishes in minutes on
    /// one core.
    pub fn ops_at(self, scale: u64) -> u64 {
        let big = scale >= 200_000;
        match self {
            Scenario::SelectJoin => {
                if big {
                    4
                } else {
                    8
                }
            }
            Scenario::SigmaLookup => 64,
            Scenario::Rpe3 => {
                if big {
                    16
                } else {
                    32
                }
            }
            Scenario::DatalogClosure => 4,
            Scenario::WriteTxn => 32,
            Scenario::Cancel => 8,
        }
    }

    /// The job text for op `i` of this class. For [`Scenario::Cancel`]
    /// the submitted job is the text; the cancellation itself is issued
    /// by the driver right after.
    pub fn text(self, cfg: &GenConfig, i: u64) -> String {
        match self {
            Scenario::SelectJoin => "select {t: T, d: D} \
                 from db.Entry.Movie M, M.Title T, M.Director D \
                 where exists M.Cast"
                .to_string(),
            Scenario::SigmaLookup => {
                // Hit a different generated movie each op; titles come
                // from the same pure function the generator used.
                let movie = (i * 977) % cfg.movies();
                format!(
                    "select X from db.Entry.Movie.Title.\"{}\" X",
                    cfg.title_of(movie)
                )
            }
            Scenario::Rpe3 => "Entry.Movie.Title".to_string(),
            Scenario::DatalogClosure => "reach(X, Y) :- edge(X, 'References', Y).\n\
                 reach(X, Z) :- reach(X, Y), edge(Y, 'References', Z)."
                .to_string(),
            Scenario::WriteTxn => {
                let mut txn = ssd_store::Txn::new().insert(&format!(
                    "{{BenchW: {{Run: {{Seq: {i}, Tag: \"w{}\"}}}}}}",
                    cfg.seed
                ));
                if i % 8 == 7 {
                    // Periodically clear the accumulated bench edges so
                    // the graph does not drift across ops.
                    txn = txn.delete("BenchW");
                }
                txn.to_script()
            }
            Scenario::Cancel => "reach(X) :- root(X).\n\
                 reach(Y) :- reach(X), edge(X, _L, Y)."
                .to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
        }
        assert_eq!(Scenario::from_name("nope"), None);
    }

    #[test]
    fn texts_are_deterministic() {
        let cfg = GenConfig::new(5_000, 7);
        for s in ALL {
            assert_eq!(s.text(&cfg, 3), s.text(&cfg, 3));
        }
    }
}
