//! The unified `BENCH_workload.json` artifact and the regression
//! checker that compares a fresh run against a committed baseline.
//!
//! Schema envelope (shared with every other BENCH artifact):
//! `{"experiment", "schema_version", "host_cores", ...payload}`. The
//! payload carries the generator identity (scale, seed, fingerprint),
//! the replay determinism witness, per-scenario latency/throughput
//! rows, and the sampled telemetry timeline — the per-PR perf
//! trajectory in one machine-readable file.

use ssd_diag::{Code, Diagnostic};

use crate::driver::DriveReport;
use crate::gen::GenConfig;
use crate::json::Json;
use crate::replay::ReplayReport;

/// Schema version of `BENCH_workload.json`; bump on breaking changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Everything one `ssd bench` run produced.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub cfg: GenConfig,
    pub scenario: String,
    pub host_cores: u64,
    pub movies: u64,
    pub nodes: u64,
    pub edges: u64,
    pub graph_fingerprint: u64,
    pub gen_ms: u64,
    pub load_ms: u64,
    pub replay: ReplayReport,
    pub drive: DriveReport,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchReport {
    /// Render the artifact. Hand-rolled like every other report in the
    /// workspace — stable key order, no serializer dependency.
    pub fn to_json(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.drive.scenarios {
            let completed = s.latency.count();
            let throughput = completed * 1000 / self.drive.wall_ms.max(1);
            rows.push(format!(
                "    {{\"name\": \"{}\", \"ops\": {}, \"completed\": {completed}, \
                 \"rejected\": {}, \"errors\": {}, \"p50_us\": {}, \"p90_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {}, \"mean_us\": {}, \
                 \"throughput_ops_s\": {throughput}}}",
                s.scenario.name(),
                s.ops,
                s.rejected,
                s.errors,
                s.latency.percentile(50),
                s.latency.percentile(90),
                s.latency.percentile(99),
                s.latency.max(),
                s.latency.mean(),
            ));
        }
        let mut timeline = Vec::new();
        for t in &self.drive.timeline {
            timeline.push(format!(
                "    {{\"t_ms\": {}, \"queue_depth\": {}, \"admitted\": {}, \
                 \"rejected\": {}, \"completed\": {}, \"fuel_spent\": {}, \
                 \"fuel_estimated\": {}, \"generation_lag\": {}}}",
                t.t_ms,
                t.queue_depth,
                t.admitted,
                t.rejected,
                t.completed,
                t.fuel_spent,
                t.fuel_estimated,
                t.generation_lag
            ));
        }
        let m = &self.drive.metrics;
        let total_completed: u64 = self.drive.scenarios.iter().map(|s| s.latency.count()).sum();
        format!(
            "{{\n  \"experiment\": \"E21\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \
             \"host_cores\": {},\n  \"scale\": {},\n  \"seed\": {},\n  \
             \"scenario\": \"{}\",\n  \
             \"graph\": {{\"movies\": {}, \"nodes\": {}, \"edges\": {}, \
             \"fingerprint\": \"{:#018x}\", \"gen_ms\": {}, \"load_ms\": {}}},\n  \
             \"replay\": {{\"trace_fingerprint\": \"{:#018x}\", \"trace_len\": {}, \
             \"dispatched\": {}, \"queued\": {}, \"rejected\": {}, \"cancelled\": {}}},\n  \
             \"scenarios\": [\n{}\n  ],\n  \
             \"timeline\": [\n{}\n  ],\n  \
             \"totals\": {{\"wall_ms\": {}, \"ops\": {}, \"completed\": {total_completed}, \
             \"errors\": {}, \"throughput_ops_s\": {}, \"fuel_spent\": {}, \
             \"fuel_estimated\": {}, \"queue_peak\": {}, \"sched_p99_us\": {}}}\n}}\n",
            self.host_cores,
            self.cfg.scale,
            self.cfg.seed,
            esc(&self.scenario),
            self.movies,
            self.nodes,
            self.edges,
            self.graph_fingerprint,
            self.gen_ms,
            self.load_ms,
            self.replay.trace_fingerprint,
            self.replay.trace_len,
            self.replay.dispatched,
            self.replay.queued,
            self.replay.rejected,
            self.replay.cancelled,
            rows.join(",\n"),
            timeline.join(",\n"),
            self.drive.wall_ms,
            self.drive.total_ops,
            self.drive.total_errors(),
            total_completed * 1000 / self.drive.wall_ms.max(1),
            m.counters.fuel_spent,
            m.counters.fuel_estimated,
            m.queue_peak,
            m.latency.percentile(99),
        )
    }
}

/// Latency regressions beyond this factor fail the gate (generous, to
/// absorb CI noise).
pub const TOLERANCE: u64 = 3;
/// p99s below this many µs are never compared — at that magnitude the
/// factor is all scheduler jitter.
pub const P99_FLOOR_US: u64 = 2_000;
/// Per-scenario throughputs below this (ops/s) are skipped likewise.
pub const THROUGHPUT_FLOOR: u64 = 5;

/// Compare a fresh report against a committed baseline (both JSON
/// texts). Returns diagnostics: SSD060 for scenario errors in the
/// fresh run, SSD061 for regressions beyond [`TOLERANCE`], SSD062
/// (warning) when the baseline is not comparable.
pub fn check_against_baseline(fresh: &str, baseline: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Ok(fresh) = Json::parse(fresh) else {
        out.push(Diagnostic::new(
            Code::BaselineMismatch,
            "fresh bench report is not valid JSON".to_string(),
        ));
        return out;
    };

    // Fresh-run scenario errors fail regardless of any baseline.
    for row in fresh.path(&["scenarios"]).as_array() {
        let name = row.path(&["name"]).as_str().unwrap_or("?").to_string();
        let errors = row.path(&["errors"]).as_u64().unwrap_or(0);
        if errors > 0 {
            out.push(Diagnostic::new(
                Code::WorkloadScenarioFailed,
                format!("scenario {name}: {errors} op(s) failed unexpectedly"),
            ));
        }
    }

    let Ok(base) = Json::parse(baseline) else {
        out.push(Diagnostic::new(
            Code::BaselineMismatch,
            "baseline is not valid JSON; skipping regression comparison".to_string(),
        ));
        return out;
    };
    for key in ["schema_version", "scale", "seed", "scenario"] {
        let (f, b) = (fresh.path(&[key]), base.path(&[key]));
        if f != b {
            out.push(Diagnostic::new(
                Code::BaselineMismatch,
                format!(
                    "baseline {key} ({}) differs from fresh run ({}); \
                     skipping regression comparison",
                    b.render_short(),
                    f.render_short()
                ),
            ));
            return out;
        }
    }

    for brow in base.path(&["scenarios"]).as_array() {
        let name = brow.path(&["name"]).as_str().unwrap_or("?").to_string();
        if name == "cancel" {
            // A cancel op's latency measures the race between the cancel
            // token and a fast completion — per-run noise, not a
            // regression signal — so the class is exempt from the gate.
            // (Its op failures still raise SSD060 in the fresh-run pass.)
            continue;
        }
        let Some(frow) = fresh
            .path(&["scenarios"])
            .as_array()
            .iter()
            .find(|r| r.path(&["name"]).as_str() == Some(&name))
        else {
            out.push(Diagnostic::new(
                Code::BaselineMismatch,
                format!("scenario {name} is in the baseline but not the fresh run"),
            ));
            continue;
        };
        let (bp99, fp99) = (
            brow.path(&["p99_us"]).as_u64().unwrap_or(0),
            frow.path(&["p99_us"]).as_u64().unwrap_or(0),
        );
        if fp99 > P99_FLOOR_US && bp99 > 0 && fp99 > bp99.saturating_mul(TOLERANCE) {
            out.push(Diagnostic::new(
                Code::PerfRegression,
                format!("scenario {name}: p99 {fp99} µs exceeds {TOLERANCE}× baseline {bp99} µs"),
            ));
        }
        let (bth, fth) = (
            brow.path(&["throughput_ops_s"]).as_u64().unwrap_or(0),
            frow.path(&["throughput_ops_s"]).as_u64().unwrap_or(0),
        );
        if bth > THROUGHPUT_FLOOR && fth < bth / TOLERANCE {
            out.push(Diagnostic::new(
                Code::PerfRegression,
                format!(
                    "scenario {name}: throughput {fth} ops/s is below baseline \
                     {bth} ops/s / {TOLERANCE}"
                ),
            ));
        }
    }
    out
}
