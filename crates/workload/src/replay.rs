//! Deterministic replay: the same mixed op sequence the live driver
//! submits, driven against the *pure* [`Scheduler`] state machine under
//! a [`ManualClock`] and synthetic per-scenario cost/duration models.
//!
//! Nothing here touches wall time, threads, or the engine: arrivals,
//! dispatches, completions, and cancellations are simulated as a
//! discrete-event loop, so the scheduler's full decision trace
//! (`Vec<TraceEvent>`) is a pure function of the config. Two replays
//! with the same seed produce *identical* traces — that equality is the
//! determinism witness `ssd bench` fingerprints into its artifact, and
//! the contract the proptests pin.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use ssd_guard::{CostEnvelope, Interval};
use ssd_serve::sched::{Decision, Dequeued, FinishKind, JobId, Scheduler, Ticket};
use ssd_serve::{ManualClock, SessionQuota};

use crate::driver::{bench_quota, op_sequence, DriveConfig};
use crate::gen::{fnv1a, GenConfig};
use crate::scenario::Scenario;

/// Synthetic cost model: `(estimated fuel, simulated duration µs)` per
/// scenario. Values only need to be fixed, plausible, and diverse
/// enough to exercise dispatch, queueing, and rejection paths.
fn model(s: Scenario) -> (u64, u64) {
    match s {
        Scenario::SelectJoin => (2_000_000, 20_000),
        Scenario::SigmaLookup => (50_000, 1_000),
        Scenario::Rpe3 => (100_000, 2_000),
        Scenario::DatalogClosure => (5_000_000, 50_000),
        Scenario::WriteTxn => (20_000, 500),
        Scenario::Cancel => (10_000_000, 100_000),
    }
}

/// Simulated arrival spacing: one op per millisecond of manual time —
/// faster than the 2-worker service rate, so queues form and overflow
/// deterministically.
const ARRIVAL_SPACING_US: u64 = 1_000;

/// Replay outcome: decision counts plus the trace fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    pub dispatched: u64,
    pub queued: u64,
    pub rejected: u64,
    pub cancelled: u64,
    pub trace_len: usize,
    /// FNV-1a over the debug rendering of every trace event, in order —
    /// equal fingerprints ⇔ equal decision traces (modulo hashing).
    pub trace_fingerprint: u64,
}

/// Run the deterministic replay for `cfg`'s op sequence.
pub fn replay(cfg: &GenConfig, dcfg: &DriveConfig, only: Option<Scenario>) -> ReplayReport {
    let ops = op_sequence(cfg, only);
    let clock = Arc::new(ManualClock::new());
    let mut sched = Scheduler::new(dcfg.workers, dcfg.queue_cap, clock.clone());
    let quota: SessionQuota = bench_quota(dcfg);
    let sessions: Vec<_> = (0..dcfg.sessions.max(1))
        .map(|_| sched.open_session(quota.clone()))
        .collect();

    // Discrete-event state: running jobs finish at a simulated instant.
    let mut finishes: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut running: HashMap<JobId, (u64, FinishKind)> = HashMap::new(); // fuel, kind
    let mut report = ReplayReport {
        dispatched: 0,
        queued: 0,
        rejected: 0,
        cancelled: 0,
        trace_len: 0,
        trace_fingerprint: 0,
    };

    let mut now = 0u64;
    let start_running = |ticket: &Ticket,
                         now: u64,
                         finishes: &mut BinaryHeap<Reverse<(u64, u64)>>,
                         running: &mut HashMap<JobId, (u64, FinishKind)>| {
        // The replay encodes the scenario in the job text (`name#n`) so
        // dequeued tickets get their own class's cost model back.
        let name = ticket.text.split('#').next().unwrap_or("");
        let scenario = Scenario::from_name(name).expect("replay text names its scenario");
        let (fuel, dur) = model(scenario);
        finishes.push(Reverse((now + dur, ticket.job.0)));
        running.insert(
            ticket.job,
            (fuel.min(ticket.grant_fuel), FinishKind::Completed),
        );
    };

    for (n, (scenario, _i)) in ops.iter().enumerate() {
        let arrival = n as u64 * ARRIVAL_SPACING_US;
        // Retire every finish due before this arrival, in time order.
        while let Some(&Reverse((t, jid))) = finishes.peek() {
            if t > arrival {
                break;
            }
            finishes.pop();
            let job = JobId(jid);
            if t > now {
                clock.advance(t - now);
                now = t;
            }
            let (fuel, kind) = running.remove(&job).expect("running job");
            for d in sched.complete(job, fuel, 0, kind) {
                if let Dequeued::Dispatch(ticket) = d {
                    report.dispatched += 1;
                    start_running(&ticket, now, &mut finishes, &mut running);
                }
            }
        }
        if arrival > now {
            clock.advance(arrival - now);
            now = arrival;
        }
        let session = sessions[n % sessions.len()];
        let (est_fuel, _) = model(*scenario);
        let envelope = CostEnvelope {
            cardinality: Interval::exact(1),
            fuel: Interval::exact(est_fuel),
            memory: Interval::exact(4096),
        };
        let text = format!("{}#{n}", scenario.name());
        match sched.submit(session, scenario.kind(), text, envelope) {
            Decision::Dispatch(ticket) => {
                report.dispatched += 1;
                start_running(&ticket, now, &mut finishes, &mut running);
                if *scenario == Scenario::Cancel {
                    // Mid-flight cancel: the token fires, the simulated
                    // worker reports a cancelled finish shortly after.
                    if sched.cancel(session, ticket.job).unwrap_or(false) {
                        report.cancelled += 1;
                        if let Some(r) = running.get_mut(&ticket.job) {
                            r.1 = FinishKind::Cancelled;
                        }
                    }
                }
            }
            Decision::Queued { job, .. } => {
                report.queued += 1;
                if *scenario == Scenario::Cancel {
                    // Queued cancel: the scheduler evicts it; there is
                    // no finish to simulate.
                    if sched.cancel(session, job).is_ok() {
                        report.cancelled += 1;
                    }
                }
            }
            Decision::Rejected(_) => report.rejected += 1,
        }
    }

    // Drain everything still in flight.
    while let Some(Reverse((t, jid))) = finishes.pop() {
        if t > now {
            clock.advance(t - now);
            now = t;
        }
        let job = JobId(jid);
        let (fuel, kind) = running.remove(&job).expect("running job");
        for d in sched.complete(job, fuel, 0, kind) {
            if let Dequeued::Dispatch(ticket) = d {
                report.dispatched += 1;
                start_running(&ticket, now, &mut finishes, &mut running);
            }
        }
    }
    for s in sessions {
        sched.close_session(s);
    }

    let trace = sched.trace();
    report.trace_len = trace.len();
    report.trace_fingerprint = trace.iter().fold(0xcbf2_9ce4_8422_2325, |h, ev| {
        fnv1a(h, format!("{ev:?}").as_bytes())
    });
    report
}
