//! The open-loop serve driver: replays a mixed op sequence against a
//! real [`Server`] at a configured arrival rate with session churn,
//! recording per-op client latency into log-bucketed histograms plus a
//! periodic timeline of queue depth, admission outcomes, fuel
//! spent-vs-estimated, and snapshot-generation lag.
//!
//! *Open loop* means arrivals are scheduled by the clock, not gated on
//! completions: the submit loop never waits for a job, so queueing and
//! rejection behaviour under overload is actually exercised. Waiting is
//! delegated to a pool of waiter threads, each with its **own** channel
//! (a shared receiver would mean blocking `recv()` under a lock);
//! completed ops fold into per-scenario [`Histogram`]s behind a mutex
//! held only for the O(1) record.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use ssd_serve::metrics::Histogram;
use ssd_serve::server::{Server, SubmitError};
use ssd_serve::SessionQuota;

use crate::gen::{GenConfig, SplitMix64};
use crate::scenario::{Scenario, ALL};

/// Driver knobs. The defaults are what `ssd bench` uses unless flags
/// override them.
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// Server worker threads.
    pub workers: usize,
    /// Server run-queue bound.
    pub queue_cap: usize,
    /// Target arrival rate in ops/second; 0 = submit as fast as
    /// possible (the queue and admission control take the strain).
    pub rate: u64,
    /// Concurrent sessions ops are spread across (round-robin).
    pub sessions: usize,
    /// Retire the oldest session and open a fresh one every this many
    /// ops (0 = no churn). Retired handles stay alive until the final
    /// drain so their in-flight jobs finish undisturbed.
    pub churn_every: u64,
    /// Timeline sampling interval.
    pub sample_every_ms: u64,
}

impl Default for DriveConfig {
    fn default() -> DriveConfig {
        DriveConfig {
            workers: 2,
            queue_cap: 32,
            rate: 0,
            sessions: 4,
            churn_every: 40,
            sample_every_ms: 100,
        }
    }
}

/// The quota bench sessions run under: unmetered session totals with a
/// per-job ceiling far above any scenario's envelope, and enough
/// concurrency headroom that admission outcomes reflect the shared run
/// queue rather than a per-session cap.
pub fn bench_quota(cfg: &DriveConfig) -> SessionQuota {
    SessionQuota {
        fuel: None,
        memory: None,
        max_concurrent: cfg.workers + cfg.queue_cap,
        job_fuel: 4_000_000_000,
        job_memory: 1 << 30,
    }
}

/// Per-scenario outcome of a drive.
#[derive(Debug, Clone)]
pub struct ScenarioStats {
    pub scenario: Scenario,
    /// Ops submitted (including rejected ones).
    pub ops: u64,
    /// Admission rejections (the op never ran).
    pub rejected: u64,
    /// Unexpected failures — anything but a cancellation of a
    /// [`Scenario::Cancel`] op. These are SSD060 material.
    pub errors: u64,
    /// Client-side submit→finish latency of completed ops.
    pub latency: Histogram,
}

/// One sampled point of the live telemetry timeline.
#[derive(Debug, Clone)]
pub struct TimelineRow {
    pub t_ms: u64,
    pub queue_depth: usize,
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub fuel_spent: u64,
    pub fuel_estimated: u64,
    /// Write txns submitted but not yet visible as a store generation —
    /// how far snapshots lag the write stream.
    pub generation_lag: u64,
}

/// Everything one drive produced.
#[derive(Debug, Clone)]
pub struct DriveReport {
    pub scenarios: Vec<ScenarioStats>,
    pub timeline: Vec<TimelineRow>,
    pub wall_ms: u64,
    pub total_ops: u64,
    /// Final server metrics (scheduler-side histogram and counters).
    pub metrics: ssd_serve::Metrics,
}

impl DriveReport {
    pub fn total_errors(&self) -> u64 {
        self.scenarios.iter().map(|s| s.errors).sum()
    }
}

/// The deterministic mixed op sequence: every scenario's ops, shuffled
/// by the workload seed. Replay (`crate::replay`) and the live driver
/// iterate the exact same sequence.
pub fn op_sequence(cfg: &GenConfig, only: Option<Scenario>) -> Vec<(Scenario, u64)> {
    let mut ops = Vec::new();
    for s in ALL {
        if only.is_some_and(|o| o != s) {
            continue;
        }
        for i in 0..s.ops_at(cfg.scale) {
            ops.push((s, i));
        }
    }
    // Fisher–Yates with the workload seed: the interleaving is part of
    // the workload's identity.
    let mut rng = SplitMix64::new(cfg.seed ^ 0x6b65_7973_6871_7566);
    for i in (1..ops.len()).rev() {
        ops.swap(i, rng.below(i as u64 + 1) as usize);
    }
    ops
}

struct WaitItem {
    scenario: Scenario,
    submitted: Instant,
    handle: ssd_serve::server::JobHandle,
    cancel_expected: bool,
}

fn scenario_slot(s: Scenario) -> usize {
    ALL.iter().position(|&x| x == s).expect("scenario in ALL")
}

/// Drive `server` with the mixed sequence. The server must be
/// store-backed when the sequence contains [`Scenario::WriteTxn`] ops.
pub fn drive(
    server: &Server,
    cfg: &GenConfig,
    dcfg: &DriveConfig,
    only: Option<Scenario>,
) -> DriveReport {
    let ops = op_sequence(cfg, only);
    let stats: Mutex<Vec<ScenarioStats>> = Mutex::new(
        ALL.into_iter()
            .map(|scenario| ScenarioStats {
                scenario,
                ops: 0,
                rejected: 0,
                errors: 0,
                latency: Histogram::new(),
            })
            .collect(),
    );
    let commits_submitted = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let mut wall_ms = 1;

    let timeline = std::thread::scope(|scope| {
        // Waiter pool: one channel per waiter, round-robin dispatch, so
        // no receiver is ever shared (and no blocking recv happens
        // under any lock). Sized to the server's in-flight capacity.
        let pool = (2 * (dcfg.workers + dcfg.queue_cap) + 4).min(64);
        let mut senders = Vec::with_capacity(pool);
        let mut waiters = Vec::with_capacity(pool);
        for _ in 0..pool {
            let (tx, rx) = mpsc::channel::<WaitItem>();
            senders.push(tx);
            let stats = &stats;
            waiters.push(scope.spawn(move || {
                while let Ok(item) = rx.recv() {
                    let outcome = item.handle.wait();
                    let latency = item.submitted.elapsed().as_micros() as u64;
                    let mut st = stats.lock().expect("stats lock");
                    let slot = &mut st[scenario_slot(item.scenario)];
                    match outcome.error {
                        None => slot.latency.record(latency),
                        Some(_) if item.cancel_expected => slot.latency.record(latency),
                        Some(_) => slot.errors += 1,
                    }
                }
            }));
        }

        // Timeline sampler: periodic snapshots of server metrics plus
        // the write-lag gauge maintained by the submit loop.
        let sampler = {
            let stop = &stop;
            let commits = &commits_submitted;
            let gen0 = server.generation().unwrap_or(0);
            let every = Duration::from_millis(dcfg.sample_every_ms.max(10));
            scope.spawn(move || {
                let mut rows = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(every);
                    let m = server.metrics();
                    let committed = server.generation().unwrap_or(0).saturating_sub(gen0);
                    rows.push(TimelineRow {
                        t_ms: start.elapsed().as_millis() as u64,
                        queue_depth: m.queue_depth,
                        admitted: m.counters.admitted,
                        rejected: m.counters.rejected,
                        completed: m.counters.completed,
                        fuel_spent: m.counters.fuel_spent,
                        fuel_estimated: m.counters.fuel_estimated,
                        generation_lag: commits.load(Ordering::Acquire).saturating_sub(committed),
                    });
                    if rows.len() >= 2000 {
                        break; // bounded artifact, however long the run
                    }
                }
                rows
            })
        };

        let quota = bench_quota(dcfg);
        let mut sessions: Vec<ssd_serve::server::SessionHandle> = (0..dcfg.sessions.max(1))
            .map(|_| server.open_session(quota.clone()))
            .collect();
        let mut retired = Vec::new();

        let mut next_waiter = 0usize;
        for (n, (scenario, i)) in ops.iter().enumerate() {
            if let Some(due_us) = (n as u64 * 1_000_000).checked_div(dcfg.rate) {
                let due = Duration::from_micros(due_us);
                let now = start.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            if dcfg.churn_every > 0 && n > 0 && (n as u64).is_multiple_of(dcfg.churn_every) {
                // Retire the oldest session; keep the handle alive so
                // its in-flight jobs drain normally, close after the run.
                let old = sessions.remove(0);
                retired.push(old);
                sessions.push(server.open_session(quota.clone()));
            }
            let sess = &sessions[n % sessions.len()];
            let text = scenario.text(cfg, *i);
            if *scenario == Scenario::WriteTxn {
                commits_submitted.fetch_add(1, Ordering::Release);
            }
            {
                let mut st = stats.lock().expect("stats lock");
                st[scenario_slot(*scenario)].ops += 1;
            }
            match sess.submit(scenario.kind(), &text) {
                Ok(handle) => {
                    let cancel_expected = *scenario == Scenario::Cancel;
                    if cancel_expected {
                        // Mid-flight cancellation is the scenario;
                        // losing the race to a fast completion is fine.
                        let _ = sess.cancel(handle.job);
                    }
                    senders[next_waiter % pool]
                        .send(WaitItem {
                            scenario: *scenario,
                            submitted: Instant::now(),
                            handle,
                            cancel_expected,
                        })
                        .expect("waiter alive");
                    next_waiter += 1;
                }
                Err(SubmitError::Rejected(_)) => {
                    let mut st = stats.lock().expect("stats lock");
                    st[scenario_slot(*scenario)].rejected += 1;
                }
                Err(SubmitError::Invalid(_)) => {
                    let mut st = stats.lock().expect("stats lock");
                    st[scenario_slot(*scenario)].errors += 1;
                }
            }
        }

        // Drain: waiters exit once their channels close and every
        // pending wait() has returned.
        drop(senders);
        for w in waiters {
            let _ = w.join();
        }
        wall_ms = (start.elapsed().as_millis() as u64).max(1);
        stop.store(true, Ordering::Release);
        let timeline = sampler.join().unwrap_or_default();
        for s in sessions.into_iter().chain(retired) {
            s.close();
        }
        timeline
    });

    let mut scenarios = stats.into_inner().expect("stats lock");
    scenarios.retain(|s| s.ops > 0);
    DriveReport {
        total_ops: ops.len() as u64,
        scenarios,
        timeline,
        wall_ms,
        metrics: server.metrics(),
    }
}
