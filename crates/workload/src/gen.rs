//! Deterministic scalable graph generator.
//!
//! Produces IMDB-shaped semistructured graphs — movie entries with
//! titles, years, Zipf-skewed genre links into a shared genre table,
//! casts with skew-popular actors, directors, and `References` chains
//! that close into cycles — as a *stream* of [`GenOp`]s. The stream is
//! a pure function of [`GenConfig`]: the same config yields the same
//! ops in the same order, byte for byte, at any scale, and generation
//! holds O(1) state beyond the config-derived skew tables (nothing is
//! buffered per node or per edge, so 10^7-edge streams need no
//! intermediate materialization).
//!
//! Node ids are assigned by arithmetic, not by a counter carried in the
//! stream: a consumer that applies ops in order against a fresh
//! [`Graph`] (whose root is node 0 and whose `add_node` allocates
//! sequentially) sees exactly the ids the ops name. [`build_graph`]
//! does that; [`fingerprint`] folds the stream into an FNV-1a hash
//! without building anything.

use ssd_graph::{Graph, Label};

/// Shared genre-table size. Fixed so the node-id layout is independent
/// of scale; small graphs simply use few of them.
pub const GENRES: u64 = 64;

const GENRE_BASE: [&str; 16] = [
    "Drama",
    "Comedy",
    "Thriller",
    "Noir",
    "Western",
    "Musical",
    "Documentary",
    "Animation",
    "Romance",
    "Horror",
    "Adventure",
    "Mystery",
    "War",
    "Crime",
    "Fantasy",
    "Biography",
];

/// Everything the generator is parameterized by. `scale` is the target
/// edge count; the actual stream lands within one movie block of it.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Target number of edges (10^4 … 10^7 are the intended range).
    pub scale: u64,
    /// Stream seed: same seed ⇒ byte-identical stream.
    pub seed: u64,
    /// Actors per cast.
    pub fanout: u64,
    /// Zipf exponent for genre and actor popularity (1.0 ≈ classic).
    pub skew: f64,
    /// Characters per generated string payload (titles, names).
    pub payload: usize,
    /// Fraction of movies that participate in `References` chains
    /// (each chain closes into a cycle).
    pub cycle_density: f64,
    /// Movies per `References` chain.
    pub chain: u64,
}

impl GenConfig {
    pub fn new(scale: u64, seed: u64) -> GenConfig {
        GenConfig {
            scale,
            seed,
            fanout: 3,
            skew: 1.0,
            payload: 12,
            cycle_density: 0.05,
            chain: 8,
        }
    }

    /// Non-cycle edges emitted per movie block.
    fn edges_per_movie(&self) -> u64 {
        10 + 2 * self.fanout
    }

    /// Nodes allocated per movie block.
    fn nodes_per_movie(&self) -> u64 {
        9 + 2 * self.fanout
    }

    /// Movies the stream will emit for this scale.
    pub fn movies(&self) -> u64 {
        let fixed = 1 + 3 * GENRES; // genre-table edges
        (self.scale.saturating_sub(fixed) / self.edges_per_movie()).max(1)
    }

    /// One `References` chain starts every this-many chain-sized blocks.
    fn chain_period(&self) -> u64 {
        if self.cycle_density <= 0.0 {
            return u64::MAX;
        }
        ((1.0 / self.cycle_density).round() as u64).max(1)
    }

    /// Distinct actors drawn from (popularity is Zipf over this pool).
    fn actor_pool(&self) -> u64 {
        (self.movies() / 4).clamp(16, 65_536)
    }

    /// Distinct directors drawn from.
    fn director_pool(&self) -> u64 {
        (self.movies() / 8).clamp(4, 16_384)
    }

    /// The node id of movie `i`'s `Entry` node (see module docs: ids
    /// are pure arithmetic over the config).
    pub fn entry_id(&self, i: u64) -> u64 {
        2 + 3 * GENRES + i * self.nodes_per_movie()
    }

    /// The exact title of movie `i` — the σ-label lookup scenario uses
    /// this to build point queries that are guaranteed to hit.
    pub fn title_of(&self, i: u64) -> String {
        let mut rng = movie_rng(self.seed, i);
        payload_string(&mut rng, self.payload)
    }
}

/// An atomic value carried by a [`GenOp::ValEdge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenValue {
    Str(String),
    Int(i64),
}

/// One step of the generated stream. `Node { id }` allocates the node
/// with that id (consumers allocating sequentially from a fresh graph
/// get it for free); edges only ever name already-allocated ids.
#[derive(Debug, Clone, PartialEq)]
pub enum GenOp {
    Node {
        id: u64,
    },
    SymEdge {
        from: u64,
        name: &'static str,
        to: u64,
    },
    ValEdge {
        from: u64,
        value: GenValue,
        to: u64,
    },
}

/// SplitMix64 — tiny, seedable, and self-contained, so the stream's
/// bytes depend on nothing but this file.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-movie RNG: a pure function of `(seed, movie)`, so any movie's
/// payloads can be regenerated in isolation (`title_of`) and the stream
/// does not thread RNG state across movies.
fn movie_rng(seed: u64, movie: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ SplitMix64::new(movie.wrapping_mul(0x2545_F491_4F6C_DD1D)).next_u64())
}

const BASE62: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

fn payload_string(rng: &mut SplitMix64, len: usize) -> String {
    let mut s = String::with_capacity(len);
    for _ in 0..len.max(1) {
        s.push(BASE62[rng.below(62) as usize] as char);
    }
    s
}

/// Zipf sampler over `{0, …, n-1}` with exponent `s`: a precomputed
/// cumulative table (O(n) once per run, not per sample) binary-searched
/// per draw. Rank 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Zipf {
        let n = n.max(1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

fn genre_name(k: u64) -> String {
    let base = GENRE_BASE[(k % 16) as usize];
    if k < 16 {
        base.to_string()
    } else {
        format!("{base}{}", k / 16 + 1)
    }
}

/// The streaming generator: an iterator over [`GenOp`]s. Holds the
/// config, the two skew tables, and a per-movie op buffer — O(1) in the
/// stream length.
pub struct Generator {
    cfg: GenConfig,
    movies: u64,
    genre_zipf: Zipf,
    actor_zipf: Zipf,
    buf: std::collections::VecDeque<GenOp>,
    /// Next unit of work: genre `k` for `k < GENRES` (plus the holder
    /// preamble at 0), else movie `k - GENRES`.
    unit: u64,
}

impl Generator {
    pub fn new(cfg: GenConfig) -> Generator {
        let movies = cfg.movies();
        Generator {
            genre_zipf: Zipf::new(GENRES, cfg.skew),
            actor_zipf: Zipf::new(cfg.actor_pool(), cfg.skew),
            movies,
            cfg,
            buf: std::collections::VecDeque::new(),
            unit: 0,
        }
    }

    fn push_attr(&mut self, from: u64, name: &'static str, mid: u64, value: GenValue) {
        self.buf.push_back(GenOp::Node { id: mid });
        self.buf.push_back(GenOp::SymEdge {
            from,
            name,
            to: mid,
        });
        self.buf.push_back(GenOp::Node { id: mid + 1 });
        self.buf.push_back(GenOp::ValEdge {
            from: mid,
            value,
            to: mid + 1,
        });
    }

    fn fill_genre(&mut self, k: u64) {
        if k == 0 {
            // Preamble: the shared genre table hangs off root --Genres-->.
            self.buf.push_back(GenOp::Node { id: 1 });
            self.buf.push_back(GenOp::SymEdge {
                from: 0,
                name: "Genres",
                to: 1,
            });
        }
        let g = 2 + 3 * k;
        self.buf.push_back(GenOp::Node { id: g });
        self.buf.push_back(GenOp::SymEdge {
            from: 1,
            name: "Genre",
            to: g,
        });
        self.push_attr(g, "Name", g + 1, GenValue::Str(genre_name(k)));
    }

    fn fill_movie(&mut self, i: u64) {
        let cfg = self.cfg.clone();
        let mut rng = movie_rng(cfg.seed, i);
        let e = cfg.entry_id(i);
        let m = e + 1;
        self.buf.push_back(GenOp::Node { id: e });
        self.buf.push_back(GenOp::SymEdge {
            from: 0,
            name: "Entry",
            to: e,
        });
        self.buf.push_back(GenOp::Node { id: m });
        self.buf.push_back(GenOp::SymEdge {
            from: e,
            name: "Movie",
            to: m,
        });
        // Draw order is a stream invariant: title first (title_of
        // regenerates it from a fresh per-movie RNG), then the rest.
        let title = payload_string(&mut rng, cfg.payload);
        self.push_attr(m, "Title", e + 2, GenValue::Str(title));
        let year = 1900 + rng.below(126) as i64;
        self.push_attr(m, "Year", e + 4, GenValue::Int(year));
        let genre = self.genre_zipf.sample(&mut rng);
        self.buf.push_back(GenOp::SymEdge {
            from: m,
            name: "Genre",
            to: 2 + 3 * genre,
        });
        let c = e + 6;
        self.buf.push_back(GenOp::Node { id: c });
        self.buf.push_back(GenOp::SymEdge {
            from: m,
            name: "Cast",
            to: c,
        });
        for j in 0..cfg.fanout {
            let actor = self.actor_zipf.sample(&mut rng);
            self.push_attr(
                c,
                "Actor",
                e + 7 + 2 * j,
                GenValue::Str(format!("Actor {actor}")),
            );
        }
        let director = rng.below(cfg.director_pool());
        self.push_attr(
            m,
            "Director",
            e + 7 + 2 * cfg.fanout,
            GenValue::Str(format!("Director {director}")),
        );
        // `References` chains: every `chain_period`-th block of `chain`
        // consecutive movies is linked entry-to-entry (each edge points
        // backward, the closing edge makes it a cycle).
        let block = i / cfg.chain;
        if block.is_multiple_of(cfg.chain_period()) {
            let pos = i % cfg.chain;
            if pos > 0 {
                self.buf.push_back(GenOp::SymEdge {
                    from: e,
                    name: "References",
                    to: cfg.entry_id(i - 1),
                });
            }
            let start = block * cfg.chain;
            let last_of_block = pos == cfg.chain - 1 || i == self.movies - 1;
            if last_of_block && start != i {
                self.buf.push_back(GenOp::SymEdge {
                    from: cfg.entry_id(start),
                    name: "References",
                    to: e,
                });
            }
        }
    }
}

impl Iterator for Generator {
    type Item = GenOp;

    fn next(&mut self) -> Option<GenOp> {
        while self.buf.is_empty() {
            let unit = self.unit;
            if unit < GENRES {
                self.fill_genre(unit);
            } else if unit - GENRES < self.movies {
                self.fill_movie(unit - GENRES);
            } else {
                return None;
            }
            self.unit += 1;
        }
        self.buf.pop_front()
    }
}

/// Materialize the stream into a [`Graph`]. Node ids line up with the
/// arithmetic the ops carry (debug-asserted).
pub fn build_graph(cfg: &GenConfig) -> Graph {
    let mut g = Graph::new();
    apply_ops(&mut g, Generator::new(cfg.clone()));
    g
}

/// Apply a stream of ops to a graph whose next allocated node id is the
/// first `Node { id }` in the stream.
pub fn apply_ops(g: &mut Graph, ops: impl Iterator<Item = GenOp>) {
    for op in ops {
        match op {
            GenOp::Node { id } => {
                let n = g.add_node();
                debug_assert_eq!(n.index() as u64, id, "generator id arithmetic drifted");
                let _ = (n, id);
            }
            GenOp::SymEdge { from, name, to } => {
                g.add_sym_edge(node(from), name, node(to));
            }
            GenOp::ValEdge { from, value, to } => {
                let v = match value {
                    GenValue::Str(s) => ssd_graph::Value::from(s),
                    GenValue::Int(i) => ssd_graph::Value::from(i),
                };
                g.add_edge(node(from), Label::Value(v), node(to));
            }
        }
    }
}

fn node(id: u64) -> ssd_graph::NodeId {
    ssd_graph::NodeId::from_index(id as usize)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one op into a running FNV-1a hash (stable byte encoding).
pub fn hash_op(h: u64, op: &GenOp) -> u64 {
    match op {
        GenOp::Node { id } => fnv1a(fnv1a(h, b"N"), &id.to_le_bytes()),
        GenOp::SymEdge { from, name, to } => {
            let h = fnv1a(fnv1a(h, b"S"), &from.to_le_bytes());
            let h = fnv1a(h, name.as_bytes());
            fnv1a(h, &to.to_le_bytes())
        }
        GenOp::ValEdge { from, value, to } => {
            let h = fnv1a(fnv1a(h, b"V"), &from.to_le_bytes());
            let h = match value {
                GenValue::Str(s) => fnv1a(fnv1a(h, b"s"), s.as_bytes()),
                GenValue::Int(i) => fnv1a(fnv1a(h, b"i"), &i.to_le_bytes()),
            };
            fnv1a(h, &to.to_le_bytes())
        }
    }
}

/// Hash the whole stream without materializing it: the byte-identity
/// witness `ssd bench` records (same config ⇒ same fingerprint).
pub fn fingerprint(cfg: &GenConfig) -> u64 {
    Generator::new(cfg.clone()).fold(FNV_OFFSET, |h, op| hash_op(h, &op))
}

/// Count the edges the stream emits (cheap: no strings are hashed).
pub fn edge_count(cfg: &GenConfig) -> u64 {
    Generator::new(cfg.clone())
        .filter(|op| !matches!(op, GenOp::Node { .. }))
        .count() as u64
}
