//! # ssd-workload — deterministic million-scale workload harness
//!
//! The observability backbone behind `ssd bench`: everything the
//! remaining performance claims are measured against.
//!
//! | piece | module | role |
//! |---|---|---|
//! | seeded IMDB-shaped graph generator | [`gen`] | byte-identical streams at 10^4–10^7 edges |
//! | scenario catalog | [`scenario`] | joins, σ-lookups, RPEs, closure, write txns, cancels |
//! | open-loop serve driver | [`driver`] | real [`Server`](ssd_serve::server::Server), arrival rates, session churn, live telemetry |
//! | deterministic replay | [`replay`] | same op sequence against the pure scheduler — the decision-trace witness |
//! | artifact + regression gate | [`report`], [`json`] | `BENCH_workload.json` and the SSD060/061/062 checker |
//!
//! The two determinism witnesses an artifact carries:
//! *graph fingerprint* (FNV-1a over the generated op stream) and
//! *replay trace fingerprint* (FNV-1a over the scheduler's decision
//! trace). Equal seeds must reproduce both, exactly — `ssd bench`
//! re-checks the former on every run and CI pins both.

pub mod driver;
pub mod gen;
pub mod json;
pub mod replay;
pub mod report;
pub mod scenario;

use std::sync::Arc;
use std::time::Instant;

use ssd_serve::server::Server;
use ssd_serve::ServeConfig;
use ssd_trace::{phase_totals, Phase, SharedRing, Tracer};

pub use driver::{drive, DriveConfig, DriveReport};
pub use gen::{build_graph, fingerprint, GenConfig, Generator};
pub use replay::{replay, ReplayReport};
pub use report::{check_against_baseline, BenchReport, SCHEMA_VERSION};
pub use scenario::Scenario;

/// Orchestrate one full bench run: generate, load into a durable
/// store, replay deterministically, then drive the live server.
/// Returns the report plus, when `profile` is set, a per-phase fuel
/// breakdown of the whole workload rendered from the tracer.
pub fn run_bench(
    cfg: &GenConfig,
    dcfg: &DriveConfig,
    only: Option<Scenario>,
    profile: bool,
) -> Result<(BenchReport, Option<String>), String> {
    let ring = profile.then(|| SharedRing::new(1 << 20));
    let tracer = ring
        .as_ref()
        .map(|r| Tracer::with_sink(Box::new(r.clone())));

    // Phase 1: generate. The graph is streamed straight into its final
    // shape; the fingerprint witnesses the stream's bytes.
    let t0 = Instant::now();
    let graph_fingerprint = gen::fingerprint(cfg);
    let graph = {
        let _span = tracer
            .as_ref()
            .map(|t| t.span(Phase::Workload, "generate", None));
        gen::build_graph(cfg)
    };
    let gen_ms = t0.elapsed().as_millis() as u64;
    let (nodes, edges) = (graph.node_count() as u64, graph.edge_count() as u64);

    // Phase 2: load into a fresh store (write txns need a durable
    // backend; reads pin snapshot generations against it).
    let t1 = Instant::now();
    let dir = std::env::temp_dir().join(format!(
        "ssd-bench-{}-{}-{}",
        std::process::id(),
        cfg.seed,
        cfg.scale
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let db = semistructured::Database::new(graph);
    let store = {
        let _span = tracer
            .as_ref()
            .map(|t| t.span(Phase::Workload, "load_store", None));
        ssd_store::Store::init(&dir, &db).map_err(|e| format!("store init: {e}"))?;
        let (store, _report) = ssd_store::Store::open(&dir, &ssd_guard::Budget::unlimited())
            .map_err(|e| format!("store open: {e}"))?;
        store
    };
    let load_ms = t1.elapsed().as_millis() as u64;

    // Phase 3: deterministic replay — the decision-trace witness.
    let replay_report = {
        let _span = tracer
            .as_ref()
            .map(|t| t.span(Phase::Workload, "replay", None));
        replay::replay(cfg, dcfg, only)
    };

    // Phase 4: live drive against a real server over the store.
    let serve_cfg = ServeConfig {
        workers: dcfg.workers,
        queue_cap: dcfg.queue_cap,
        ..ServeConfig::default()
    };
    let store = Arc::new(store);
    let server = match &ring {
        Some(r) => Server::start_with_store_traced(
            Arc::clone(&store),
            serve_cfg,
            Tracer::with_sink(Box::new(r.clone())),
        ),
        None => Server::start_with_store(Arc::clone(&store), serve_cfg),
    };
    let drive_report = {
        let _span = tracer
            .as_ref()
            .map(|t| t.span(Phase::Workload, "drive", None));
        driver::drive(&server, cfg, dcfg, only)
    };
    server.shutdown();
    drop(tracer);
    let _ = std::fs::remove_dir_all(&dir);

    let report = BenchReport {
        cfg: cfg.clone(),
        scenario: only.map_or_else(|| "mixed".to_string(), |s| s.name().to_string()),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        movies: cfg.movies(),
        nodes,
        edges,
        graph_fingerprint,
        gen_ms,
        load_ms,
        replay: replay_report,
        drive: drive_report,
    };
    let profile_text = ring.map(|r| {
        let events = r.snapshot();
        format!(
            "per-phase fuel breakdown ({} events):\n{}",
            events.len(),
            phase_totals(&events)
        )
    });
    Ok((report, profile_text))
}
