//! A minimal JSON reader for the baseline checker — just enough to
//! navigate the BENCH artifacts this workspace emits (which are all
//! hand-rendered by the report binaries). No serializer dependency, no
//! writer: writing stays with the report renderers.

/// A parsed JSON value. Numbers keep their source text so integer
/// comparisons are exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Navigate object keys; `Null` for anything missing.
    pub fn path(&self, keys: &[&str]) -> &Json {
        let mut cur = self;
        for k in keys {
            let Json::Obj(fields) = cur else {
                return &Json::Null;
            };
            match fields.iter().find(|(name, _)| name == k) {
                Some((_, v)) => cur = v,
                None => return &Json::Null,
            }
        }
        cur
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// A short, single-line rendering for diagnostics.
    pub fn render_short(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => n.clone(),
            Json::Str(s) => format!("\"{s}\""),
            Json::Arr(items) => format!("[{} items]", items.len()),
            Json::Obj(fields) => format!("{{{} fields}}", fields.len()),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' | b'x' | b'a'..=b'f' | b'A'..=b'F')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected byte at offset {pos}"));
            }
            Ok(Json::Num(
                std::str::from_utf8(&b[start..*pos])
                    .map_err(|e| e.to_string())?
                    .to_string(),
            ))
        }
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(s);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through untouched.
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or_else(|| "truncated UTF-8".to_string())?;
                s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_shapes() {
        let j = Json::parse(
            r#"{"experiment": "E21", "schema_version": 1,
                "scenarios": [{"name": "rpe3", "p99_us": 1200}],
                "ok": true, "none": null, "f": "0x00ff"}"#,
        )
        .unwrap();
        assert_eq!(j.path(&["experiment"]).as_str(), Some("E21"));
        assert_eq!(j.path(&["schema_version"]).as_u64(), Some(1));
        let rows = j.path(&["scenarios"]).as_array();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].path(&["p99_us"]).as_u64(), Some(1200));
        assert_eq!(*j.path(&["missing", "deep"]), Json::Null);
        assert_eq!(*j.path(&["ok"]), Json::Bool(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let j = Json::parse(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(j.path(&["s"]).as_str(), Some("a\"b\\c\ndA"));
    }
}
