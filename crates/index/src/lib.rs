//! `ssd-index` — columnar triple permutations for batched query execution.
//!
//! An ssd-graph is, shredded, a set of triples `(src, label, dst)` (see
//! `ssd-triples`). This crate stores that set *three times*, dictionary
//! encoded and sorted in different key orders — SPO, POS, OSP — so that
//! every access pattern a select-query binding needs is one contiguous
//! range of a sorted `Vec<[u32; 3]>`:
//!
//! - **dictionary encoding** ([`Dictionary`]): labels interned to dense
//!   `u32` ids, append-only so ids survive incremental merges; overflow
//!   is diagnosed as `SSD051`;
//! - **sorted runs** ([`SortedRun`]): strictly-sorted duplicate-free key
//!   vectors with galloping range lookups, resumable from a cursor so a
//!   sorted probe column turns lookups into a merge join;
//! - **the index proper** ([`TripleIndex`]): the three permutations plus
//!   the dictionary, built once per `Database` generation and maintained
//!   across id-stable store commits by merging a small delta run instead
//!   of re-sorting ([`TripleIndex::merge_delta`]).
//!
//! The batched executor in `ssd-query` plans against this structure and
//! falls back to the one-binding-at-a-time interpreter (note `SSD050`)
//! whenever a query's shape or statistics make the index a bad bet.

pub mod dict;
mod index;
pub mod run;

pub use dict::Dictionary;
pub use index::TripleIndex;
pub use run::{Key, SortedRun, KEY_BYTES};
