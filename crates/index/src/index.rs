//! The three-permutation triple index over one data-graph generation.
//!
//! Every reachable edge `(src, label, dst)` is encoded to `[u32; 3]`
//! through the [`Dictionary`] (node ids are already dense — a `NodeId`
//! *is* its index) and stored three ways:
//!
//! | run | key order | answers |
//! |---|---|---|
//! | SPO | `[src, label, dst]` | "edges out of `s`", "`s` via label `p`" |
//! | POS | `[label, dst, src]` | "edges labeled `p`", label cardinalities |
//! | OSP | `[dst, src, label]` | "edges into `o`" |
//!
//! The index covers exactly the triples whose source is *reachable* from
//! the root — the fragment every evaluator operates on.
//!
//! [`TripleIndex::merge_delta`] maintains the index across an id-stable
//! graph mutation (node ids of surviving nodes unchanged — the contract
//! `ssd-store`'s commit path provides) by diffing per-node edge lists
//! against the base SPO run and folding the resulting delta runs in with
//! linear merges; the base runs are never re-sorted.

use crate::dict::Dictionary;
use crate::run::{Key, SortedRun};
use ssd_diag::Diagnostic;
use ssd_graph::{Graph, Label, NodeId};

/// Dictionary-encoded SPO/POS/OSP sorted-run permutations of one graph's
/// reachable triples.
#[derive(Debug, Clone)]
pub struct TripleIndex {
    dict: Dictionary,
    spo: SortedRun,
    pos: SortedRun,
    osp: SortedRun,
    root: u32,
}

impl TripleIndex {
    /// Build from scratch: encode every reachable edge, then sort each
    /// permutation once.
    pub fn build(g: &Graph) -> Result<TripleIndex, Diagnostic> {
        TripleIndex::build_with_dict(g, Dictionary::new())
    }

    /// Build reusing (and extending) an existing dictionary, so encoded
    /// label ids stay comparable with runs produced against it.
    pub fn build_with_dict(g: &Graph, mut dict: Dictionary) -> Result<TripleIndex, Diagnostic> {
        let mut keys: Vec<Key> = Vec::with_capacity(g.edge_count());
        for &n in &g.reachable() {
            let s = n.index() as u32;
            for e in g.edges(n) {
                keys.push([s, dict.intern(&e.label)?, e.to.index() as u32]);
            }
        }
        Ok(TripleIndex::from_spo_keys(
            dict,
            keys,
            g.root().index() as u32,
        ))
    }

    /// Build from an already-shredded triple sequence (the
    /// `ssd-triples` store view).
    pub fn from_triples<'a, I>(triples: I, root: NodeId) -> Result<TripleIndex, Diagnostic>
    where
        I: IntoIterator<Item = (NodeId, &'a Label, NodeId)>,
    {
        let mut dict = Dictionary::new();
        let mut keys: Vec<Key> = Vec::new();
        for (src, label, dst) in triples {
            keys.push([src.index() as u32, dict.intern(label)?, dst.index() as u32]);
        }
        Ok(TripleIndex::from_spo_keys(dict, keys, root.index() as u32))
    }

    fn from_spo_keys(dict: Dictionary, keys: Vec<Key>, root: u32) -> TripleIndex {
        let spo = SortedRun::from_unsorted(keys);
        let pos = SortedRun::from_unsorted(spo.iter().map(|&[s, p, o]| [p, o, s]).collect());
        let osp = SortedRun::from_unsorted(spo.iter().map(|&[s, p, o]| [o, s, p]).collect());
        TripleIndex {
            dict,
            spo,
            pos,
            osp,
            root,
        }
    }

    /// Number of distinct indexed triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Encoded id of the graph root.
    pub fn root(&self) -> u32 {
        self.root
    }

    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    pub fn spo(&self) -> &SortedRun {
        &self.spo
    }

    pub fn pos(&self) -> &SortedRun {
        &self.pos
    }

    pub fn osp(&self) -> &SortedRun {
        &self.osp
    }

    /// Dense id of `label`, if it occurs in the indexed graph.
    pub fn label_id(&self, label: &Label) -> Option<u32> {
        self.dict.lookup(label)
    }

    /// How many indexed edges carry label `p` (one POS range lookup) —
    /// the per-step selectivity the access-path planner works from.
    pub fn label_count(&self, p: u32) -> usize {
        self.pos.range1(p).len()
    }

    /// `[s, p, o]` keys out of source `s`.
    pub fn edges_from(&self, s: u32) -> &[Key] {
        self.spo.range1(s)
    }

    /// `[s, p, o]` keys out of `s` labeled `p`.
    pub fn edges_from_labeled(&self, s: u32, p: u32) -> &[Key] {
        self.spo.range2(s, p)
    }

    /// `[p, o, s]` keys labeled `p`.
    pub fn by_label(&self, p: u32) -> &[Key] {
        self.pos.range1(p)
    }

    /// `[o, s, p]` keys into destination `o`.
    pub fn edges_into(&self, o: u32) -> &[Key] {
        self.osp.range1(o)
    }

    /// Guard-accounted bytes the three permutations plus the dictionary
    /// occupy.
    pub fn encoded_bytes(&self) -> u64 {
        self.spo.bytes() + self.pos.bytes() + self.osp.bytes() + self.dict.encoded_bytes()
    }

    /// The indexed triples decoded back to labels, in SPO order — the
    /// dictionary-independent view equality tests compare.
    pub fn decoded(&self) -> Vec<(u32, Label, u32)> {
        self.spo
            .iter()
            .filter_map(|&[s, p, o]| self.dict.resolve(p).map(|l| (s, l.clone(), o)))
            .collect()
    }

    /// Rebuild the index for `g`, an **id-stable evolution** of the
    /// indexed graph (node ids present in both graphs mean the same
    /// node — `ssd-store`'s commit mutators guarantee this), by merging
    /// delta runs instead of re-sorting:
    ///
    /// 1. old triples whose source fell out of the reachable fragment are
    ///    deleted wholesale (one linear SPO walk);
    /// 2. each reachable node's encoded edge list is diffed against its
    ///    SPO range (two-pointer, per-node);
    /// 3. the accumulated inserts/deletes — typically tiny next to the
    ///    base — are sorted and folded into each permutation with a
    ///    linear [`SortedRun::merge`].
    pub fn merge_delta(&self, g: &Graph) -> Result<TripleIndex, Diagnostic> {
        let mut dict = self.dict.clone();
        let mut live = g.reachable();
        live.sort_unstable();
        let mut reach = vec![false; g.node_count()];
        for &n in &live {
            reach[n.index()] = true;
        }
        let mut ins: Vec<Key> = Vec::new();
        let mut del: Vec<Key> = Vec::new();
        for &k in self.spo.iter() {
            let s = k[0] as usize;
            if s >= reach.len() || !reach[s] {
                del.push(k);
            }
        }
        for &n in &live {
            let s = n.index() as u32;
            let mut now: Vec<Key> = Vec::with_capacity(g.out_degree(n));
            for e in g.edges(n) {
                now.push([s, dict.intern(&e.label)?, e.to.index() as u32]);
            }
            now.sort_unstable();
            now.dedup();
            let before = self.spo.range1(s);
            if before == now.as_slice() {
                continue;
            }
            let (mut i, mut j) = (0usize, 0usize);
            while i < before.len() || j < now.len() {
                match (before.get(i), now.get(j)) {
                    (Some(b), Some(c)) if b == c => {
                        i += 1;
                        j += 1;
                    }
                    (Some(b), Some(c)) if b < c => {
                        del.push(*b);
                        i += 1;
                    }
                    (Some(_), Some(c)) => {
                        ins.push(*c);
                        j += 1;
                    }
                    (Some(b), None) => {
                        del.push(*b);
                        i += 1;
                    }
                    (None, Some(c)) => {
                        ins.push(*c);
                        j += 1;
                    }
                    (None, None) => break,
                }
            }
        }
        // Only the delta is sorted; the base runs are merged linearly.
        let ins = SortedRun::from_unsorted(ins);
        let del = SortedRun::from_unsorted(del);
        let spo = SortedRun::merge(&self.spo, &ins, &del);
        let permute =
            |r: &SortedRun, f: fn(&Key) -> Key| SortedRun::from_unsorted(r.iter().map(f).collect());
        let pos = SortedRun::merge(
            &self.pos,
            &permute(&ins, |&[s, p, o]| [p, o, s]),
            &permute(&del, |&[s, p, o]| [p, o, s]),
        );
        let osp = SortedRun::merge(
            &self.osp,
            &permute(&ins, |&[s, p, o]| [o, s, p]),
            &permute(&del, |&[s, p, o]| [o, s, p]),
        );
        Ok(TripleIndex {
            dict,
            spo,
            pos,
            osp,
            root: g.root().index() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;

    fn movie_graph() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca", Year: 1942}},
                Entry: {Movie: {Title: "Play it again, Sam", Year: 1972}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn build_covers_reachable_edges_in_all_permutations() {
        let g = movie_graph();
        let idx = TripleIndex::build(&g).unwrap();
        assert_eq!(idx.len(), g.edge_count());
        assert_eq!(idx.spo.len(), idx.pos.len());
        assert_eq!(idx.spo.len(), idx.osp.len());
        assert!(idx.spo.is_strictly_sorted());
        assert!(idx.pos.is_strictly_sorted());
        assert!(idx.osp.is_strictly_sorted());
        assert_eq!(idx.root(), g.root().index() as u32);
        let entry = idx
            .label_id(&Label::symbol(g.symbols(), "Entry"))
            .expect("Entry is indexed");
        assert_eq!(idx.label_count(entry), 2);
        assert_eq!(idx.edges_from(idx.root()).len(), 2);
        // SPO, POS, OSP agree triple-by-triple after permuting back.
        let mut via_pos: Vec<Key> = idx.pos.iter().map(|&[p, o, s]| [s, p, o]).collect();
        via_pos.sort_unstable();
        assert_eq!(via_pos, idx.spo.as_slice());
        let mut via_osp: Vec<Key> = idx.osp.iter().map(|&[o, s, p]| [s, p, o]).collect();
        via_osp.sort_unstable();
        assert_eq!(via_osp, idx.spo.as_slice());
    }

    #[test]
    fn prefix_lookups_follow_paths() {
        let g = movie_graph();
        let idx = TripleIndex::build(&g).unwrap();
        let entry = idx.label_id(&Label::symbol(g.symbols(), "Entry")).unwrap();
        let movie = idx.label_id(&Label::symbol(g.symbols(), "Movie")).unwrap();
        let title = idx.label_id(&Label::symbol(g.symbols(), "Title")).unwrap();
        // root -Entry-> e -Movie-> m -Title-> t: two titles.
        let mut frontier = vec![idx.root()];
        for p in [entry, movie, title] {
            let mut next: Vec<u32> = Vec::new();
            for &s in &frontier {
                next.extend(idx.edges_from_labeled(s, p).iter().map(|k| k[2]));
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        assert_eq!(frontier.len(), 2);
        // Each title node has one incoming edge, visible through OSP.
        for &t in &frontier {
            assert_eq!(idx.edges_into(t).len(), 1);
        }
    }

    #[test]
    fn from_triples_matches_build() {
        let g = movie_graph();
        let idx = TripleIndex::build(&g).unwrap();
        let mut triples: Vec<(NodeId, Label, NodeId)> = Vec::new();
        for &n in &g.reachable() {
            for e in g.edges(n) {
                triples.push((n, e.label.clone(), e.to));
            }
        }
        let idx2 = TripleIndex::from_triples(triples.iter().map(|(s, l, d)| (*s, l, *d)), g.root())
            .unwrap();
        let mut a = idx.decoded();
        let mut b = idx2.decoded();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        b.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn merge_delta_tracks_id_stable_edits() {
        let mut g = movie_graph();
        let idx = TripleIndex::build(&g).unwrap();
        // Id-stable mutation: add a node + edges, drop nothing.
        let n = g.add_node();
        let year = Label::symbol(g.symbols(), "Remake");
        g.add_edge(g.root(), year.clone(), n);
        let merged = idx.merge_delta(&g).unwrap();
        let rebuilt = TripleIndex::build_with_dict(&g, idx.dict().clone()).unwrap();
        assert_eq!(merged.spo.as_slice(), rebuilt.spo.as_slice());
        assert_eq!(merged.pos.as_slice(), rebuilt.pos.as_slice());
        assert_eq!(merged.osp.as_slice(), rebuilt.osp.as_slice());
        assert_eq!(merged.len(), idx.len() + 1);
    }

    #[test]
    fn merge_delta_drops_unreachable_fragments() {
        let mut g = movie_graph();
        let idx = TripleIndex::build(&g).unwrap();
        // Cut both Entry edges: everything below the root unreachable.
        g.set_edges(g.root(), Vec::new());
        let merged = idx.merge_delta(&g).unwrap();
        assert!(merged.is_empty());
        let rebuilt = TripleIndex::build_with_dict(&g, idx.dict().clone()).unwrap();
        assert_eq!(merged.spo.as_slice(), rebuilt.spo.as_slice());
    }
}
