//! Sorted runs of encoded triples.
//!
//! A run is a strictly sorted, duplicate-free `Vec<[u32; 3]>`. The same
//! representation serves all three permutations (SPO, POS, OSP) — only
//! the meaning of the key components differs. Lookups are prefix range
//! scans found by *galloping* (exponential probe then binary search in
//! the bracket), which makes walking a run with a sorted probe column a
//! merge join: each probe resumes from the previous match position, so a
//! full join touches each run entry at most once plus logarithmic slop.
//!
//! Incremental maintenance is the three-way linear merge
//! `base ∪ inserts ∖ deletes` — the delta runs are sorted (they are
//! small), the base run is only *walked*, never re-sorted.

/// One encoded triple in some permutation order.
pub type Key = [u32; 3];

/// Bytes one key occupies; the unit of guard memory accounting.
pub const KEY_BYTES: u64 = 12;

/// A strictly sorted, duplicate-free run of encoded triples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SortedRun {
    keys: Vec<Key>,
}

impl SortedRun {
    pub fn new() -> SortedRun {
        SortedRun::default()
    }

    /// Sort + dedup once; the only place a full sort happens.
    pub fn from_unsorted(mut keys: Vec<Key>) -> SortedRun {
        keys.sort_unstable();
        keys.dedup();
        SortedRun { keys }
    }

    pub fn as_slice(&self) -> &[Key] {
        &self.keys
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Key> {
        self.keys.iter()
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Guard-accounted size of the run.
    pub fn bytes(&self) -> u64 {
        self.keys.len() as u64 * KEY_BYTES
    }

    pub fn contains(&self, key: &Key) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    /// The strictly-sorted/no-duplicates invariant, checked explicitly
    /// (constructors establish it; property tests assert it).
    pub fn is_strictly_sorted(&self) -> bool {
        self.keys.windows(2).all(|w| w[0] < w[1])
    }

    /// First position ≥ `from` whose key is ≥ `key`, found by galloping:
    /// exponential probe to bracket the answer, then binary search inside
    /// the bracket. `O(log gap)` where `gap` is the distance from `from`.
    pub fn gallop_from(&self, from: usize, key: &Key) -> usize {
        let keys = &self.keys;
        if from >= keys.len() || keys[from] >= *key {
            return from.min(keys.len());
        }
        let mut lo = from;
        let mut step = 1usize;
        while lo + step < keys.len() && keys[lo + step] < *key {
            lo += step;
            step <<= 1;
        }
        let hi = (lo + step + 1).min(keys.len());
        lo + keys[lo..hi].partition_point(|k| k < key)
    }

    /// The contiguous range of keys whose first component is `a`,
    /// galloping from position `from` (pass 0 for a cold lookup, or the
    /// previous range's end when probing with a sorted column).
    pub fn range1_from(&self, from: usize, a: u32) -> (usize, usize) {
        let start = self.gallop_from(from, &[a, 0, 0]);
        let end = match a.checked_add(1) {
            Some(next) => self.gallop_from(start, &[next, 0, 0]),
            None => self.keys.len(),
        };
        (start, end)
    }

    /// Keys with first component `a`.
    pub fn range1(&self, a: u32) -> &[Key] {
        let (start, end) = self.range1_from(0, a);
        &self.keys[start..end]
    }

    /// The contiguous range of keys with first components `(a, b)`,
    /// galloping from `from`.
    pub fn range2_from(&self, from: usize, a: u32, b: u32) -> (usize, usize) {
        let start = self.gallop_from(from, &[a, b, 0]);
        let end = match b.checked_add(1) {
            Some(next) => self.gallop_from(start, &[a, next, 0]),
            None => match a.checked_add(1) {
                Some(na) => self.gallop_from(start, &[na, 0, 0]),
                None => self.keys.len(),
            },
        };
        (start, end)
    }

    /// Keys with first components `(a, b)`.
    pub fn range2(&self, a: u32, b: u32) -> &[Key] {
        let (start, end) = self.range2_from(0, a, b);
        &self.keys[start..end]
    }

    /// Linear three-way merge: `base ∪ inserts ∖ deletes`. The base run
    /// is walked once; no re-sort happens. Deleting a key not in the
    /// union and inserting a key already present are both harmless.
    pub fn merge(base: &SortedRun, inserts: &SortedRun, deletes: &SortedRun) -> SortedRun {
        let (a, b, del) = (&base.keys, &inserts.keys, &deletes.keys);
        let mut out: Vec<Key> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j, mut d) = (0usize, 0usize, 0usize);
        while i < a.len() || j < b.len() {
            let k = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) if x == y => {
                    i += 1;
                    j += 1;
                    *x
                }
                (Some(x), Some(y)) if x < y => {
                    i += 1;
                    *x
                }
                (Some(_), Some(y)) => {
                    j += 1;
                    *y
                }
                (Some(x), None) => {
                    i += 1;
                    *x
                }
                (None, Some(y)) => {
                    j += 1;
                    *y
                }
                (None, None) => break,
            };
            while d < del.len() && del[d] < k {
                d += 1;
            }
            if d < del.len() && del[d] == k {
                continue;
            }
            out.push(k);
        }
        SortedRun { keys: out }
    }

    /// K-way merge of sorted runs (duplicates collapse). Used to fold a
    /// stack of delta runs into one before merging with a base.
    pub fn merge_many(runs: &[&SortedRun]) -> SortedRun {
        let mut cursors: Vec<usize> = vec![0; runs.len()];
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut out: Vec<Key> = Vec::with_capacity(total);
        loop {
            let mut best: Option<Key> = None;
            for (r, &c) in runs.iter().zip(cursors.iter()) {
                if let Some(k) = r.keys.get(c) {
                    best = Some(match best {
                        Some(b) if b <= *k => b,
                        _ => *k,
                    });
                }
            }
            let Some(k) = best else { break };
            for (r, c) in runs.iter().zip(cursors.iter_mut()) {
                if r.keys.get(*c) == Some(&k) {
                    *c += 1;
                }
            }
            out.push(k);
        }
        SortedRun { keys: out }
    }
}

impl<'a> IntoIterator for &'a SortedRun {
    type Item = &'a Key;
    type IntoIter = std::slice::Iter<'a, Key>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(keys: &[Key]) -> SortedRun {
        SortedRun::from_unsorted(keys.to_vec())
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let r = run(&[[2, 0, 0], [1, 5, 5], [2, 0, 0], [0, 9, 9]]);
        assert_eq!(r.as_slice(), &[[0, 9, 9], [1, 5, 5], [2, 0, 0]]);
        assert!(r.is_strictly_sorted());
        assert_eq!(r.bytes(), 36);
    }

    #[test]
    fn gallop_matches_partition_point() {
        let keys: Vec<Key> = (0..200u32).map(|i| [i / 10, i % 10, i]).collect();
        let r = run(&keys);
        for probe in [[0, 0, 0], [3, 5, 0], [19, 9, 199], [25, 0, 0]] {
            for from in [0usize, 5, 50, 199, 200] {
                let expect = from.min(r.len())
                    + r.as_slice()[from.min(r.len())..].partition_point(|k| k < &probe);
                assert_eq!(
                    r.gallop_from(from, &probe),
                    expect,
                    "probe {probe:?} from {from}"
                );
            }
        }
    }

    #[test]
    fn range_lookups() {
        let r = run(&[[1, 1, 1], [1, 1, 2], [1, 2, 1], [3, 0, 0], [u32::MAX, 1, 1]]);
        assert_eq!(r.range1(1).len(), 3);
        assert_eq!(r.range1(2).len(), 0);
        assert_eq!(r.range1(u32::MAX).len(), 1);
        assert_eq!(r.range2(1, 1).len(), 2);
        assert_eq!(r.range2(1, 2), &[[1, 2, 1]]);
        assert_eq!(r.range2(3, 0), &[[3, 0, 0]]);
        assert!(r.contains(&[3, 0, 0]));
        assert!(!r.contains(&[3, 0, 1]));
    }

    #[test]
    fn merge_is_union_minus_deletes() {
        let base = run(&[[1, 0, 0], [2, 0, 0], [3, 0, 0]]);
        let ins = run(&[[0, 0, 0], [2, 0, 0], [4, 0, 0]]);
        let del = run(&[[2, 0, 0], [9, 9, 9]]);
        let merged = SortedRun::merge(&base, &ins, &del);
        assert_eq!(
            merged.as_slice(),
            &[[0, 0, 0], [1, 0, 0], [3, 0, 0], [4, 0, 0]]
        );
        assert!(merged.is_strictly_sorted());
    }

    #[test]
    fn merge_many_collapses_duplicates() {
        let a = run(&[[1, 0, 0], [3, 0, 0]]);
        let b = run(&[[2, 0, 0], [3, 0, 0]]);
        let c = run(&[[0, 0, 0]]);
        let m = SortedRun::merge_many(&[&a, &b, &c]);
        assert_eq!(m.as_slice(), &[[0, 0, 0], [1, 0, 0], [2, 0, 0], [3, 0, 0]]);
        assert_eq!(SortedRun::merge_many(&[]).len(), 0);
    }
}
