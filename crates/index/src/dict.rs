//! Dictionary encoding: edge labels interned to dense `u32` ids.
//!
//! The triple permutations store `[u32; 3]` keys, so every [`Label`] —
//! symbol or value — must map to a dense integer first. Interning is
//! append-only (id = arrival order), which keeps ids stable across
//! incremental merges: a delta run produced against an extended copy of
//! the dictionary stays comparable with the base run it merges into.

use ssd_diag::{Code, Diagnostic};
use ssd_graph::Label;
use std::collections::HashMap;

/// Append-only `Label` ↔ dense-`u32` interner.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    labels: Vec<Label>,
    ids: HashMap<Label, u32>,
    limit: u32,
}

impl Dictionary {
    /// An empty dictionary with the full `u32` id space available.
    pub fn new() -> Dictionary {
        Dictionary::with_limit(u32::MAX)
    }

    /// An empty dictionary that refuses to hand out more than `limit`
    /// ids (SSD051). Exists so overflow is testable without interning
    /// four billion labels.
    pub fn with_limit(limit: u32) -> Dictionary {
        Dictionary {
            labels: Vec::new(),
            ids: HashMap::new(),
            limit,
        }
    }

    /// Intern `label`, returning its dense id. Ids are assigned in first
    /// arrival order; re-interning is a lookup.
    pub fn intern(&mut self, label: &Label) -> Result<u32, Diagnostic> {
        if let Some(&id) = self.ids.get(label) {
            return Ok(id);
        }
        if self.labels.len() as u64 >= u64::from(self.limit) {
            return Err(Diagnostic::new(
                Code::DictionaryOverflow,
                format!(
                    "dictionary id space exhausted: {} labels already interned (limit {})",
                    self.labels.len(),
                    self.limit
                ),
            ));
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.clone());
        self.ids.insert(label.clone(), id);
        Ok(id)
    }

    /// The id of an already-interned label, if any.
    pub fn lookup(&self, label: &Label) -> Option<u32> {
        self.ids.get(label).copied()
    }

    /// The label behind an id handed out by [`Dictionary::intern`].
    pub fn resolve(&self, id: u32) -> Option<&Label> {
        self.labels.get(id as usize)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Deterministic size estimate used for guard memory accounting:
    /// one id plus one (small) label per entry.
    pub fn encoded_bytes(&self) -> u64 {
        self.labels.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::{SymbolTable, Value};

    #[test]
    fn intern_is_idempotent_and_dense() {
        let syms = SymbolTable::new();
        let mut d = Dictionary::new();
        let a = Label::symbol(&syms, "Title");
        let b = Label::Value(Value::Int(7));
        assert_eq!(d.intern(&a).unwrap(), 0);
        assert_eq!(d.intern(&b).unwrap(), 1);
        assert_eq!(d.intern(&a).unwrap(), 0, "re-intern returns the same id");
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(0), Some(&a));
        assert_eq!(d.resolve(1), Some(&b));
        assert_eq!(d.resolve(2), None);
        assert_eq!(d.lookup(&b), Some(1));
        assert_eq!(d.lookup(&Label::Value(Value::Int(8))), None);
    }

    #[test]
    fn overflow_is_ssd051() {
        let mut d = Dictionary::with_limit(2);
        assert!(d.intern(&Label::Value(Value::Int(1))).is_ok());
        assert!(d.intern(&Label::Value(Value::Int(2))).is_ok());
        // Existing labels still intern fine at the limit.
        assert!(d.intern(&Label::Value(Value::Int(1))).is_ok());
        let err = d.intern(&Label::Value(Value::Int(3))).unwrap_err();
        assert_eq!(err.code, Code::DictionaryOverflow);
        assert_eq!(err.code.as_str(), "SSD051");
        assert!(err.is_error());
    }
}
