//! Write-ahead-log frame codec and recovery scan.
//!
//! The log is a flat sequence of frames:
//!
//! ```text
//! ┌───────────┬──────────────────────────────┬────────────┐
//! │ len: u32le │ payload (len bytes)          │ crc32: u32le│
//! └───────────┴──────────────────────────────┴────────────┘
//!               payload = seq: u64le | kind: u8 | body
//! ```
//!
//! `crc32` covers the payload only (the length field is validated
//! structurally: a frame whose `len` is out of range is corrupt, and a
//! buffer shorter than `len + 8` is torn). `seq` is strictly monotonic
//! starting at 1 across the whole log — a gap or repeat means the log was
//! spliced or corrupted and recovery stops there. `kind` is one of
//! [`KIND_INSERT`] (body = a graph literal), [`KIND_DELETE`] (body = a
//! symbol label name), or [`KIND_COMMIT`] (empty body, marks the txn
//! boundary). Only operations covered by a later COMMIT frame are ever
//! replayed; everything after the last valid COMMIT is a discardable
//! tail.

use crate::crc32::crc32;

/// Frame kind: INSERT — body is a graph literal unioned at the root.
pub const KIND_INSERT: u8 = 1;
/// Frame kind: DELETE — body is a symbol label; edges matching it are removed.
pub const KIND_DELETE: u8 = 2;
/// Frame kind: COMMIT — empty body; everything since the last COMMIT becomes durable.
pub const KIND_COMMIT: u8 = 3;

/// Smallest legal payload: 8-byte seq + 1-byte kind.
pub const MIN_PAYLOAD: usize = 9;
/// Largest legal payload (16 MiB) — an out-of-range length is corruption,
/// not a request for a 4 GiB allocation.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Bytes of framing around the payload: 4-byte length + 4-byte CRC.
pub const FRAME_OVERHEAD: usize = 8;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub seq: u64,
    pub kind: u8,
    pub body: String,
}

/// Why a frame failed structural validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorruptKind {
    /// The length prefix is outside `[MIN_PAYLOAD, MAX_PAYLOAD]`.
    Length(usize),
    /// The stored CRC-32 does not match the payload.
    Checksum,
    /// The kind byte is not INSERT/DELETE/COMMIT.
    Kind(u8),
    /// The body is not valid UTF-8.
    Utf8,
}

impl std::fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptKind::Length(n) => write!(f, "frame length {n} out of range"),
            CorruptKind::Checksum => f.write_str("frame checksum mismatch"),
            CorruptKind::Kind(k) => write!(f, "unknown frame kind {k}"),
            CorruptKind::Utf8 => f.write_str("frame body is not valid UTF-8"),
        }
    }
}

/// Outcome of decoding one frame from the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A complete, checksum-valid frame occupying `consumed` bytes.
    Frame { frame: Frame, consumed: usize },
    /// The buffer ends mid-frame — a torn or short write.
    Torn,
    /// The bytes at the front are structurally invalid.
    Corrupt(CorruptKind),
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Encode one frame.
pub fn encode_frame(seq: u64, kind: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(MIN_PAYLOAD + body.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.push(kind);
    payload.extend_from_slice(body);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Decode the frame at the front of `buf`. Never panics, for any input:
/// arbitrary bytes decode to `Torn` or `Corrupt`, never out-of-bounds.
pub fn decode_frame(buf: &[u8]) -> Decoded {
    if buf.len() < 4 {
        return Decoded::Torn;
    }
    let len = le_u32(&buf[0..4]) as usize;
    if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) {
        return Decoded::Corrupt(CorruptKind::Length(len));
    }
    let need = 4 + len + 4;
    if buf.len() < need {
        return Decoded::Torn;
    }
    let payload = &buf[4..4 + len];
    let stored = le_u32(&buf[4 + len..need]);
    if crc32(payload) != stored {
        return Decoded::Corrupt(CorruptKind::Checksum);
    }
    let seq = le_u64(&payload[0..8]);
    let kind = payload[8];
    if !(KIND_INSERT..=KIND_COMMIT).contains(&kind) {
        return Decoded::Corrupt(CorruptKind::Kind(kind));
    }
    let Ok(body) = std::str::from_utf8(&payload[MIN_PAYLOAD..]) else {
        return Decoded::Corrupt(CorruptKind::Utf8);
    };
    Decoded::Frame {
        frame: Frame {
            seq,
            kind,
            body: body.to_string(),
        },
        consumed: need,
    }
}

/// One operation inside a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOp {
    pub kind: u8,
    pub body: String,
}

/// One committed transaction recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTxn {
    pub ops: Vec<WalOp>,
    /// Sequence number of the COMMIT frame.
    pub commit_seq: u64,
}

/// Why the scan stopped before (or at) the end of the log with
/// non-committed bytes remaining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailIssue {
    /// The log ends mid-frame at byte offset `at` — a torn or short write.
    Torn { at: u64 },
    /// The frame at byte offset `at` is structurally invalid.
    Corrupt { at: u64, kind: CorruptKind },
    /// The frame at byte offset `at` broke sequence monotonicity.
    SeqBreak { at: u64, expected: u64, got: u64 },
    /// Valid operation frames follow the last COMMIT but were never
    /// committed (a crash between op writes and the COMMIT fsync).
    Uncommitted { ops: usize },
}

/// Result of scanning a log image.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Fully committed transactions, in log order.
    pub txns: Vec<WalTxn>,
    /// Byte offset one past the last COMMIT frame — the committed prefix.
    /// Recovery truncates the file to this length.
    pub committed_len: u64,
    /// Frames inside the committed prefix (ops + commits).
    pub frames: u64,
    /// Sequence number of the last committed frame (0 when none).
    pub last_seq: u64,
    /// Why bytes past `committed_len` exist, when they do.
    pub tail: Option<TailIssue>,
}

/// Scan a complete log image: collect committed transactions, find the
/// committed prefix length, and classify whatever follows it.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let mut offset = 0usize;
    let mut pending: Vec<WalOp> = Vec::new();
    let mut pending_frames = 0u64;
    let mut next_seq = 1u64;
    while offset < bytes.len() {
        match decode_frame(&bytes[offset..]) {
            Decoded::Torn => {
                out.tail = Some(TailIssue::Torn { at: offset as u64 });
                return out;
            }
            Decoded::Corrupt(kind) => {
                out.tail = Some(TailIssue::Corrupt {
                    at: offset as u64,
                    kind,
                });
                return out;
            }
            Decoded::Frame { frame, consumed } => {
                if frame.seq != next_seq {
                    out.tail = Some(TailIssue::SeqBreak {
                        at: offset as u64,
                        expected: next_seq,
                        got: frame.seq,
                    });
                    return out;
                }
                next_seq += 1;
                offset += consumed;
                pending_frames += 1;
                if frame.kind == KIND_COMMIT {
                    out.last_seq = frame.seq;
                    out.txns.push(WalTxn {
                        ops: std::mem::take(&mut pending),
                        commit_seq: frame.seq,
                    });
                    out.frames += pending_frames;
                    pending_frames = 0;
                    out.committed_len = offset as u64;
                } else {
                    pending.push(WalOp {
                        kind: frame.kind,
                        body: frame.body,
                    });
                }
            }
        }
    }
    if !pending.is_empty() {
        out.tail = Some(TailIssue::Uncommitted { ops: pending.len() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(frames: &[(u64, u8, &str)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (seq, kind, body) in frames {
            out.extend_from_slice(&encode_frame(*seq, *kind, body.as_bytes()));
        }
        out
    }

    #[test]
    fn frame_round_trips() {
        let bytes = encode_frame(7, KIND_INSERT, "{A: {}}".as_bytes());
        match decode_frame(&bytes) {
            Decoded::Frame { frame, consumed } => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(frame.seq, 7);
                assert_eq!(frame.kind, KIND_INSERT);
                assert_eq!(frame.body, "{A: {}}");
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bytes = encode_frame(1, KIND_DELETE, b"Actor");
        bytes[6] ^= 0x40; // inside the payload
        assert_eq!(
            decode_frame(&bytes),
            Decoded::Corrupt(CorruptKind::Checksum)
        );
    }

    #[test]
    fn truncated_frame_is_torn_not_corrupt() {
        let bytes = encode_frame(1, KIND_COMMIT, b"");
        for cut in 0..bytes.len() {
            let d = decode_frame(&bytes[..cut]);
            assert_eq!(d, Decoded::Torn, "cut at {cut} should read as torn");
        }
    }

    #[test]
    fn scan_collects_only_committed_transactions() {
        let bytes = log(&[
            (1, KIND_INSERT, "{A: {}}"),
            (2, KIND_COMMIT, ""),
            (3, KIND_DELETE, "A"),
            (4, KIND_COMMIT, ""),
            (5, KIND_INSERT, "{B: {}}"), // no commit: dangling
        ]);
        let out = scan(&bytes);
        assert_eq!(out.txns.len(), 2);
        assert_eq!(out.txns[0].ops.len(), 1);
        assert_eq!(out.txns[1].commit_seq, 4);
        assert_eq!(out.frames, 4);
        assert_eq!(out.last_seq, 4);
        assert_eq!(out.tail, Some(TailIssue::Uncommitted { ops: 1 }));
        let committed = log(&[
            (1, KIND_INSERT, "{A: {}}"),
            (2, KIND_COMMIT, ""),
            (3, KIND_DELETE, "A"),
            (4, KIND_COMMIT, ""),
        ]);
        assert_eq!(out.committed_len, committed.len() as u64);
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut bytes = log(&[(1, KIND_INSERT, "{A: {}}"), (2, KIND_COMMIT, "")]);
        let boundary = bytes.len() as u64;
        let extra = encode_frame(3, KIND_INSERT, b"{B: {}}");
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        let out = scan(&bytes);
        assert_eq!(out.txns.len(), 1);
        assert_eq!(out.committed_len, boundary);
        assert_eq!(out.tail, Some(TailIssue::Torn { at: boundary }));
    }

    #[test]
    fn scan_stops_at_sequence_break() {
        let bytes = log(&[(1, KIND_COMMIT, ""), (5, KIND_COMMIT, "")]);
        let out = scan(&bytes);
        assert_eq!(out.txns.len(), 1);
        assert!(matches!(
            out.tail,
            Some(TailIssue::SeqBreak {
                expected: 2,
                got: 5,
                ..
            })
        ));
    }

    #[test]
    fn scan_of_empty_log_is_clean() {
        let out = scan(&[]);
        assert!(out.txns.is_empty());
        assert_eq!(out.committed_len, 0);
        assert_eq!(out.tail, None);
    }
}
