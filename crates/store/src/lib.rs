//! Crash-safe durable mutations for a semistructured [`Database`].
//!
//! The paper's model (Buneman, PODS '97 §2) treats a database as an
//! edge-labeled rooted graph; queries never mutate it. This crate adds the
//! missing half — durable INSERT/DELETE transactions — without giving up
//! the read side's immutability:
//!
//! * **Write-ahead log.** Every transaction is appended to `wal.log` as
//!   length-prefixed, CRC-32-checksummed, strictly-sequenced frames (see
//!   [`wal`]), terminated by a COMMIT frame, and fsynced before the commit
//!   is acknowledged. A commit that returns `Ok` is durable; a commit that
//!   returns `Err` leaves the on-disk log equivalent to some prefix of
//!   acknowledged commits.
//! * **Snapshot isolation via generation swap.** The current database is
//!   an `Arc<Database>` behind a mutex. [`Store::snapshot`] clones the
//!   `Arc` — readers pin a *generation* and are never blocked or mutated
//!   under them; a commit builds a new [`Database`] copy-on-write and
//!   swaps the `Arc` at the end. [`Database::generation`] names the
//!   generation (the committed-transaction count).
//! * **Recovery.** [`Store::open`] replays the log over `base.ssd`,
//!   verifies every checksum and sequence number, truncates any torn or
//!   uncommitted tail, and reports what it did as SSD4xx diagnostics
//!   (SSD400 tail truncated, SSD401 checksum/sequence corruption, SSD402
//!   replay summary). After any I/O failure the store poisons itself
//!   read-only (SSD403) — the only safe way forward is to reopen and
//!   recover, exactly as a crashed process would.
//! * **Fault injection.** The same one-shot/N:M fail-point machinery the
//!   evaluator [`Guard`](ssd_guard) uses (`SSD_FAILPOINTS`-style specs,
//!   [`ssd_guard::FailPoint`]) drives deterministic I/O faults at the
//!   seams `wal.write`, `wal.torn`, `wal.short`, `wal.fsync`, and
//!   `wal.read`, so recovery is provable under a seeded crash matrix
//!   rather than hoped-for.

mod crc32;
pub mod wal;

pub use crc32::crc32;

use semistructured::{Database, Pred};
use ssd_diag::{Code, Diagnostic};
use ssd_guard::{fail_point_fires, Budget, FailPoint};
use ssd_trace::{FieldValue, Phase, Tracer};
use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The immutable base image: a graph literal the log replays over.
pub const BASE_FILE: &str = "base.ssd";
/// The write-ahead log of committed transactions.
pub const WAL_FILE: &str = "wal.log";

/// One mutation inside a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Union a graph literal at the root.
    Insert(String),
    /// Delete every edge whose label is this symbol.
    Delete(String),
}

impl Op {
    /// The WAL frame kind for this op.
    pub fn kind(&self) -> u8 {
        match self {
            Op::Insert(_) => wal::KIND_INSERT,
            Op::Delete(_) => wal::KIND_DELETE,
        }
    }

    /// The WAL frame body for this op.
    pub fn body(&self) -> &str {
        match self {
            Op::Insert(s) | Op::Delete(s) => s,
        }
    }
}

/// An ordered batch of mutations applied atomically by [`Store::commit`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Txn {
    ops: Vec<Op>,
}

impl Txn {
    pub fn new() -> Txn {
        Txn::default()
    }

    /// Stage an INSERT of a graph literal.
    #[must_use]
    pub fn insert(mut self, literal: &str) -> Txn {
        self.ops.push(Op::Insert(literal.to_string()));
        self
    }

    /// Stage a DELETE of all edges labeled with the symbol.
    #[must_use]
    pub fn delete(mut self, label: &str) -> Txn {
        self.ops.push(Op::Delete(label.to_string()));
        self
    }

    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Total body bytes across the ops — the input to write cost models.
    pub fn body_bytes(&self) -> u64 {
        self.ops.iter().map(|op| op.body().len() as u64).sum()
    }

    /// Serialize as a length-prefixed script: one `VERB <len>\n<body>\n`
    /// record per op. Length-prefixing (rather than line-splitting) lets
    /// INSERT bodies contain newlines, which multi-line graph literals do.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let verb = match op {
                Op::Insert(_) => "INSERT",
                Op::Delete(_) => "DELETE",
            };
            let body = op.body();
            out.push_str(verb);
            out.push(' ');
            out.push_str(&body.len().to_string());
            out.push('\n');
            out.push_str(body);
            out.push('\n');
        }
        out
    }

    /// Parse the [`Txn::to_script`] format.
    pub fn parse_script(text: &str) -> Result<Txn, String> {
        let mut txn = Txn::new();
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let line_end = bytes[pos..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| pos + i)
                .ok_or_else(|| "truncated op header: missing newline".to_string())?;
            let header = text
                .get(pos..line_end)
                .ok_or_else(|| "op header is not valid UTF-8".to_string())?;
            let (verb, len_text) = header
                .split_once(' ')
                .ok_or_else(|| format!("bad op header `{header}`: want `VERB <len>`"))?;
            let len: usize = len_text
                .trim()
                .parse()
                .map_err(|_| format!("bad op length `{len_text}`"))?;
            let body_start = line_end + 1;
            let body_end = body_start
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("op body overruns the script by design ({len} bytes)"))?;
            let body = text
                .get(body_start..body_end)
                .ok_or_else(|| "op body splits a UTF-8 character".to_string())?;
            match verb {
                "INSERT" => txn.ops.push(Op::Insert(body.to_string())),
                "DELETE" => txn.ops.push(Op::Delete(body.to_string())),
                _ => return Err(format!("unknown verb `{verb}`: want INSERT or DELETE")),
            }
            pos = body_end;
            if bytes.get(pos) == Some(&b'\n') {
                pos += 1;
            } else if pos < bytes.len() {
                return Err("op body not followed by a newline".to_string());
            }
        }
        Ok(txn)
    }
}

/// Validate an INSERT body without applying it.
pub fn validate_insert(literal: &str) -> Result<(), String> {
    Database::from_literal(literal).map(|_| ())
}

/// Validate a DELETE body without applying it.
pub fn validate_delete(label: &str) -> Result<(), String> {
    if label.trim().is_empty() {
        return Err("DELETE needs a non-empty label name".to_string());
    }
    Ok(())
}

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure; the store is now read-only.
    Io(String),
    /// The store was poisoned by an earlier failure (SSD403); the payload
    /// is the original reason.
    ReadOnly(String),
    /// The transaction itself is malformed (bad literal, empty batch).
    Invalid(String),
    /// An injected fault fired at this site; the store is now read-only.
    Fault(String),
    /// `dir` has no `base.ssd`; call [`Store::init`] first.
    NotInitialized(String),
}

impl StoreError {
    /// The SSD diagnostic for errors that carry one (SSD403 for
    /// read-only rejection, SSD106 for an injected fault).
    pub fn diagnostic(&self) -> Option<Diagnostic> {
        match self {
            StoreError::ReadOnly(reason) => Some(Diagnostic::new(
                Code::ReadOnlyStore,
                format!("store is read-only: {reason}"),
            )),
            StoreError::Fault(site) => Some(Diagnostic::new(
                Code::FaultInjected,
                format!("injected fault at '{site}' (testing only)"),
            )),
            _ => None,
        }
    }

    /// A one-line rendering: the diagnostic headline when there is a
    /// code, a plain `error: ...` otherwise.
    pub fn headline(&self) -> String {
        match self.diagnostic() {
            Some(d) => d.headline(),
            None => format!("error: {self}"),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "wal I/O failure: {m}"),
            StoreError::ReadOnly(r) => write!(f, "store is read-only: {r}"),
            StoreError::Invalid(m) => f.write_str(m),
            StoreError::Fault(site) => write!(f, "injected fault at '{site}'"),
            StoreError::NotInitialized(dir) => {
                write!(f, "no store at {dir}: missing {BASE_FILE}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`Store::open`] found and did. `diagnostics` holds the SSD4xx
/// band: SSD400 when a tail was truncated, SSD401 when the cause was
/// checksum/sequence corruption, and always one SSD402 replay note.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Committed transactions replayed over the base image.
    pub txns_replayed: u64,
    /// Valid frames inside the committed prefix.
    pub frames: u64,
    /// Bytes discarded from the tail (0 on a clean log).
    pub truncated_bytes: u64,
    /// Generation of the recovered database (== `txns_replayed`).
    pub generation: u64,
    pub diagnostics: Vec<Diagnostic>,
}

/// What a successful [`Store::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// Generation now visible to new snapshots.
    pub generation: u64,
    /// Sequence number of the COMMIT frame.
    pub seq: u64,
    /// Ops in the transaction.
    pub ops: usize,
    /// WAL bytes appended (ops + commit frame, framing included).
    pub bytes: u64,
}

/// Thread-safe wrapper over the guard's fail-point countdown so the
/// store's I/O seams and [`ssd_guard::Guard::fail_point`] count hits
/// identically from any thread.
#[derive(Debug, Default)]
struct Faults {
    points: Mutex<Vec<FailPoint>>,
}

impl Faults {
    fn from_budget(budget: &Budget) -> Faults {
        Faults {
            points: Mutex::new(budget.fail_points.clone()),
        }
    }

    fn hit(&self, site: &str) -> bool {
        let mut points = self.points.lock().unwrap_or_else(PoisonError::into_inner);
        fail_point_fires(&mut points, site)
    }
}

#[derive(Debug)]
struct WalWriter {
    file: std::fs::File,
    /// Logical end of the file as we have written it.
    len: u64,
    /// File length at the last successful fsync. On a write or fsync
    /// failure the file is rolled back here — modeling a crash that
    /// loses everything the page cache had not yet made durable.
    durable_len: u64,
    /// Next frame sequence number.
    next_seq: u64,
    /// Set when the store is poisoned; the reason is reported via SSD403.
    read_only: Option<String>,
}

/// A durable database: WAL + copy-on-write snapshot generations.
///
/// All methods take `&self`; the store is `Sync` and meant to be shared
/// behind an `Arc`. Writers serialize on the WAL mutex; readers only
/// touch the generation mutex for the instant it takes to clone an `Arc`.
pub struct Store {
    dir: PathBuf,
    wal: Mutex<WalWriter>,
    current: Mutex<Arc<Database>>,
    faults: Faults,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn io_err(context: &str, e: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{context}: {e}"))
}

/// Apply one WAL op to a database, returning the next copy-on-write
/// image. Both verbs use the *id-stable* mutation forms: surviving nodes
/// keep their ids across the op, which is what lets a commit maintain the
/// columnar triple index by merging one delta run instead of rebuilding.
fn apply_op(db: &Database, kind: u8, body: &str) -> Result<Database, StoreError> {
    match kind {
        wal::KIND_INSERT => Database::from_literal(body)
            .map(|d| db.union_id_stable(&d))
            .map_err(|e| StoreError::Invalid(format!("INSERT literal does not parse: {e}"))),
        wal::KIND_DELETE => Ok(db.delete_edges_id_stable(&Pred::Symbol(body.to_string()))),
        other => Err(StoreError::Invalid(format!("unknown op kind {other}"))),
    }
}

impl Store {
    /// Create a store layout in `dir`: write the base image and an empty
    /// log, fsyncing both. Fails if `dir` already holds a base image.
    // lint: allow(durability) — init runs before any WAL exists; a crash here loses nothing committed, the caller just re-runs init
    pub fn init(dir: &Path, base: &Database) -> Result<(), StoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create data dir", &e))?;
        let base_path = dir.join(BASE_FILE);
        if base_path.exists() {
            return Err(StoreError::Invalid(format!(
                "refusing to overwrite existing store at {}",
                dir.display()
            )));
        }
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&base_path)
            .map_err(|e| io_err("create base image", &e))?;
        f.write_all(base.to_literal().as_bytes())
            .map_err(|e| io_err("write base image", &e))?;
        f.sync_data().map_err(|e| io_err("sync base image", &e))?;
        let wal = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))
            .map_err(|e| io_err("create wal", &e))?;
        wal.sync_data().map_err(|e| io_err("sync wal", &e))?;
        Ok(())
    }

    /// Does `dir` hold a store layout?
    pub fn is_initialized(dir: &Path) -> bool {
        dir.join(BASE_FILE).exists()
    }

    /// Open the store, running recovery. See [`Store::open_traced`].
    pub fn open(dir: &Path, budget: &Budget) -> Result<(Store, RecoveryReport), StoreError> {
        Store::open_traced(dir, budget, None)
    }

    /// Open the store in `dir`: parse the base image, scan and replay the
    /// WAL's committed prefix, truncate any torn/corrupt/uncommitted
    /// tail, and position the writer after the last commit. `budget`
    /// supplies fail points (site `wal.read` corrupts the log image as
    /// read, for exercising SSD401). The recovery runs under a
    /// [`Phase::Store`] span when `tracer` is given.
    pub fn open_traced(
        dir: &Path,
        budget: &Budget,
        tracer: Option<&Tracer>,
    ) -> Result<(Store, RecoveryReport), StoreError> {
        let _sp = ssd_trace::span(tracer, Phase::Store, "recover", None);
        let base_text = match fs::read_to_string(dir.join(BASE_FILE)) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotInitialized(dir.display().to_string()));
            }
            Err(e) => return Err(io_err("read base image", &e)),
        };
        let base = Database::from_literal(&base_text)
            .map_err(|e| StoreError::Invalid(format!("base image does not parse: {e}")))?;

        let faults = Faults::from_budget(budget);
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = match fs::read(&wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read wal", &e)),
        };
        if faults.hit("wal.read") {
            // Model media corruption surfacing at read time: flip the last
            // byte (the final frame's CRC trailer), which recovery must
            // detect as SSD401 and truncate.
            if let Some(b) = bytes.last_mut() {
                *b ^= 0xFF;
            }
        }

        let scan = wal::scan(&bytes);
        let file_len = bytes.len() as u64;
        let truncated = file_len - scan.committed_len;
        let mut diagnostics = Vec::new();
        if let Some(issue) = &scan.tail {
            match issue {
                wal::TailIssue::Corrupt {
                    at,
                    kind: wal::CorruptKind::Checksum,
                } => diagnostics.push(Diagnostic::new(
                    Code::WalChecksumMismatch,
                    format!("wal frame checksum mismatch at byte {at}"),
                )),
                wal::TailIssue::SeqBreak { at, expected, got } => {
                    diagnostics.push(Diagnostic::new(
                        Code::WalChecksumMismatch,
                        format!(
                            "wal sequence break at byte {at}: expected seq {expected}, found {got}"
                        ),
                    ));
                }
                _ => {}
            }
            let detail = match issue {
                wal::TailIssue::Torn { at } => format!("torn frame at byte {at}"),
                wal::TailIssue::Corrupt { at, kind } => format!("{kind} at byte {at}"),
                wal::TailIssue::SeqBreak { at, .. } => format!("sequence break at byte {at}"),
                wal::TailIssue::Uncommitted { ops } => {
                    format!("{ops} op frame(s) with no COMMIT")
                }
            };
            diagnostics.push(Diagnostic::new(
                Code::WalTornTail,
                format!("wal tail truncated: {truncated} byte(s) discarded ({detail})"),
            ));
        }

        let mut db: Option<Database> = None;
        for txn in &scan.txns {
            for op in &txn.ops {
                let cur = db.as_ref().unwrap_or(&base);
                db = Some(apply_op(cur, op.kind, &op.body)?);
            }
        }
        let generation = scan.txns.len() as u64;
        let db = db.unwrap_or(base).with_generation(generation);

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| io_err("open wal for append", &e))?;
        let disk_len = file.metadata().map_err(|e| io_err("stat wal", &e))?.len();
        if disk_len > scan.committed_len {
            file.set_len(scan.committed_len)
                .map_err(|e| io_err("truncate wal tail", &e))?;
            file.sync_data().map_err(|e| io_err("sync wal", &e))?;
        }
        file.seek(SeekFrom::Start(scan.committed_len))
            .map_err(|e| io_err("seek wal", &e))?;

        diagnostics.push(Diagnostic::new(
            Code::RecoveryReplayed,
            format!(
                "recovery replayed {} committed transaction(s) ({} frame(s)); generation {}",
                scan.txns.len(),
                scan.frames,
                generation
            ),
        ));
        ssd_trace::instant(
            tracer,
            Phase::Store,
            "recovered",
            vec![
                ("txns", FieldValue::U64(generation)),
                ("frames", FieldValue::U64(scan.frames)),
                ("truncated_bytes", FieldValue::U64(truncated)),
                ("generation", FieldValue::U64(generation)),
            ],
        );

        let report = RecoveryReport {
            txns_replayed: generation,
            frames: scan.frames,
            truncated_bytes: truncated,
            generation,
            diagnostics,
        };
        let store = Store {
            dir: dir.to_path_buf(),
            wal: Mutex::new(WalWriter {
                file,
                len: scan.committed_len,
                durable_len: scan.committed_len,
                next_seq: scan.last_seq + 1,
                read_only: None,
            }),
            current: Mutex::new(Arc::new(db)),
            faults,
        };
        Ok((store, report))
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Pin the current generation. The returned `Arc` stays valid and
    /// unchanged for as long as the caller holds it, no matter how many
    /// commits happen meanwhile — that is the snapshot-isolation
    /// guarantee readers rely on.
    pub fn snapshot(&self) -> Arc<Database> {
        lock(&self.current).clone()
    }

    /// The generation new snapshots would pin (== committed txn count).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// When poisoned, the reason writes are being rejected (SSD403).
    pub fn read_only(&self) -> Option<String> {
        lock(&self.wal).read_only.clone()
    }

    /// Current logical WAL length in bytes (for tests and smoke checks).
    pub fn wal_len(&self) -> u64 {
        lock(&self.wal).len
    }

    /// Commit a transaction. See [`Store::commit_traced`].
    pub fn commit(&self, txn: &Txn) -> Result<CommitInfo, StoreError> {
        self.commit_traced(txn, None)
    }

    /// Atomically apply and persist `txn`: build the next copy-on-write
    /// database image (validating every op *before* any byte is
    /// written), append op frames + a COMMIT frame to the WAL, fsync,
    /// then swap the shared generation. Concurrent readers holding
    /// snapshots are never blocked and never observe a partial
    /// transaction. On any I/O failure (real or injected) the store
    /// rolls the file back to its last durable length where possible and
    /// poisons itself read-only — after a failed commit the in-memory
    /// generation still matches the durable prefix, and the only way to
    /// resume writing is to reopen (crash semantics, made explicit).
    pub fn commit_traced(
        &self,
        txn: &Txn,
        tracer: Option<&Tracer>,
    ) -> Result<CommitInfo, StoreError> {
        if txn.is_empty() {
            return Err(StoreError::Invalid(
                "empty transaction: nothing to commit".to_string(),
            ));
        }
        let _sp = ssd_trace::span(tracer, Phase::Store, "commit", None);
        let mut w = lock(&self.wal);
        if let Some(reason) = &w.read_only {
            return Err(StoreError::ReadOnly(reason.clone()));
        }

        // Validate and apply copy-on-write, before any byte is written.
        let snap = self.snapshot();
        let mut db: Option<Database> = None;
        for op in &txn.ops {
            let cur = db.as_ref().unwrap_or(&snap);
            db = Some(apply_op(cur, op.kind(), op.body())?);
        }
        let Some(db) = db else {
            return Err(StoreError::Invalid("empty transaction".to_string()));
        };

        // Append op frames, then the COMMIT frame, then fsync.
        let first_seq = w.next_seq;
        let mut bytes_written = 0u64;
        for (i, op) in txn.ops.iter().enumerate() {
            let frame = wal::encode_frame(first_seq + i as u64, op.kind(), op.body().as_bytes());
            self.write_frame(&mut w, &frame)?;
            bytes_written += frame.len() as u64;
        }
        let commit_seq = first_seq + txn.ops.len() as u64;
        let commit_frame = wal::encode_frame(commit_seq, wal::KIND_COMMIT, b"");
        self.write_frame(&mut w, &commit_frame)?;
        bytes_written += commit_frame.len() as u64;

        if self.faults.hit("wal.fsync") {
            Self::rollback(&mut w, "injected fsync failure at 'wal.fsync'");
            return Err(StoreError::Fault("wal.fsync".to_string()));
        }
        if let Err(e) = w.file.sync_data() {
            let msg = format!("fsync failed: {e}");
            Self::rollback(&mut w, &msg);
            return Err(StoreError::Io(msg));
        }
        w.durable_len = w.len;
        w.next_seq = commit_seq + 1;

        // Durable: publish the new generation. Because the ops were
        // applied id-stably, the previous generation's triple index (if
        // one was ever built) absorbs this commit as a single sorted
        // delta run; the merged index is pre-seeded into the new
        // snapshot so readers never pay a full rebuild after a commit.
        let generation = snap.generation() + 1;
        let mut db = db.with_generation(generation);
        if let Some(base_index) = snap.existing_index() {
            if let Ok(merged) = base_index.merge_delta(db.graph()) {
                let triples = merged.len() as u64;
                db = db.with_seeded_index(merged);
                ssd_trace::instant(
                    tracer,
                    Phase::Index,
                    "merge-delta",
                    vec![
                        ("generation", FieldValue::U64(generation)),
                        ("triples", FieldValue::U64(triples)),
                    ],
                );
            }
        }
        let db = Arc::new(db);
        *lock(&self.current) = db;
        ssd_trace::instant(
            tracer,
            Phase::Store,
            "committed",
            vec![
                ("generation", FieldValue::U64(generation)),
                ("seq", FieldValue::U64(commit_seq)),
                ("ops", FieldValue::U64(txn.ops.len() as u64)),
                ("bytes", FieldValue::U64(bytes_written)),
            ],
        );
        Ok(CommitInfo {
            generation,
            seq: commit_seq,
            ops: txn.ops.len(),
            bytes: bytes_written,
        })
    }

    /// Write one frame, honoring the injected-fault seams. `wal.write`
    /// models a write that never reaches the file (rolled back to the
    /// durable prefix, like a crash before the page cache flushed);
    /// `wal.torn` and `wal.short` flush a *partial* frame to disk — the
    /// torn tails recovery must detect and truncate.
    fn write_frame(&self, w: &mut WalWriter, frame: &[u8]) -> Result<(), StoreError> {
        if self.faults.hit("wal.write") {
            Self::rollback(w, "injected write failure at 'wal.write'");
            return Err(StoreError::Fault("wal.write".to_string()));
        }
        let cut = if self.faults.hit("wal.torn") {
            Some(("wal.torn", frame.len() / 2))
        } else if self.faults.hit("wal.short") {
            // Everything but the CRC trailer: a maximally plausible
            // almost-complete frame.
            Some(("wal.short", frame.len().saturating_sub(4)))
        } else {
            None
        };
        if let Some((site, cut)) = cut {
            let _ = w.file.write_all(&frame[..cut]);
            let _ = w.file.sync_data();
            w.len += cut as u64;
            w.durable_len = w.len;
            w.read_only = Some(format!("injected {site} left a partial frame on disk"));
            return Err(StoreError::Fault(site.to_string()));
        }
        match w.file.write_all(frame) {
            Ok(()) => {
                w.len += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                let msg = format!("frame write failed: {e}");
                Self::rollback(w, &msg);
                Err(StoreError::Io(msg))
            }
        }
    }

    /// Roll the file back to the last durable length and poison the
    /// store read-only. Models a crash: unsynced bytes are gone, and the
    /// process must reopen (recover) before writing again.
    fn rollback(w: &mut WalWriter, reason: &str) {
        let _ = w.file.set_len(w.durable_len);
        let _ = w.file.seek(SeekFrom::Start(w.durable_len));
        let _ = w.file.sync_data();
        w.len = w.durable_len;
        w.read_only = Some(reason.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIRS: AtomicU64 = AtomicU64::new(0);

    fn tmpdir(tag: &str) -> PathBuf {
        let n = DIRS.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ssd-store-unit-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn db(src: &str) -> Database {
        Database::from_literal(src).unwrap()
    }

    #[test]
    fn txn_script_round_trips_multiline_literals() {
        let txn = Txn::new()
            .insert("{Movie: {Title: \"Z\",\n Year: 1969}}")
            .delete("Year")
            .insert("{A: {}}");
        let script = txn.to_script();
        assert_eq!(Txn::parse_script(&script).unwrap(), txn);
        assert_eq!(Txn::parse_script("").unwrap(), Txn::new());
        assert!(Txn::parse_script("INSERT nope\nx").is_err());
        assert!(Txn::parse_script("FROB 1\nx\n").is_err());
        assert!(Txn::parse_script("INSERT 99\nshort\n").is_err());
    }

    #[test]
    fn init_commit_reopen_preserves_committed_state() {
        let dir = tmpdir("roundtrip");
        Store::init(&dir, &db("{Seed: {}}")).unwrap();
        let (store, report) = Store::open(&dir, &Budget::unlimited()).unwrap();
        assert_eq!(report.txns_replayed, 0);
        assert_eq!(store.generation(), 0);

        let info = store
            .commit(&Txn::new().insert("{Movie: {Title: \"Casablanca\"}}"))
            .unwrap();
        assert_eq!(info.generation, 1);
        store.commit(&Txn::new().delete("Seed")).unwrap();
        assert_eq!(store.generation(), 2);
        let literal = store.snapshot().to_literal();
        drop(store);

        let (again, report) = Store::open(&dir, &Budget::unlimited()).unwrap();
        assert_eq!(report.txns_replayed, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(again.generation(), 2);
        assert_eq!(again.snapshot().to_literal(), literal);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::RecoveryReplayed));
    }

    #[test]
    fn snapshots_pin_their_generation_across_commits() {
        let dir = tmpdir("pin");
        Store::init(&dir, &db("{Seed: {}}")).unwrap();
        let (store, _) = Store::open(&dir, &Budget::unlimited()).unwrap();
        let pinned = store.snapshot();
        let before = pinned.to_literal();
        store.commit(&Txn::new().insert("{New: {}}")).unwrap();
        assert_eq!(pinned.generation(), 0);
        assert_eq!(pinned.to_literal(), before);
        assert_eq!(store.snapshot().generation(), 1);
    }

    #[test]
    fn injected_fsync_failure_poisons_and_loses_nothing_committed() {
        let dir = tmpdir("fsync");
        Store::init(&dir, &db("{Seed: {}}")).unwrap();
        let budget = Budget::unlimited().fail_at("wal.fsync", 1);
        let (store, _) = Store::open(&dir, &budget).unwrap();
        store.commit(&Txn::new().insert("{A: {}}")).unwrap_err();
        assert!(store.read_only().is_some());
        let err = store.commit(&Txn::new().insert("{B: {}}")).unwrap_err();
        assert!(matches!(err, StoreError::ReadOnly(_)));
        assert!(err.headline().contains("SSD403"));
        drop(store);
        let (again, report) = Store::open(&dir, &Budget::unlimited()).unwrap();
        assert_eq!(report.txns_replayed, 0);
        assert_eq!(again.generation(), 0);
    }

    #[test]
    fn torn_write_is_truncated_on_reopen() {
        let dir = tmpdir("torn");
        Store::init(&dir, &db("{Seed: {}}")).unwrap();
        let (store, _) = Store::open(&dir, &Budget::unlimited()).unwrap();
        store.commit(&Txn::new().insert("{A: {}}")).unwrap();
        drop(store);

        let budget = Budget::unlimited().fail_at("wal.torn", 1);
        let (store, _) = Store::open(&dir, &budget).unwrap();
        let err = store.commit(&Txn::new().insert("{B: {}}")).unwrap_err();
        assert_eq!(err, StoreError::Fault("wal.torn".to_string()));
        drop(store);

        let (again, report) = Store::open(&dir, &Budget::unlimited()).unwrap();
        assert_eq!(report.txns_replayed, 1);
        assert!(report.truncated_bytes > 0);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::WalTornTail));
        assert_eq!(again.generation(), 1);
    }

    #[test]
    fn commit_maintains_triple_index_by_delta_merge() {
        let dir = tmpdir("index");
        Store::init(&dir, &db("{Seed: {Movie: {Title: \"Z\"}}}")).unwrap();
        let (store, _) = Store::open(&dir, &Budget::unlimited()).unwrap();
        // Force the base index so commits merge deltas into it.
        assert!(store.snapshot().triple_index().is_some());
        store
            .commit(&Txn::new().insert("{Entry: {Movie: {Title: \"A\"}}}"))
            .unwrap();
        store.commit(&Txn::new().delete("Seed")).unwrap();

        let snap = store.snapshot();
        let merged = snap.triple_index().expect("merged index seeded");
        let rebuilt = semistructured::TripleIndex::build(snap.graph()).unwrap();
        // Dictionaries may order labels differently (the merged one keeps
        // the base generation's ids), so compare decoded triple sets.
        let key = |(s, l, o): &(u32, semistructured::Label, u32)| (*s, format!("{l:?}"), *o);
        let mut a = merged.decoded();
        let mut b = rebuilt.decoded();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(merged.root(), rebuilt.root());
    }

    #[test]
    fn read_corruption_reports_checksum_mismatch() {
        let dir = tmpdir("readfault");
        Store::init(&dir, &db("{Seed: {}}")).unwrap();
        let (store, _) = Store::open(&dir, &Budget::unlimited()).unwrap();
        store.commit(&Txn::new().insert("{A: {}}")).unwrap();
        store.commit(&Txn::new().insert("{B: {}}")).unwrap();
        drop(store);

        let budget = Budget::unlimited().fail_at("wal.read", 1);
        let (store, report) = Store::open(&dir, &budget).unwrap();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::WalChecksumMismatch));
        // The corrupt final frame (the last txn's COMMIT) is gone; the
        // prefix survives.
        assert_eq!(store.generation(), 1);
    }
}
