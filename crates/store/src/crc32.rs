//! Table-driven CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Hand-rolled because the workspace builds hermetically with no registry
//! access; the table is computed at compile time so the runtime cost is
//! one lookup and one shift per byte.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` — the zip/png/ethernet checksum. The standard check
/// value holds: `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_standard_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let clean = crc32(b"hello, wal");
        let mut buf = b"hello, wal".to_vec();
        for i in 0..buf.len() * 8 {
            buf[i / 8] ^= 1 << (i % 8);
            assert_ne!(clean, crc32(&buf), "flip of bit {i} went undetected");
            buf[i / 8] ^= 1 << (i % 8);
        }
    }
}
