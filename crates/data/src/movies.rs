//! The movie database: Figure 1 exactly, and at scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssd_graph::{Graph, Label, NodeId};

/// The movie database of Figure 1, edge for edge.
///
/// Three entries — two movies and a TV show. The first movie
/// ("Casablanca") has a `Cast` with direct `Actors` edges; note the
/// paper's deliberate ("egregious") error: Bacall's actor edge is labeled
/// `"Play it again, Sam"` instead of `"Bacall"`. The second movie
/// ("Play it again, Sam") represents its cast through `Credit.Actors`,
/// has a `1.2E6` box-office real value, and `Director: "Allen"`. The TV
/// show has `Special_Guests` with integer-indexed episodes and a
/// `References` edge back into the second movie's entry, which carries an
/// `Is_referenced_in` edge back — the cycle.
pub fn figure1() -> Graph {
    let mut g = Graph::new();
    let root = g.root();

    // Entry 1: Casablanca.
    let e1 = g.add_node();
    g.add_sym_edge(root, "Entry", e1);
    let m1 = g.add_node();
    g.add_sym_edge(e1, "Movie", m1);
    g.add_attr(m1, "Title", "Casablanca");
    let cast1 = g.add_node();
    g.add_sym_edge(m1, "Cast", cast1);
    g.add_attr(cast1, "Actors", "Bogart");
    // The egregious error of Figure 1: this actor edge carries the wrong
    // label (the *other* movie's title) instead of "Bacall".
    g.add_attr(cast1, "Actors", "Play it again, Sam");
    g.add_attr(m1, "Director", "Curtiz");

    // Entry 2: Play it again, Sam.
    let e2 = g.add_node();
    g.add_sym_edge(root, "Entry", e2);
    let m2 = g.add_node();
    g.add_sym_edge(e2, "Movie", m2);
    g.add_attr(m2, "Title", "Play it again, Sam");
    let cast2 = g.add_node();
    g.add_sym_edge(m2, "Cast", cast2);
    let credit = g.add_node();
    g.add_sym_edge(cast2, "Credit", credit);
    g.add_attr(credit, "Actors", "Allen");
    g.add_attr(m2, "Director", "Allen");
    let box_office = g.add_node();
    g.add_sym_edge(m2, "BoxOffice", box_office);
    g.add_value_edge(box_office, 1.2e6);

    // Entry 3: the TV show with integer-indexed special guests.
    let e3 = g.add_node();
    g.add_sym_edge(root, "Entry", e3);
    let tv = g.add_node();
    g.add_sym_edge(e3, "TV_Show", tv);
    g.add_attr(tv, "Title", "The Tonight Show");
    let cast3 = g.add_node();
    g.add_sym_edge(tv, "Cast", cast3);
    g.add_attr(cast3, "Actors", "Carson");
    let episode = g.add_node();
    g.add_sym_edge(tv, "Episode", episode);
    let guests = g.add_node();
    g.add_sym_edge(episode, "Special_Guests", guests);
    let g1 = g.add_node();
    g.add_edge(guests, Label::int(1), g1);
    g.add_value_edge(g1, "Allen");
    let g2 = g.add_node();
    g.add_edge(guests, Label::int(2), g2);
    g.add_value_edge(g2, "Bogart");

    // The References / Is_referenced_in cycle between the TV show and the
    // second movie's entry.
    g.add_sym_edge(tv, "References", e2);
    g.add_sym_edge(e2, "Is_referenced_in", e3);

    g
}

/// Configuration for the scalable IMDB-like generator.
#[derive(Debug, Clone)]
pub struct MovieDbConfig {
    pub movies: usize,
    pub tv_shows: usize,
    /// Distinct actor pool size (shared across productions — creates
    /// joinable values).
    pub actors: usize,
    /// Probability that a movie uses the `Credit.Actors` representation
    /// instead of direct `Actors` (the Figure 1 heterogeneity).
    pub credit_cast_prob: f64,
    /// Probability that an entry gets a `References` edge to another
    /// entry (with the reciprocal `Is_referenced_in`), creating cycles.
    pub reference_prob: f64,
    pub seed: u64,
}

impl Default for MovieDbConfig {
    fn default() -> Self {
        MovieDbConfig {
            movies: 100,
            tv_shows: 20,
            actors: 50,
            credit_cast_prob: 0.3,
            reference_prob: 0.1,
            seed: 42,
        }
    }
}

impl MovieDbConfig {
    /// Scale the default shape to roughly `n` entries.
    pub fn sized(n: usize) -> MovieDbConfig {
        MovieDbConfig {
            movies: n * 5 / 6,
            tv_shows: n / 6,
            actors: (n / 2).max(10),
            ..MovieDbConfig::default()
        }
    }
}

/// Generate a scalable movie database with the structure of Figure 1:
/// heterogeneous casts, mixed value types, and reference cycles.
pub fn movie_database(cfg: &MovieDbConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let root = g.root();
    let mut entries: Vec<NodeId> = Vec::new();

    for i in 0..cfg.movies {
        let e = g.add_node();
        g.add_sym_edge(root, "Entry", e);
        entries.push(e);
        let m = g.add_node();
        g.add_sym_edge(e, "Movie", m);
        g.add_attr(m, "Title", format!("Movie {i}"));
        g.add_attr(m, "Year", 1930 + (rng.gen_range(0..70)) as i64);
        let cast = g.add_node();
        g.add_sym_edge(m, "Cast", cast);
        let holder = if rng.gen_bool(cfg.credit_cast_prob) {
            let credit = g.add_node();
            g.add_sym_edge(cast, "Credit", credit);
            credit
        } else {
            cast
        };
        for _ in 0..rng.gen_range(1..=4usize) {
            let a = rng.gen_range(0..cfg.actors);
            g.add_attr(holder, "Actors", format!("Actor {a}"));
        }
        let d = rng.gen_range(0..cfg.actors);
        g.add_attr(m, "Director", format!("Actor {d}"));
        if rng.gen_bool(0.5) {
            let bo = g.add_node();
            g.add_sym_edge(m, "BoxOffice", bo);
            g.add_value_edge(bo, rng.gen_range(10_000..5_000_000) as i64);
        }
    }
    for i in 0..cfg.tv_shows {
        let e = g.add_node();
        g.add_sym_edge(root, "Entry", e);
        entries.push(e);
        let tv = g.add_node();
        g.add_sym_edge(e, "TV_Show", tv);
        g.add_attr(tv, "Title", format!("Show {i}"));
        g.add_attr(tv, "Episode", rng.gen_range(1..500) as i64);
        let cast = g.add_node();
        g.add_sym_edge(tv, "Cast", cast);
        let guests = g.add_node();
        g.add_sym_edge(cast, "Special_Guests", guests);
        for k in 0..rng.gen_range(1..=3usize) {
            let a = rng.gen_range(0..cfg.actors);
            let gn = g.add_node();
            g.add_edge(guests, Label::int(k as i64 + 1), gn);
            g.add_value_edge(gn, format!("Actor {a}"));
        }
    }
    // Reference cycles between entries.
    let n = entries.len();
    if n > 1 {
        for &e in &entries {
            if rng.gen_bool(cfg.reference_prob) {
                let target = entries[rng.gen_range(0..n)];
                if target != e {
                    g.add_sym_edge(e, "References", target);
                    g.add_sym_edge(target, "Is_referenced_in", e);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::bisim::graphs_bisimilar;

    #[test]
    fn figure1_has_three_entries() {
        let g = figure1();
        assert_eq!(g.successors_by_name(g.root(), "Entry").len(), 3);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn figure1_is_cyclic_through_references() {
        let g = figure1();
        assert!(g.has_cycle());
    }

    #[test]
    fn figure1_has_heterogeneous_casts() {
        let g = figure1();
        // One cast uses Actors directly, another goes through Credit.
        let entries = g.successors_by_name(g.root(), "Entry");
        let mut direct = 0;
        let mut via_credit = 0;
        for e in entries {
            for kind in ["Movie", "TV_Show"] {
                for m in g.successors_by_name(e, kind) {
                    for c in g.successors_by_name(m, "Cast") {
                        if !g.successors_by_name(c, "Actors").is_empty() {
                            direct += 1;
                        }
                        if !g.successors_by_name(c, "Credit").is_empty() {
                            via_credit += 1;
                        }
                    }
                }
            }
        }
        assert!(direct >= 2);
        assert_eq!(via_credit, 1);
    }

    #[test]
    fn figure1_contains_the_egregious_error() {
        // Bacall's edge is labeled with the other movie's title.
        let g = figure1();
        let idx = ssd_graph::index::GraphIndex::build(&g);
        let wrong = idx.value_edges(&ssd_graph::Value::Str("Play it again, Sam".into()));
        // Once as the mislabeled actor, once as the actual title.
        assert_eq!(wrong.len(), 2);
    }

    #[test]
    fn figure1_has_real_and_int_values() {
        let g = figure1();
        let idx = ssd_graph::index::GraphIndex::build(&g);
        assert!(idx
            .distinct_values()
            .any(|v| matches!(v, ssd_graph::Value::Real(r) if (*r - 1.2e6).abs() < 1.0)));
        assert!(idx
            .distinct_values()
            .any(|v| matches!(v, ssd_graph::Value::Int(_))));
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = MovieDbConfig::default();
        let a = movie_database(&cfg);
        let b = movie_database(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(graphs_bisimilar(&a, &b));
    }

    #[test]
    fn generator_scales() {
        let small = movie_database(&MovieDbConfig::sized(20));
        let large = movie_database(&MovieDbConfig::sized(200));
        assert!(large.edge_count() > 5 * small.edge_count());
        assert_eq!(
            small.successors_by_name(small.root(), "Entry").len(),
            20 * 5 / 6 + 20 / 6
        );
    }

    #[test]
    fn generator_produces_both_cast_shapes() {
        let g = movie_database(&MovieDbConfig {
            movies: 100,
            credit_cast_prob: 0.5,
            ..MovieDbConfig::default()
        });
        let idx = ssd_graph::index::GraphIndex::build(&g);
        let credit_sym = g.symbols().get("Credit").unwrap();
        assert!(!idx.symbol_edges(credit_sym).is_empty());
        let actors_sym = g.symbols().get("Actors").unwrap();
        assert!(!idx.symbol_edges(actors_sym).is_empty());
    }

    #[test]
    fn generator_cycles_controlled_by_probability() {
        let none = movie_database(&MovieDbConfig {
            reference_prob: 0.0,
            ..MovieDbConfig::default()
        });
        assert!(!none.has_cycle());
        let many = movie_database(&MovieDbConfig {
            reference_prob: 0.9,
            ..MovieDbConfig::default()
        });
        assert!(many.has_cycle());
    }
}
