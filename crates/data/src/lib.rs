//! # ssd-data — deterministic workload generators
//!
//! The paper's motivating data sources — the 1997 Web, the IMDB-derived
//! movie database of Figure 1, and ACeDB's *C. elegans* database (§1.1) —
//! are remote or proprietary. Per the reproduction's substitution rule we
//! generate synthetic equivalents that preserve the *structural*
//! properties every algorithm in the paper depends on:
//!
//! * [`movies`] — the exact Figure 1 instance (heterogeneous cast
//!   representations, the `References`/`Is_referenced_in` cycle, value and
//!   symbol edges side by side) plus a scalable IMDB-like generator.
//! * [`webgraph`] — page/link graphs with skewed out-degree and cycles.
//! * [`acedb`] — trees of arbitrary depth with loose, ragged structure.
//! * [`relational`] — flat relations for the relational-fragment and
//!   encoding experiments.
//!
//! All generators take an explicit seed and are deterministic.

pub mod acedb;
pub mod movies;
pub mod relational;
pub mod webgraph;

pub use movies::{figure1, movie_database, MovieDbConfig};
pub use webgraph::{web_graph, WebGraphConfig};
