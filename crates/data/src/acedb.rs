//! ACeDB-style biology trees (§1.1).
//!
//! "Another example ... is the database management system ACeDB, which is
//! popular with biologists. ... this schema imposes only loose constraints
//! on the data ... there are structures that are naturally expressed in
//! ACeDB, such as trees of arbitrary depth, that cannot be queried using
//! conventional techniques."
//!
//! The generator produces ragged taxonomies: every node *may* have any of
//! its attributes, subtrees nest to random depth, and leaves mix value
//! types — loose structure by construction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssd_graph::{Graph, NodeId};

/// Configuration for the ACeDB-like generator.
#[derive(Debug, Clone)]
pub struct AcedbConfig {
    /// Number of top-level objects (e.g. genes).
    pub objects: usize,
    /// Maximum nesting depth of the ragged subtrees.
    pub max_depth: usize,
    /// Mean branching factor within subtrees.
    pub branching: usize,
    pub seed: u64,
}

impl Default for AcedbConfig {
    fn default() -> Self {
        AcedbConfig {
            objects: 50,
            max_depth: 8,
            branching: 3,
            seed: 11,
        }
    }
}

const SECTION_NAMES: &[&str] = &[
    "Sequence",
    "Homology",
    "Expression",
    "Phenotype",
    "Reference",
    "Remark",
    "Clone",
    "Map",
];

/// Generate an ACeDB-like database: `root --Gene--> object`, objects with
/// ragged, arbitrarily deep section trees.
pub fn acedb(cfg: &AcedbConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let root = g.root();
    for i in 0..cfg.objects {
        let obj = g.add_node();
        g.add_sym_edge(root, "Gene", obj);
        g.add_attr(obj, "Name", format!("gene-{i}"));
        grow(&mut g, obj, cfg.max_depth, cfg.branching, &mut rng);
    }
    g
}

fn grow(g: &mut Graph, node: NodeId, depth: usize, branching: usize, rng: &mut SmallRng) {
    if depth == 0 {
        return;
    }
    let children = rng.gen_range(0..=branching);
    for _ in 0..children {
        let name = SECTION_NAMES[rng.gen_range(0..SECTION_NAMES.len())];
        let child = g.add_node();
        g.add_sym_edge(node, name, child);
        match rng.gen_range(0..4) {
            0 => {
                g.add_value_edge(child, rng.gen_range(0..100_000) as i64);
            }
            1 => {
                g.add_value_edge(child, format!("annotation-{}", rng.gen_range(0..1000)));
            }
            2 => {
                g.add_value_edge(child, rng.gen_range(0.0..1.0));
            }
            _ => {}
        }
        // Recurse to a *random* remaining depth — ragged trees.
        let next_depth = rng.gen_range(0..depth);
        grow(g, child, next_depth, branching, rng);
    }
}

/// Maximum depth (in edges) of the tree below the root — used to verify
/// the "trees of arbitrary depth" property.
pub fn max_depth(g: &Graph) -> usize {
    fn walk(g: &Graph, n: ssd_graph::NodeId, seen: &mut Vec<bool>) -> usize {
        if seen[n.index()] {
            return 0;
        }
        seen[n.index()] = true;
        let d = g
            .edges(n)
            .iter()
            .map(|e| 1 + walk(g, e.to, seen))
            .max()
            .unwrap_or(0);
        seen[n.index()] = false;
        d
    }
    let mut seen = vec![false; g.node_count()];
    walk(g, g.root(), &mut seen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = AcedbConfig::default();
        let a = acedb(&cfg);
        let b = acedb(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn object_count() {
        let g = acedb(&AcedbConfig::default());
        assert_eq!(g.successors_by_name(g.root(), "Gene").len(), 50);
    }

    #[test]
    fn trees_are_ragged_and_deep() {
        let g = acedb(&AcedbConfig {
            objects: 30,
            max_depth: 10,
            branching: 3,
            seed: 5,
        });
        let d = max_depth(&g);
        assert!(d >= 5, "expected deep trees, got depth {d}");
        assert!(!g.has_cycle());
    }

    #[test]
    fn mixed_value_types_present() {
        let g = acedb(&AcedbConfig::default());
        let idx = ssd_graph::index::GraphIndex::build(&g);
        let kinds: std::collections::BTreeSet<_> =
            idx.distinct_values().map(|v| v.kind()).collect();
        assert!(kinds.len() >= 2, "expected mixed leaf types: {kinds:?}");
    }

    #[test]
    fn loose_structure_not_all_objects_alike() {
        // Some gene has a Sequence section and some gene lacks it.
        let g = acedb(&AcedbConfig::default());
        let genes = g.successors_by_name(g.root(), "Gene");
        let with: usize = genes
            .iter()
            .filter(|&&o| !g.successors_by_name(o, "Sequence").is_empty())
            .count();
        assert!(with > 0);
        assert!(with < genes.len());
    }
}
