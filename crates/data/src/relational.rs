//! Flat relational data for the encoding and relational-fragment
//! experiments (E5, E8).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssd_graph::encode::relational::NamedRelation;
use ssd_graph::Value;

/// A tiny TPC-flavoured pair of relations: `orders(id, customer, total)`
/// and `customers(name, city)`, with joinable `customer`/`name` columns.
pub fn orders_and_customers(
    orders: usize,
    customers: usize,
    seed: u64,
) -> (NamedRelation, NamedRelation) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cust = NamedRelation::new("customers", &["name", "city"]);
    for i in 0..customers {
        cust.push(vec![
            Value::Str(format!("cust-{i}")),
            Value::Str(format!("city-{}", i % 10)),
        ]);
    }
    let mut ord = NamedRelation::new("orders", &["id", "customer", "total"]);
    for i in 0..orders {
        ord.push(vec![
            Value::Int(i as i64),
            Value::Str(format!("cust-{}", rng.gen_range(0..customers.max(1)))),
            Value::Int(rng.gen_range(1..100_000)),
        ]);
    }
    (ord, cust)
}

/// A single wide relation with `rows` rows and `cols` integer columns;
/// column `c0` is a key, values elsewhere are drawn from a small domain so
/// selections have tunable selectivity.
pub fn wide_relation(rows: usize, cols: usize, domain: i64, seed: u64) -> NamedRelation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
    let mut rel = NamedRelation::new(
        "wide",
        &names.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for r in 0..rows {
        let mut row = Vec::with_capacity(cols);
        row.push(Value::Int(r as i64));
        for _ in 1..cols {
            row.push(Value::Int(rng.gen_range(0..domain)));
        }
        rel.push(row);
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_keys_align() {
        let (ord, cust) = orders_and_customers(100, 10, 1);
        assert_eq!(ord.rows.len(), 100);
        assert_eq!(cust.rows.len(), 10);
        // Every order's customer exists.
        let names: std::collections::BTreeSet<&Value> = cust.rows.iter().map(|r| &r[0]).collect();
        for r in &ord.rows {
            assert!(names.contains(&r[1]));
        }
    }

    #[test]
    fn wide_relation_shape() {
        let rel = wide_relation(50, 4, 10, 2);
        assert_eq!(rel.rows.len(), 50);
        assert_eq!(rel.columns.len(), 4);
        // Key column distinct.
        let keys: std::collections::BTreeSet<&Value> = rel.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(keys.len(), 50);
    }

    #[test]
    fn deterministic() {
        let a = wide_relation(20, 3, 5, 9);
        let b = wide_relation(20, 3, 5, 9);
        assert_eq!(a, b);
    }
}
