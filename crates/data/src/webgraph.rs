//! Web-like graphs (§1.1: "the most immediate example of data that cannot
//! be constrained by a schema is the World-Wide-Web").
//!
//! Pages with `title`/`text` attributes and `link` edges; out-degrees are
//! skewed (a few hubs, many leaves) and back-links create cycles, matching
//! the structural properties web queries (\[29, 7\], WebSQL) rely on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssd_graph::{Graph, NodeId};

/// Web graph generator configuration.
#[derive(Debug, Clone)]
pub struct WebGraphConfig {
    pub pages: usize,
    /// Mean out-degree.
    pub mean_links: usize,
    /// Preferential-attachment strength in \[0, 1\]: 0 = uniform targets,
    /// 1 = heavily skewed toward early pages (hubs).
    pub skew: f64,
    pub seed: u64,
}

impl Default for WebGraphConfig {
    fn default() -> Self {
        WebGraphConfig {
            pages: 200,
            mean_links: 4,
            skew: 0.7,
            seed: 7,
        }
    }
}

/// Generate a site-like web graph: `root --page--> p_i`, pages carry
/// `title` and `words` attributes and `link` edges to other pages.
pub fn web_graph(cfg: &WebGraphConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let root = g.root();
    let mut pages: Vec<NodeId> = Vec::with_capacity(cfg.pages);
    for i in 0..cfg.pages {
        let p = g.add_node();
        g.add_sym_edge(root, "page", p);
        g.add_attr(p, "title", format!("Page {i}"));
        g.add_attr(p, "words", rng.gen_range(50..5000) as i64);
        pages.push(p);
    }
    for (i, &p) in pages.iter().enumerate() {
        let links = rng.gen_range(0..=cfg.mean_links * 2);
        for _ in 0..links {
            // Preferential attachment: with prob `skew`, pick from the
            // first sqrt(n) pages (hubs); otherwise uniform.
            let target_idx = if rng.gen_bool(cfg.skew) {
                let hubs = (cfg.pages as f64).sqrt().ceil() as usize;
                rng.gen_range(0..hubs.max(1))
            } else {
                rng.gen_range(0..cfg.pages)
            };
            if target_idx != i {
                g.add_sym_edge(p, "link", pages[target_idx]);
            }
        }
    }
    g
}

/// Partition-friendly fan-of-clusters graph used by the E11 parallel
/// decomposition benchmark: the root bridges into `clusters` dense
/// clusters, so (a) block partitioning yields few cross edges and (b) a
/// decomposed evaluation activates every cluster in its first wave —
/// maximal site-level parallelism. Each cluster ends in one `stop` edge.
pub fn clustered_graph(clusters: usize, cluster_size: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let root = g.root();
    for _ in 0..clusters {
        let members: Vec<NodeId> = (0..cluster_size).map(|_| g.add_node()).collect();
        g.add_sym_edge(root, "enter", members[0]);
        for (i, &m) in members.iter().enumerate() {
            // Dense intra-cluster edges.
            for _ in 0..3 {
                let t = members[rng.gen_range(0..cluster_size)];
                if t != m {
                    g.add_sym_edge(m, "intra", t);
                }
            }
            if i + 1 < cluster_size {
                g.add_sym_edge(m, "intra", members[i + 1]);
            }
        }
        let leaf = g.add_node();
        g.add_sym_edge(members[cluster_size - 1], "stop", leaf);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = WebGraphConfig::default();
        let a = web_graph(&cfg);
        let b = web_graph(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn page_count_and_reachability() {
        let g = web_graph(&WebGraphConfig::default());
        assert_eq!(g.successors_by_name(g.root(), "page").len(), 200);
        assert!(g.is_fully_reachable());
    }

    #[test]
    fn skew_creates_hubs() {
        let g = web_graph(&WebGraphConfig {
            pages: 300,
            skew: 0.9,
            ..WebGraphConfig::default()
        });
        // In-degree of the first page should dwarf the median.
        let mut indeg = vec![0usize; g.node_count()];
        for (_, label, to) in g.all_edges() {
            if label.as_symbol() == g.symbols().get("link") {
                indeg[to.index()] += 1;
            }
        }
        let max = indeg.iter().max().copied().unwrap_or(0);
        let nonzero: Vec<usize> = indeg.iter().copied().filter(|&d| d > 0).collect();
        let median = nonzero.get(nonzero.len() / 2).copied().unwrap_or(0);
        assert!(max >= median * 3, "max {max} vs median {median}");
    }

    #[test]
    fn web_graphs_have_cycles() {
        let g = web_graph(&WebGraphConfig::default());
        assert!(g.has_cycle());
    }

    #[test]
    fn clustered_graph_structure() {
        let g = clustered_graph(5, 20, 3);
        assert!(g.node_count() >= 100);
        use ssd_graph::Label;
        let stop = {
            let sym = g.symbols().get("stop").unwrap();
            g.all_edges()
                .filter(|(_, l, _)| **l == Label::Symbol(sym))
                .count()
        };
        assert_eq!(stop, 5, "one stop edge per cluster");
        assert!(g.is_fully_reachable());
    }
}
