//! `ssd` — the semistructured-data command line.
//!
//! ```text
//! ssd stats     DATA                       database statistics
//! ssd query     DATA QUERY [--optimized]   run a select-from-where query
//! ssd datalog   DATA PROGRAM [PRED]        run a datalog program
//! ssd browse    DATA string TEXT           §1.3: find a string
//! ssd browse    DATA ints THRESHOLD        §1.3: ints greater than N
//! ssd browse    DATA attrs PREFIX          §1.3: attribute-name prefix
//! ssd rewrite   DATA PROGRAM               structural-recursion rewrite
//! ssd schema    DATA                       extract a schema
//! ssd conforms  DATA SCHEMA_DATA           does DATA conform to the schema
//!                                          extracted from SCHEMA_DATA?
//! ssd dataguide DATA                       build the strong DataGuide
//! ssd dot       DATA                       Graphviz rendering
//! ssd fmt       DATA                       canonicalise the literal syntax
//! ```
//!
//! `DATA` is a file in the literal syntax (`{Movie: {Title: "C"}}`, with
//! `@x = ...` cycle markers), or `-` for stdin. `QUERY`/`PROGRAM`
//! arguments are taken literally, or read from a file when prefixed with
//! `@` (e.g. `@queries/titles.ssd`).

use ssd_cli::{run, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdin().lock()) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}\n\nrun `ssd help` for commands");
            ExitCode::from(2)
        }
        Err(CliError::Failed(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
