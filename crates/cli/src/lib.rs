//! Implementation of the `ssd` command line (see `main.rs` for the
//! synopsis). Commands are plain functions from parsed arguments to a
//! printable string, so everything is unit-testable without spawning
//! processes.

use semistructured::diag::DiagnosticSink;
use semistructured::{Budget, Database, Guard};
use std::cell::Cell;
use std::io::Read;

/// CLI failure modes.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation (wrong arguments) — exit code 2.
    Usage(String),
    /// The command itself failed — exit code 1.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

const HELP: &str = "\
ssd — semistructured data toolkit (Buneman, PODS 1997)

  ssd stats     DATA                       database statistics
  ssd query     DATA QUERY [--optimized]   run a select-from-where query
  ssd datalog   DATA PROGRAM [PRED]        run a datalog program
  ssd explain   DATA QUERY [--analyze]     query plan with the static cost
                [--optimized]              envelope; --analyze also runs it
                                           and prints per-operator actuals
  ssd check     DATA (query|datalog) TEXT  static analysis; flags:
                [--deny-warnings]          warnings also fail (exit 1)
                [--explain]                print inferred binding types
                [--estimate]               print the static cost envelope
                                           and SSD03x cost diagnostics
  ssd lint      [ROOT] [--deny-warnings]   workspace source lints (SSD9xx);
                [--json]                   one JSON object per finding line
                [--explain SSD9xx]         ROOT defaults to the current
                                           directory; see docs/LINTS.md
  ssd browse    DATA string TEXT           where is this string?
  ssd browse    DATA ints THRESHOLD        integers greater than N?
  ssd browse    DATA attrs PREFIX          attribute names with prefix?
  ssd rewrite   DATA PROGRAM               structural-recursion rewrite
  ssd schema    DATA                       extract a schema
  ssd conforms  DATA SCHEMA_DATA           conformance against extracted schema
  ssd diff      LEFT RIGHT [DEPTH]         structural diff of path languages
  ssd dataguide DATA                       strong DataGuide summary
  ssd dot       DATA                       Graphviz rendering
  ssd fmt       DATA                       canonical literal form
  ssd repl      DATA                       run commands from stdin (see 'help')
  ssd serve     DATA [--port N]            serve DATA over TCP (see below)
  ssd bench     [--scale N] [--seed S]     deterministic workload bench: a
                [--scenario M] [--json F]  seeded IMDB-shaped graph driven
                [--baseline F] [--rate R]  through a real server; emits the
                [--sessions N] [--profile] unified BENCH_workload.json and
                [--workers N] [--queue N]  checks it against --baseline
                                           (see docs/OBSERVABILITY.md)
  ssd client    PORT                       speak the wire protocol from stdin
  ssd recover   DIR                        replay DIR's write-ahead log and
                                           report what recovery found
  ssd json      DATA                       export as JSON (acyclic only)
  ssd xml       DATA                       export as XML (acyclic only)
  ssd import-json JSONFILE                 convert JSON to the literal form
  ssd import-xml  XMLFILE                  convert XML to the literal form

DATA is a literal-syntax file or '-' for stdin; QUERY/PROGRAM are literal
strings, or @FILE to read from a file.

Resource limits (query, datalog, rewrite, schema, dataguide):
  --timeout SECS      wall-clock deadline
  --max-steps N       deterministic work-step (fuel) ceiling
  --max-memory-mb N   accounted result-memory ceiling
  --max-depth N       recursion / derivation depth ceiling
  --partial           on exhaustion keep the partial result and warn
                      (SSD107) instead of failing
Admission control (query, datalog):
  --admission MODE    strict|warn|off (default off). Statically estimate
                      the cost envelope first; if even its lower bound
                      exceeds the budget, strict rejects with SSD030
                      before the engine does any work, warn prints
                      SSD030 as a warning and runs anyway.
Note: under --admission=strict, rejection takes precedence over
--partial (SSD034) — a rejected query never starts, so there is no
partial result to keep.
Tracing (query, datalog, explain — see docs/OBSERVABILITY.md):
  --trace             append the structured event trace to the output
  --trace-out FILE    stream trace events to FILE as JSON Lines
  --profile[=folded]  append per-phase fuel totals, or folded stacks
                      (flamegraph input) with =folded. Tracing upgrades
                      an unlimited budget to a metered one so fuel and
                      memory readings are real.

Serving (see docs/SERVING.md for the protocol):
  ssd serve DATA [--port N]        loopback TCP server (0 = ephemeral;
                                   prints `listening on 127.0.0.1:PORT`)
            [--data-dir DIR]       durable store: DATA seeds DIR on first
                                   run, then DIR's WAL is recovered and
                                   INSERT/DELETE/COMMIT are accepted;
                                   without it the server is read-only
                                   and mutation verbs fail with SSD403
            [--workers N]          worker threads (default 2)
            [--queue N]            run-queue capacity (default 16)
            [--session-fuel N]     default per-session fuel quota
            [--session-memory-mb N]  default per-session memory quota
            [--job-fuel N]         default per-job fuel ceiling
            [--job-memory-mb N]    default per-job memory ceiling
            [--max-jobs N]         default per-session concurrency cap
            [--metrics-dump]       print the metrics block on shutdown
            [--allow-remote-shutdown]  honor the client SHUTDOWN verb
  ssd client PORT                  each stdin line is one command frame
                                   (HELLO, QUERY, DATALOG, RPE, INSERT,
                                   DELETE, COMMIT, CANCEL, STATS, BYE,
                                   SHUTDOWN); waits for submitted jobs
                                   to finish, then BYE.
  ssd recover DIR                  open DIR's store without serving:
                                   replays the WAL, prints SSD400/SSD401
                                   findings and the SSD402 replay note.

Exhaustion renders an SSD1xx diagnostic and exits nonzero. The
SSD_FAILPOINTS environment variable (site=N, comma-separated) injects
deterministic faults at engine seams for testing.";

thread_local! {
    /// True while `run` is inside its `catch_unwind` boundary, so the
    /// process-wide panic hook knows to stay quiet: the panic is about
    /// to be rendered as an SSD111 diagnostic, not a raw backtrace.
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace for panics caught by [`run`]'s isolation boundary and
/// delegates everything else to the previous hook.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_DISPATCH.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Entry point shared by `main` and the tests. `stdin` backs the `-`
/// data argument.
///
/// Dispatch runs inside a `catch_unwind` boundary: an engine bug that
/// panics is reported as a rendered SSD111 diagnostic through the normal
/// [`CliError::Failed`] channel (nonzero exit) instead of aborting with a
/// raw backtrace.
pub fn run(args: &[String], stdin: &mut impl Read) -> Result<String, CliError> {
    install_quiet_panic_hook();
    IN_DISPATCH.with(|f| f.set(true));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(args, stdin)));
    IN_DISPATCH.with(|f| f.set(false));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_owned());
            Err(CliError::Failed(
                semistructured::diag::Diagnostic::new(
                    semistructured::diag::Code::EnginePanic,
                    format!("internal engine error: {msg}; please report this as a bug"),
                )
                .headline(),
            ))
        }
    }
}

fn dispatch(args: &[String], stdin: &mut impl Read) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();
    match cmd {
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        "stats" => {
            let db = load_db(one(&rest, "stats DATA")?, stdin)?;
            Ok(cmd_stats(&db))
        }
        "query" => {
            let (data, mut tail) = split_first(&rest, "query DATA QUERY")?;
            let mut budget = pop_budget(&mut tail)?;
            let admission = pop_admission(&mut tail)?;
            let trace = pop_trace(&mut tail)?;
            let optimized = take_flag(&mut tail, "--optimized");
            let text = arg_or_file(one(&tail, "query DATA QUERY")?)?;
            let db = load_db(data, stdin)?;
            let pre = admission_gate(&db, "query", &text, admission, &budget)?;
            if trace.active() {
                budget = ensure_metered(budget);
            }
            let setup = trace.build()?;
            let tracer = setup.as_ref().map(|(t, _)| t);
            let mut result = with_preamble(
                pre,
                cmd_query(&db, &text, optimized, &budget.guard(), tracer),
            );
            if let Some((t, ring)) = &setup {
                t.flush();
                if let Ok(out) = &mut result {
                    trace.append(ring, out);
                }
            }
            result
        }
        "datalog" => {
            let mut tail: Vec<&str> = rest.to_vec();
            let mut budget = pop_budget(&mut tail)?;
            let admission = pop_admission(&mut tail)?;
            let trace = pop_trace(&mut tail)?;
            if tail.len() < 2 || tail.len() > 3 {
                return Err(CliError::Usage("datalog DATA PROGRAM [PRED]".into()));
            }
            let db = load_db(tail[0], stdin)?;
            let program = arg_or_file(tail[1])?;
            let pre = admission_gate(&db, "datalog", &program, admission, &budget)?;
            if trace.active() {
                budget = ensure_metered(budget);
            }
            let setup = trace.build()?;
            let tracer = setup.as_ref().map(|(t, _)| t);
            let mut result = with_preamble(
                pre,
                cmd_datalog(&db, &program, tail.get(2).copied(), &budget.guard(), tracer),
            );
            if let Some((t, ring)) = &setup {
                t.flush();
                if let Ok(out) = &mut result {
                    trace.append(ring, out);
                }
            }
            result
        }
        "explain" => {
            let (data, mut tail) = split_first(&rest, EXPLAIN_USAGE)?;
            let budget = pop_budget(&mut tail)?;
            let trace = pop_trace(&mut tail)?;
            let analyze = take_flag(&mut tail, "--analyze");
            let optimized = take_flag(&mut tail, "--optimized");
            let text = arg_or_file(one(&tail, EXPLAIN_USAGE)?)?;
            let db = load_db(data, stdin)?;
            cmd_explain(&db, &text, analyze, optimized, budget, &trace)
        }
        "check" => {
            let mut tail: Vec<&str> = rest.to_vec();
            let deny_warnings = tail.contains(&"--deny-warnings");
            let explain = tail.contains(&"--explain");
            let estimate = tail.contains(&"--estimate");
            tail.retain(|a| *a != "--deny-warnings" && *a != "--explain" && *a != "--estimate");
            if tail.len() != 3 {
                return Err(CliError::Usage(
                    "check DATA (query|datalog) TEXT [--deny-warnings] [--explain] [--estimate]"
                        .into(),
                ));
            }
            let db = load_db(tail[0], stdin)?;
            let text = arg_or_file(tail[2])?;
            cmd_check(&db, tail[1], &text, deny_warnings, explain, estimate)
        }
        "lint" => cmd_lint(&rest),
        "browse" => {
            if rest.len() != 3 {
                return Err(CliError::Usage(
                    "browse DATA (string|ints|attrs) ARG".into(),
                ));
            }
            let db = load_db(rest[0], stdin)?;
            cmd_browse(&db, rest[1], rest[2])
        }
        "rewrite" => {
            let (data, mut tail) = split_first(&rest, "rewrite DATA PROGRAM")?;
            let budget = pop_budget(&mut tail)?;
            let program = arg_or_file(one(&tail, "rewrite DATA PROGRAM")?)?;
            let db = load_db(data, stdin)?;
            let guard = budget.guard();
            let out = db
                .rewrite_with(&program, &guard)
                .map_err(CliError::Failed)?;
            Ok(prepend_truncation(&guard, out.to_literal()))
        }
        "schema" => {
            let mut tail: Vec<&str> = rest.to_vec();
            let budget = pop_budget(&mut tail)?;
            let db = load_db(one(&tail, "schema DATA")?, stdin)?;
            let guard = budget.guard();
            let schema = db.extract_schema_with(&guard).map_err(CliError::Failed)?;
            Ok(prepend_truncation(&guard, schema.to_string()))
        }
        "diff" => {
            if rest.len() < 2 || rest.len() > 3 {
                return Err(CliError::Usage("diff LEFT RIGHT [DEPTH]".into()));
            }
            let left = load_db(rest[0], stdin)?;
            let right = load_db(rest[1], stdin)?;
            let depth: usize = rest
                .get(2)
                .map(|d| {
                    d.parse()
                        .map_err(|_| CliError::Usage(format!("bad depth '{d}'")))
                })
                .transpose()?
                .unwrap_or(6);
            let d = semistructured::schema::diff_paths(left.graph(), right.graph(), depth);
            if d.is_empty() {
                return Ok(format!(
                    "identical path languages to depth {depth} ({} shared paths)",
                    d.shared
                ));
            }
            let mut out = String::new();
            let render = |g: &semistructured::Graph, p: &[semistructured::Label]| {
                p.iter()
                    .map(|l| l.display(g.symbols()).to_string())
                    .collect::<Vec<_>>()
                    .join(".")
            };
            for p in &d.only_left {
                out.push_str(&format!("- {}\n", render(left.graph(), p)));
            }
            for p in &d.only_right {
                out.push_str(&format!("+ {}\n", render(right.graph(), p)));
            }
            out.push_str(&format!("({} shared paths to depth {depth})", d.shared));
            Ok(out)
        }
        "conforms" => {
            if rest.len() != 2 {
                return Err(CliError::Usage("conforms DATA SCHEMA_DATA".into()));
            }
            let db = load_db(rest[0], stdin)?;
            let schema_src = load_db(rest[1], stdin)?;
            let schema = schema_src.extract_schema();
            Ok(format!("{}", db.conforms_to(&schema)))
        }
        "dataguide" => {
            let mut tail: Vec<&str> = rest.to_vec();
            let budget = pop_budget(&mut tail)?;
            let db = load_db(one(&tail, "dataguide DATA")?, stdin)?;
            let guard = budget.guard();
            let guide = semistructured::DataGuide::try_build(db.graph(), &guard)
                .map_err(|e| CliError::Failed(e.headline()))?;
            Ok(prepend_truncation(&guard, cmd_dataguide(&db, &guide)))
        }
        "dot" => {
            let db = load_db(one(&rest, "dot DATA")?, stdin)?;
            Ok(db.to_dot())
        }
        "repl" => {
            let path = one(&rest, "repl DATA (data from a file; commands from stdin)")?;
            if path == "-" {
                return Err(CliError::Usage(
                    "repl needs a data file; stdin carries the commands".into(),
                ));
            }
            let db = load_db(path, stdin)?;
            let mut input = String::new();
            stdin
                .read_to_string(&mut input)
                .map_err(|e| CliError::Failed(format!("reading stdin: {e}")))?;
            Ok(run_repl(&db, &input))
        }
        "fmt" => {
            let db = load_db(one(&rest, "fmt DATA")?, stdin)?;
            Ok(db.to_literal())
        }
        "json" => {
            let db = load_db(one(&rest, "json DATA")?, stdin)?;
            db.to_json().map_err(CliError::Failed)
        }
        "xml" => {
            let db = load_db(one(&rest, "xml DATA")?, stdin)?;
            db.to_xml().map_err(CliError::Failed)
        }
        "import-xml" => {
            let path = one(&rest, "import-xml XMLFILE")?;
            let text = read_path_or_stdin(path, stdin)?;
            let db = Database::from_xml(&text).map_err(CliError::Failed)?;
            Ok(db.to_literal())
        }
        "import-json" => {
            let path = one(&rest, "import-json JSONFILE")?;
            let text = read_path_or_stdin(path, stdin)?;
            let db = Database::from_json(&text).map_err(CliError::Failed)?;
            Ok(db.to_literal())
        }
        "serve" => cmd_serve(&rest, stdin),
        "bench" => cmd_bench(&rest),
        "client" => cmd_client(&rest, stdin),
        "recover" => cmd_recover(&rest),
        // Hidden trigger for exercising the panic-isolation boundary.
        #[cfg(test)]
        "__panic" => panic!("deliberate test panic"),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

/// Remove the shared resource-limit flags from `tail` and fold them into a
/// [`Budget`]. Fault-injection points are picked up from the
/// `SSD_FAILPOINTS` environment variable (`site=N`, comma-separated).
fn pop_budget(tail: &mut Vec<&str>) -> Result<Budget, CliError> {
    fn take_value(tail: &mut Vec<&str>, i: usize, flag: &str) -> Result<u64, CliError> {
        if i + 1 >= tail.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        let v = tail.remove(i + 1);
        v.parse()
            .map_err(|_| CliError::Usage(format!("{flag}: '{v}' is not a non-negative integer")))
    }
    let mut budget = Budget::unlimited();
    let mut i = 0;
    while i < tail.len() {
        match tail[i] {
            "--timeout" => {
                let secs = take_value(tail, i, "--timeout")?;
                budget = budget.timeout(std::time::Duration::from_secs(secs));
                tail.remove(i);
            }
            "--max-steps" => {
                let n = take_value(tail, i, "--max-steps")?;
                budget = budget.max_steps(n);
                tail.remove(i);
            }
            "--max-memory-mb" => {
                let n = take_value(tail, i, "--max-memory-mb")?;
                budget = budget.max_memory_mb(n);
                tail.remove(i);
            }
            "--max-depth" => {
                let n = take_value(tail, i, "--max-depth")?;
                budget = budget.max_depth(n as usize);
                tail.remove(i);
            }
            "--partial" => {
                budget = budget.partial(true);
                tail.remove(i);
            }
            _ => i += 1,
        }
    }
    if let Ok(spec) = std::env::var("SSD_FAILPOINTS") {
        budget = budget
            .fail_points_from_spec(&spec)
            .map_err(|e| CliError::Usage(format!("SSD_FAILPOINTS: {e}")))?;
    }
    Ok(budget)
}

/// Which profile rendering `--profile` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProfileKind {
    /// Per-phase span counts and fuel totals.
    Phases,
    /// `name;name;... fuel` folded stacks for flamegraph tooling.
    Folded,
}

/// Parsed `--trace` / `--trace-out FILE` / `--profile[=folded]` flags.
#[derive(Debug, Default)]
struct TraceOpts {
    trace: bool,
    out: Option<String>,
    profile: Option<ProfileKind>,
}

/// Remove the tracing flags from `tail`.
fn pop_trace(tail: &mut Vec<&str>) -> Result<TraceOpts, CliError> {
    let mut opts = TraceOpts::default();
    let mut i = 0;
    while i < tail.len() {
        let arg = tail[i];
        if arg == "--trace" {
            opts.trace = true;
            tail.remove(i);
        } else if let Some(v) = arg.strip_prefix("--trace-out=") {
            opts.out = Some(v.to_owned());
            tail.remove(i);
        } else if arg == "--trace-out" {
            if i + 1 >= tail.len() {
                return Err(CliError::Usage("--trace-out needs a file path".into()));
            }
            opts.out = Some(tail.remove(i + 1).to_owned());
            tail.remove(i);
        } else if arg == "--profile" {
            opts.profile = Some(ProfileKind::Phases);
            tail.remove(i);
        } else if let Some(v) = arg.strip_prefix("--profile=") {
            match v {
                "folded" => opts.profile = Some(ProfileKind::Folded),
                "phases" => opts.profile = Some(ProfileKind::Phases),
                other => {
                    return Err(CliError::Usage(format!(
                        "--profile must be 'folded' or 'phases', got '{other}'"
                    )))
                }
            }
            tail.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(opts)
}

impl TraceOpts {
    fn active(&self) -> bool {
        self.trace || self.out.is_some() || self.profile.is_some()
    }

    /// A tracer with a ring for in-process rendering, plus a JSONL file
    /// sink when `--trace-out` was given. `None` when tracing is off.
    fn build(
        &self,
    ) -> Result<
        Option<(
            semistructured::trace::Tracer,
            semistructured::trace::SharedRing,
        )>,
        CliError,
    > {
        if !self.active() {
            return Ok(None);
        }
        self.build_always().map(Some)
    }

    /// As [`TraceOpts::build`], unconditionally — `explain --analyze`
    /// always collects events (it renders phase totals itself).
    fn build_always(
        &self,
    ) -> Result<
        (
            semistructured::trace::Tracer,
            semistructured::trace::SharedRing,
        ),
        CliError,
    > {
        let tracer = semistructured::trace::Tracer::new();
        let ring = semistructured::trace::SharedRing::new(semistructured::trace::DEFAULT_RING_CAP);
        tracer.add_sink(Box::new(ring.clone()));
        if let Some(path) = &self.out {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Failed(format!("creating {path}: {e}")))?;
            tracer.add_sink(Box::new(semistructured::trace::JsonlSink::new(file)));
        }
        Ok((tracer, ring))
    }

    /// Append the requested renderings of the collected events to `out`.
    fn append(&self, ring: &semistructured::trace::SharedRing, out: &mut String) {
        let events = ring.snapshot();
        if self.trace {
            out.push_str(&format!("\n-- trace ({} event(s)):\n", events.len()));
            out.push_str(semistructured::trace::render_events(&events).trim_end());
        }
        match self.profile {
            Some(ProfileKind::Phases) => {
                out.push_str("\n-- profile (phase spans fuel):\n");
                out.push_str(semistructured::trace::phase_totals(&events).trim_end());
            }
            Some(ProfileKind::Folded) => {
                out.push_str("\n-- profile (folded stacks):\n");
                out.push_str(semistructured::trace::folded_stacks(&events).trim_end());
            }
            None => {}
        }
    }
}

/// Traced runs need an *active* guard or every fuel/memory reading would
/// be zero; when the user set no explicit ceilings, upgrade to the
/// practically-unlimited [`Budget::metered`] limits (never trip, full
/// accounting), preserving every other budget setting.
fn ensure_metered(mut budget: Budget) -> Budget {
    if budget.max_steps.is_none() && budget.max_memory_bytes.is_none() {
        let m = Budget::metered();
        budget.max_steps = m.max_steps;
        budget.max_memory_bytes = m.max_memory_bytes;
    }
    budget
}

/// Remove a boolean flag from `tail`, reporting whether it was present.
fn take_flag(tail: &mut Vec<&str>, flag: &str) -> bool {
    let before = tail.len();
    tail.retain(|a| *a != flag);
    tail.len() != before
}

/// How `--admission` treats a query whose static cost envelope cannot
/// fit the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// No admission check (the default; the guard still enforces limits
    /// at run time).
    Off,
    /// Print SSD030 as a warning and run anyway.
    Warn,
    /// Reject with SSD030 before the engine consumes any fuel.
    Strict,
}

/// Remove `--admission MODE` / `--admission=MODE` from `tail`.
fn pop_admission(tail: &mut Vec<&str>) -> Result<Admission, CliError> {
    let mut mode = Admission::Off;
    let mut i = 0;
    while i < tail.len() {
        let arg = tail[i];
        let value = if let Some(v) = arg.strip_prefix("--admission=") {
            tail.remove(i);
            Some(v)
        } else if arg == "--admission" {
            if i + 1 >= tail.len() {
                return Err(CliError::Usage(
                    "--admission needs a value (strict|warn|off)".into(),
                ));
            }
            let v = tail.remove(i + 1);
            tail.remove(i);
            Some(v)
        } else {
            None
        };
        match value {
            Some("strict") => mode = Admission::Strict,
            Some("warn") => mode = Admission::Warn,
            Some("off") => mode = Admission::Off,
            Some(other) => {
                return Err(CliError::Usage(format!(
                    "--admission must be strict|warn|off, got '{other}'"
                )))
            }
            None => i += 1,
        }
    }
    Ok(mode)
}

/// Run the admission check: estimate the cost envelope and ask the budget
/// whether the evaluation can possibly fit. Returns preamble text to
/// print above the result (the SSD030 warning in warn mode), or fails
/// outright in strict mode — before any evaluation guard exists, so a
/// rejected query costs zero engine fuel.
fn admission_gate(
    db: &Database,
    kind: &str,
    text: &str,
    mode: Admission,
    budget: &Budget,
) -> Result<String, CliError> {
    if mode == Admission::Off {
        return Ok(String::new());
    }
    let analysis = match kind {
        "query" => db.estimate_query(text),
        _ => db.estimate_datalog(text),
    }
    .map_err(CliError::Failed)?;
    match budget.admit(&analysis.envelope) {
        Ok(()) => Ok(String::new()),
        Err(d) if mode == Admission::Strict => {
            let mut msg = d.headline();
            // Precedence is explicit: strict admission rejects before the
            // engine starts, so there is never a partial result for
            // `--partial` to keep. Say so instead of silently ignoring
            // the flag.
            if budget.partial {
                msg.push('\n');
                msg.push_str(
                    &semistructured::diag::Diagnostic::new(
                        semistructured::diag::Code::AdmissionOverridesPartial,
                        "--partial has no effect under --admission=strict: \
                         rejection happens before evaluation, so no partial \
                         result exists to keep",
                    )
                    .headline(),
                );
            }
            Err(CliError::Failed(msg))
        }
        Err(mut d) => {
            d.severity = semistructured::diag::Severity::Warning;
            Ok(format!("{}\n", d.headline()))
        }
    }
}

/// Prefix a command's output — or its failure message — with the
/// admission preamble, so a warn-mode SSD030 is visible either way.
fn with_preamble(pre: String, result: Result<String, CliError>) -> Result<String, CliError> {
    if pre.is_empty() {
        return result;
    }
    match result {
        Ok(out) => Ok(format!("{pre}{out}")),
        Err(CliError::Failed(m)) => Err(CliError::Failed(format!("{pre}{m}"))),
        other => other,
    }
}

/// For commands whose output type carries no statistics, surface a
/// partial-mode truncation recorded on `guard` as an SSD107 warning line
/// above the normal output.
fn prepend_truncation(guard: &Guard, out: String) -> String {
    match guard.truncation() {
        Some(why) => format!(
            "{}\n{out}",
            semistructured::diag::Diagnostic::new(
                semistructured::diag::Code::TruncatedResult,
                format!("result truncated: {}", why.message()),
            )
            .headline()
        ),
        None => out,
    }
}

/// `ssd lint`: run the SSD9xx workspace source lints (see docs/LINTS.md).
/// Errors always fail; `--deny-warnings` makes warnings (panic-budget
/// drift) fail too, which is how ci.sh runs it.
fn cmd_lint(rest: &[&str]) -> Result<String, CliError> {
    const USAGE: &str = "lint [ROOT] [--deny-warnings] [--json] [--explain SSD9xx]";
    let mut tail: Vec<&str> = rest.to_vec();
    let deny_warnings = take_flag(&mut tail, "--deny-warnings");
    let json = take_flag(&mut tail, "--json");
    let mut explain_code: Option<String> = None;
    let mut i = 0;
    while i < tail.len() {
        if let Some(v) = tail[i].strip_prefix("--explain=") {
            explain_code = Some(v.to_owned());
            tail.remove(i);
        } else if tail[i] == "--explain" {
            if i + 1 >= tail.len() {
                return Err(CliError::Usage("--explain needs a code (SSD9xx)".into()));
            }
            explain_code = Some(tail.remove(i + 1).to_owned());
            tail.remove(i);
        } else {
            i += 1;
        }
    }
    if let Some(code) = explain_code {
        return match ssd_lint::explain(&code) {
            Some(text) => Ok(text.to_owned()),
            None => Err(CliError::Usage(format!(
                "'{code}' is not a lint code; known: {}",
                ssd_lint::lint_codes()
                    .iter()
                    .map(|c| c.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        };
    }
    let root = match tail.as_slice() {
        [] => std::path::PathBuf::from("."),
        [r] => std::path::PathBuf::from(r),
        _ => return Err(CliError::Usage(USAGE.into())),
    };
    let report = ssd_lint::lint_workspace(&root).map_err(CliError::Failed)?;
    let out = if json {
        // println!/eprintln! append the final newline.
        report.render_json().trim_end().to_owned()
    } else {
        report.render()
    };
    if ssd_lint::should_fail(&report, deny_warnings) {
        Err(CliError::Failed(out))
    } else {
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Serving: `ssd serve` / `ssd client` over the ssd-serve wire protocol
// ---------------------------------------------------------------------------

const SERVE_USAGE: &str = "serve DATA [--port N] [--data-dir DIR] [--workers N] \
[--queue N] [--session-fuel N] [--session-memory-mb N] [--job-fuel N] \
[--job-memory-mb N] [--max-jobs N] [--metrics-dump] [--allow-remote-shutdown]";

fn cmd_serve(rest: &[&str], stdin: &mut impl Read) -> Result<String, CliError> {
    fn take_value(tail: &mut Vec<&str>, i: usize, flag: &str) -> Result<u64, CliError> {
        if i + 1 >= tail.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        let v = tail.remove(i + 1);
        v.parse()
            .map_err(|_| CliError::Usage(format!("{flag}: '{v}' is not a non-negative integer")))
    }
    fn take_str<'a>(tail: &mut Vec<&'a str>, i: usize, flag: &str) -> Result<&'a str, CliError> {
        if i + 1 >= tail.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        Ok(tail.remove(i + 1))
    }
    let mut tail: Vec<&str> = rest.to_vec();
    let mut port: u16 = 0;
    let mut data_dir: Option<&str> = None;
    let mut cfg = ssd_serve::ServeConfig::default();
    let mut quota = ssd_serve::SessionQuota::default();
    let mut metrics_dump = false;
    let mut allow_shutdown = false;
    let mut i = 0;
    while i < tail.len() {
        match tail[i] {
            "--data-dir" => {
                data_dir = Some(take_str(&mut tail, i, "--data-dir")?);
                tail.remove(i);
            }
            "--port" => {
                let n = take_value(&mut tail, i, "--port")?;
                port = u16::try_from(n)
                    .map_err(|_| CliError::Usage(format!("--port: {n} is not a TCP port")))?;
                tail.remove(i);
            }
            "--workers" => {
                cfg.workers = (take_value(&mut tail, i, "--workers")? as usize).max(1);
                tail.remove(i);
            }
            "--queue" => {
                cfg.queue_cap = take_value(&mut tail, i, "--queue")? as usize;
                tail.remove(i);
            }
            "--session-fuel" => {
                quota.fuel = Some(take_value(&mut tail, i, "--session-fuel")?);
                tail.remove(i);
            }
            "--session-memory-mb" => {
                quota.memory = Some(take_value(&mut tail, i, "--session-memory-mb")? << 20);
                tail.remove(i);
            }
            "--job-fuel" => {
                quota.job_fuel = take_value(&mut tail, i, "--job-fuel")?;
                tail.remove(i);
            }
            "--job-memory-mb" => {
                quota.job_memory = take_value(&mut tail, i, "--job-memory-mb")? << 20;
                tail.remove(i);
            }
            "--max-jobs" => {
                quota.max_concurrent = (take_value(&mut tail, i, "--max-jobs")? as usize).max(1);
                tail.remove(i);
            }
            "--metrics-dump" => {
                metrics_dump = true;
                tail.remove(i);
            }
            "--allow-remote-shutdown" => {
                allow_shutdown = true;
                tail.remove(i);
            }
            _ => i += 1,
        }
    }
    let db = load_db(one(&tail, SERVE_USAGE)?, stdin)?;
    let store = match data_dir {
        Some(dir) => Some(std::sync::Arc::new(open_store(
            std::path::Path::new(dir),
            &db,
        )?)),
        None => None,
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| CliError::Failed(format!("bind 127.0.0.1:{port}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Failed(format!("local_addr: {e}")))?;
    // Printed eagerly (not via the returned string) so a script that
    // backgrounded us can read the ephemeral port while we serve.
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    serve_on_store(
        db,
        store,
        cfg,
        quota,
        listener,
        metrics_dump,
        allow_shutdown,
    )
}

const BENCH_USAGE: &str = "bench [--scale N] [--seed S] [--scenario M] [--json FILE] \
     [--baseline FILE] [--rate R] [--sessions N] [--workers N] [--queue N] \
     [--fanout N] [--payload N] [--profile]";

/// `ssd bench`: generate a seeded graph, replay the deterministic
/// scheduler trace, drive a real server with the mixed scenario load,
/// emit `BENCH_workload.json`, and (optionally) gate against a
/// committed baseline. Exits nonzero on scenario errors (SSD060) or
/// regressions beyond tolerance (SSD061); baseline-shape mismatches
/// are SSD062 warnings.
fn cmd_bench(rest: &[&str]) -> Result<String, CliError> {
    fn take_value(tail: &mut Vec<&str>, i: usize, flag: &str) -> Result<u64, CliError> {
        if i + 1 >= tail.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        let v = tail.remove(i + 1);
        v.parse()
            .map_err(|_| CliError::Usage(format!("{flag}: '{v}' is not a non-negative integer")))
    }
    fn take_str<'a>(tail: &mut Vec<&'a str>, i: usize, flag: &str) -> Result<&'a str, CliError> {
        if i + 1 >= tail.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        Ok(tail.remove(i + 1))
    }
    let mut tail: Vec<&str> = rest.to_vec();
    let mut cfg = ssd_workload::GenConfig::new(10_000, 42);
    let mut dcfg = ssd_workload::DriveConfig::default();
    let mut scenario: Option<ssd_workload::Scenario> = None;
    let mut json_out: Option<&str> = None;
    let mut baseline: Option<&str> = None;
    let mut profile = false;
    // Every recognised flag removes itself (and its value) from the
    // front; anything left unconsumed at position 0 is a usage error.
    let i = 0;
    while i < tail.len() {
        match tail[i] {
            "--scale" => {
                cfg.scale = take_value(&mut tail, i, "--scale")?.max(100);
                tail.remove(i);
            }
            "--seed" => {
                cfg.seed = take_value(&mut tail, i, "--seed")?;
                tail.remove(i);
            }
            "--fanout" => {
                cfg.fanout = take_value(&mut tail, i, "--fanout")?.clamp(1, 64);
                tail.remove(i);
            }
            "--payload" => {
                cfg.payload = take_value(&mut tail, i, "--payload")?.clamp(1, 4096) as usize;
                tail.remove(i);
            }
            "--scenario" => {
                let name = take_str(&mut tail, i, "--scenario")?;
                scenario = if name == "mixed" {
                    None
                } else {
                    Some(ssd_workload::Scenario::from_name(name).ok_or_else(|| {
                        CliError::Usage(format!(
                            "--scenario: '{name}' is not one of mixed, {}",
                            ssd_workload::scenario::ALL.map(|s| s.name()).join(", ")
                        ))
                    })?)
                };
                tail.remove(i);
            }
            "--json" => {
                json_out = Some(take_str(&mut tail, i, "--json")?);
                tail.remove(i);
            }
            "--baseline" => {
                baseline = Some(take_str(&mut tail, i, "--baseline")?);
                tail.remove(i);
            }
            "--rate" => {
                dcfg.rate = take_value(&mut tail, i, "--rate")?;
                tail.remove(i);
            }
            "--sessions" => {
                dcfg.sessions = (take_value(&mut tail, i, "--sessions")? as usize).max(1);
                tail.remove(i);
            }
            "--workers" => {
                dcfg.workers = (take_value(&mut tail, i, "--workers")? as usize).max(1);
                tail.remove(i);
            }
            "--queue" => {
                dcfg.queue_cap = (take_value(&mut tail, i, "--queue")? as usize).max(1);
                tail.remove(i);
            }
            "--profile" => {
                profile = true;
                tail.remove(i);
            }
            other => {
                return Err(CliError::Usage(format!("{BENCH_USAGE} (got '{other}')")));
            }
        }
    }

    let (report, profile_text) =
        ssd_workload::run_bench(&cfg, &dcfg, scenario, profile).map_err(CliError::Failed)?;
    let json = report.to_json();
    if let Some(path) = json_out {
        std::fs::write(path, &json).map_err(|e| CliError::Failed(format!("write {path}: {e}")))?;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "workload: scale={} seed={} scenario={} movies={} nodes={} edges={}\n\
         graph fingerprint {:#018x} (gen {} ms, store load {} ms)\n\
         replay: {} events, fingerprint {:#018x} \
         (dispatched {}, queued {}, rejected {}, cancelled {})\n",
        cfg.scale,
        cfg.seed,
        report.scenario,
        report.movies,
        report.nodes,
        report.edges,
        report.graph_fingerprint,
        report.gen_ms,
        report.load_ms,
        report.replay.trace_len,
        report.replay.trace_fingerprint,
        report.replay.dispatched,
        report.replay.queued,
        report.replay.rejected,
        report.replay.cancelled,
    ));
    for s in &report.drive.scenarios {
        out.push_str(&format!(
            "{:<16} ops={:<4} completed={:<4} rejected={:<3} errors={:<2} \
             p50={} µs p99={} µs max={} µs\n",
            s.scenario.name(),
            s.ops,
            s.latency.count(),
            s.rejected,
            s.errors,
            s.latency.percentile(50),
            s.latency.percentile(99),
            s.latency.max(),
        ));
    }
    out.push_str(&format!(
        "totals: {} ops in {} ms ({} ops/s), queue peak {}, fuel spent/estimated {}/{}\n",
        report.drive.total_ops,
        report.drive.wall_ms,
        report
            .drive
            .scenarios
            .iter()
            .map(|s| s.latency.count())
            .sum::<u64>()
            * 1000
            / report.drive.wall_ms.max(1),
        report.drive.metrics.queue_peak,
        report.drive.metrics.counters.fuel_spent,
        report.drive.metrics.counters.fuel_estimated,
    ));
    if let Some(p) = profile_text {
        out.push_str(&p);
    }

    // Gate: fresh-run scenario errors always fail; a baseline adds the
    // regression comparison.
    let baseline_text = match baseline {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("read baseline {path}: {e}")))?,
        None => json.clone(), // self-compare: only SSD060 can fire
    };
    let findings = ssd_workload::check_against_baseline(&json, &baseline_text);
    let mut failed = false;
    for d in &findings {
        out.push_str(&d.headline());
        out.push('\n');
        failed |= d.is_error();
    }
    if failed {
        return Err(CliError::Failed(out));
    }
    Ok(out)
}

/// Open (initialising on first run) the durable store behind
/// `serve --data-dir`, printing recovery findings eagerly so a
/// supervising script sees SSD400/SSD401/SSD402 before `listening on`.
/// Fault injection reaches the store's I/O sites through the same
/// `SSD_FAILPOINTS` variable the engine seams use.
fn open_store(dir: &std::path::Path, seed: &Database) -> Result<ssd_store::Store, CliError> {
    if !ssd_store::Store::is_initialized(dir) {
        ssd_store::Store::init(dir, seed)
            .map_err(|e| CliError::Failed(format!("init {}: {}", dir.display(), e)))?;
    }
    let mut budget = Budget::unlimited();
    if let Ok(spec) = std::env::var("SSD_FAILPOINTS") {
        budget = budget
            .fail_points_from_spec(&spec)
            .map_err(|e| CliError::Usage(format!("SSD_FAILPOINTS: {e}")))?;
    }
    let (store, report) = ssd_store::Store::open(dir, &budget)
        .map_err(|e| CliError::Failed(format!("open {}: {}", dir.display(), e)))?;
    for d in &report.diagnostics {
        println!("{}", d.headline());
    }
    Ok(store)
}

const RECOVER_USAGE: &str = "recover DIR";

/// `ssd recover DIR`: open the store (replaying and truncating the WAL
/// exactly as `serve --data-dir` would) and report what recovery found,
/// without serving anything.
fn cmd_recover(rest: &[&str]) -> Result<String, CliError> {
    let dir = std::path::Path::new(one(rest, RECOVER_USAGE)?);
    let mut budget = Budget::unlimited();
    if let Ok(spec) = std::env::var("SSD_FAILPOINTS") {
        budget = budget
            .fail_points_from_spec(&spec)
            .map_err(|e| CliError::Usage(format!("SSD_FAILPOINTS: {e}")))?;
    }
    let (store, report) = ssd_store::Store::open(dir, &budget)
        .map_err(|e| CliError::Failed(format!("open {}: {}", dir.display(), e)))?;
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.headline());
        out.push('\n');
    }
    out.push_str(&format!(
        "recovered: generation={} txns={} frames={} truncated_bytes={} wal_bytes={}\n",
        report.generation,
        report.txns_replayed,
        report.frames,
        report.truncated_bytes,
        store.wal_len(),
    ));
    Ok(out)
}

/// Run the accept loop on an already-bound listener until a client sends
/// `SHUTDOWN` (honored only with `allow_shutdown` — the CLI's
/// `--allow-remote-shutdown`), then drain and return the final report.
/// Public so integration tests can bind their own ephemeral port first.
pub fn serve_on(
    db: Database,
    cfg: ssd_serve::ServeConfig,
    default_quota: ssd_serve::SessionQuota,
    listener: std::net::TcpListener,
    metrics_dump: bool,
    allow_shutdown: bool,
) -> Result<String, CliError> {
    serve_on_store(
        db,
        None,
        cfg,
        default_quota,
        listener,
        metrics_dump,
        allow_shutdown,
    )
}

/// [`serve_on`], with an optional durable store: when present, the
/// server starts from the store's recovered snapshot (the `db` argument
/// only seeds `Store::init` on first run) and accepts mutation verbs.
#[allow(clippy::too_many_arguments)]
pub fn serve_on_store(
    db: Database,
    store: Option<std::sync::Arc<ssd_store::Store>>,
    cfg: ssd_serve::ServeConfig,
    default_quota: ssd_serve::SessionQuota,
    listener: std::net::TcpListener,
    metrics_dump: bool,
    allow_shutdown: bool,
) -> Result<String, CliError> {
    let server = match store {
        Some(store) => std::sync::Arc::new(ssd_serve::Server::start_with_store(store, cfg)),
        None => std::sync::Arc::new(ssd_serve::Server::start(std::sync::Arc::new(db), cfg)),
    };
    ssd_serve::net::serve_tcp(
        std::sync::Arc::clone(&server),
        listener,
        default_quota,
        allow_shutdown,
    )
    .map_err(|e| CliError::Failed(format!("serve: {e}")))?;
    let metrics = server.shutdown();
    if metrics_dump {
        Ok(format!(
            "{}{}",
            metrics.render(),
            metrics.render_prometheus()
        ))
    } else {
        Ok("server stopped".to_owned())
    }
}

fn cmd_client(rest: &[&str], stdin: &mut impl Read) -> Result<String, CliError> {
    let port: u16 = one(rest, "client PORT (commands on stdin)")?
        .parse()
        .map_err(|_| CliError::Usage("client PORT (commands on stdin)".into()))?;
    let mut script = String::new();
    stdin
        .read_to_string(&mut script)
        .map_err(|e| CliError::Failed(format!("reading stdin: {e}")))?;
    client_script(port, &script)
}

/// Drive one connection: each non-blank, non-`#` line of `script` is one
/// command frame. After the script, wait for every submitted job to
/// finish (`JOB n DONE`/`JOB n ERR`), close with `BYE` if the script did
/// not, and return everything the server said, one frame per block.
pub fn client_script(port: u16, script: &str) -> Result<String, CliError> {
    use std::io::Write as _;
    let mut stream = std::net::TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| CliError::Failed(format!("connect 127.0.0.1:{port}: {e}")))?;
    let fail = |what: &str, e: std::io::Error| CliError::Failed(format!("{what}: {e}"));

    // Commands pipeline freely: the server's reader drains frames in
    // order, and job output is tagged with its job id.
    let mut owed = 0usize; // command responses not yet seen
    let mut closing = false; // sent BYE or SHUTDOWN
    for line in script.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        stream
            .write_all(&ssd_serve::encode_frame(line))
            .map_err(|e| fail("send", e))?;
        owed += 1;
        closing |= line == "BYE" || line == "SHUTDOWN";
    }

    let mut out = String::new();
    let mut pending: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        loop {
            match ssd_serve::decode_frame(&buf) {
                Ok(None) => break,
                Ok(Some((payload, used))) => {
                    buf.drain(..used);
                    note_frame(&payload, &mut owed, &mut pending);
                    out.push_str(&payload);
                    out.push('\n');
                }
                Err(e) => return Err(CliError::Failed(format!("server sent a bad frame: {e}"))),
            }
        }
        if owed == 0 && pending.is_empty() {
            if closing {
                break;
            }
            stream
                .write_all(&ssd_serve::encode_frame("BYE"))
                .map_err(|e| fail("send BYE", e))?;
            owed += 1;
            closing = true;
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    Ok(out)
}

/// Bookkeeping for [`client_script`]: which frames answer a command
/// (`OK`/`ERR`/`STATS`), and which open or settle a job stream.
fn note_frame(payload: &str, owed: &mut usize, pending: &mut std::collections::HashSet<u64>) {
    let head = payload.lines().next().unwrap_or("");
    if head.starts_with("OK") || head.starts_with("ERR") || head.starts_with("STATS") {
        *owed = owed.saturating_sub(1);
        if let Some(rest) = head.strip_prefix("OK job=") {
            if let Ok(id) = rest.split_whitespace().next().unwrap_or("").parse::<u64>() {
                pending.insert(id);
            }
        }
    } else if let Some(rest) = head.strip_prefix("JOB ") {
        let mut it = rest.split_whitespace();
        if let (Some(id), Some(kind)) = (it.next(), it.next()) {
            if kind != "CHUNK" {
                if let Ok(id) = id.parse::<u64>() {
                    pending.remove(&id);
                }
            }
        }
    }
}

fn one<'a>(rest: &[&'a str], usage: &str) -> Result<&'a str, CliError> {
    match rest {
        [only] => Ok(only),
        _ => Err(CliError::Usage(usage.to_owned())),
    }
}

fn split_first<'a>(rest: &[&'a str], usage: &str) -> Result<(&'a str, Vec<&'a str>), CliError> {
    match rest.split_first() {
        Some((first, tail)) if !tail.is_empty() => Ok((first, tail.to_vec())),
        _ => Err(CliError::Usage(usage.to_owned())),
    }
}

/// Read a file path or stdin (`-`) into a string.
fn read_path_or_stdin(path: &str, stdin: &mut impl Read) -> Result<String, CliError> {
    if path == "-" {
        let mut buf = String::new();
        stdin
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Failed(format!("reading stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Failed(format!("reading {path}: {e}")))
    }
}

/// Load a database from a path or stdin (`-`).
fn load_db(path: &str, stdin: &mut impl Read) -> Result<Database, CliError> {
    let text = if path == "-" {
        let mut buf = String::new();
        stdin
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Failed(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("reading {path}: {e}")))?
    };
    Database::from_literal(&text).map_err(CliError::Failed)
}

/// An argument that is either literal text or `@file`.
fn arg_or_file(arg: &str) -> Result<String, CliError> {
    if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| CliError::Failed(format!("reading {path}: {e}")))
    } else {
        Ok(arg.to_owned())
    }
}

/// Run REPL commands (one per line) against a loaded database. Used by
/// `ssd repl` with stdin as the script; errors are reported inline so a
/// bad line never aborts the session.
pub fn run_repl(db: &Database, script: &str) -> String {
    let mut out = String::new();
    for (lineno, line) in script.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, arg) = match line.split_once(' ') {
            Some((c, a)) => (c, a.trim()),
            None => (line, ""),
        };
        let result: Result<String, CliError> = match cmd {
            "quit" | "exit" => break,
            "stats" => Ok(cmd_stats(db)),
            "query" => cmd_query(db, arg, false, &Guard::unlimited(), None),
            "datalog" => cmd_datalog(db, arg, None, &Guard::unlimited(), None),
            "browse" => match arg.split_once(' ') {
                Some((mode, rest)) => cmd_browse(db, mode, rest.trim()),
                None => Err(CliError::Usage("browse (string|ints|attrs) ARG".into())),
            },
            "rewrite" => db
                .rewrite(&format!("rewrite {arg}"))
                .map(|d| d.to_literal())
                .map_err(CliError::Failed),
            "schema" => Ok(db.extract_schema().to_string()),
            "dataguide" => Ok(cmd_dataguide(db, db.dataguide())),
            "fmt" => Ok(db.to_literal()),
            "json" => db.to_json().map_err(CliError::Failed),
            "help" => Ok(
                "commands: stats | query Q | datalog RULES | browse MODE ARG | \
                 rewrite CASES | schema | dataguide | fmt | json | quit"
                    .to_owned(),
            ),
            other => Err(CliError::Usage(format!("unknown repl command '{other}'"))),
        };
        match result {
            Ok(text) => writeln_str(&mut out, &text.to_string()),
            Err(e) => writeln_str(&mut out, &format!("! line {}: {e}", lineno + 1)),
        };
    }
    out.trim_end().to_owned()
}

fn writeln_str(buf: &mut String, s: &str) {
    buf.push_str(s);
    buf.push('\n');
}

fn cmd_stats(db: &Database) -> String {
    let profile = semistructured::graph::stats::profile(db.graph());
    let guide = db.dataguide();
    format!(
        "{profile}\ndataguide states: {}\nextracted schema nodes: {}",
        guide.node_count(),
        db.extract_schema().node_count()
    )
}

fn cmd_query(
    db: &Database,
    text: &str,
    optimized: bool,
    guard: &Guard,
    tracer: Option<&semistructured::trace::Tracer>,
) -> Result<String, CliError> {
    let result = if tracer.is_some() {
        db.query_traced(text, Some(guard), optimized, tracer)
    } else if optimized {
        db.query_optimized_with(text, guard)
    } else {
        db.query_with(text, guard)
    }
    .map_err(CliError::Failed)?;
    let stats = result.stats();
    let mut out = String::new();
    for w in &stats.warnings {
        out.push_str(&format!("{w}\n"));
    }
    out.push_str(&format!(
        "{}\n-- {} result(s), {} assignment(s) tried, {} RPE evaluation(s)",
        result.to_literal(),
        result.graph().out_degree(result.graph().root()),
        stats.assignments_tried,
        stats.rpe_evals
    ));
    Ok(out)
}

/// `ssd check`: run the static analyzer over a query or datalog program
/// without evaluating it. Errors (and, under `--deny-warnings`, any
/// diagnostic at all) make the command fail so CI can gate on it.
fn cmd_check(
    db: &Database,
    kind: &str,
    text: &str,
    deny_warnings: bool,
    explain: bool,
    estimate: bool,
) -> Result<String, CliError> {
    let (mut diags, types) = match kind {
        "query" => {
            let schema = db.extract_schema();
            let (query, _spans, analysis) =
                semistructured::query::analyze_query_src(text, Some(&schema))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
            let types = analysis
                .types
                .as_ref()
                .filter(|_| explain)
                .map(|t| t.explain(&query));
            (analysis.diagnostics, types)
        }
        "datalog" => (db.check_datalog(text).map_err(CliError::Failed)?, None),
        other => {
            return Err(CliError::Usage(format!(
                "check kind must be query|datalog, got '{other}'"
            )))
        }
    };
    let mut envelope = None;
    if estimate {
        let cost = match kind {
            "query" => db.estimate_query(text),
            _ => db.estimate_datalog(text),
        }
        .map_err(CliError::Failed)?;
        diags.extend(cost.diagnostics);
        diags = diags.sorted_by_span();
        envelope = Some(cost.envelope);
    }
    let errors = diags.error_count();
    // Severity-exact: SSD033 notes are informational and must not trip
    // `--deny-warnings`.
    let warnings = diags.warning_count();
    let mut out = String::new();
    if diags.is_empty() {
        out.push_str("no diagnostics");
    } else {
        out.push_str(diags.render_all(text, kind).trim_end());
        out.push_str(&format!("\n-- {errors} error(s), {warnings} warning(s)"));
    }
    if let Some(env) = envelope {
        out.push_str(&format!("\n-- estimated cost: {env}"));
    }
    if let Some(t) = types {
        out.push_str(&format!("\n{}", t.trim_end()));
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(CliError::Failed(out));
    }
    Ok(out)
}

const EXPLAIN_USAGE: &str =
    "explain DATA QUERY [--analyze] [--optimized] (resource-limit and tracing flags accepted)";

/// `ssd explain`: print the query plan with its static cost envelope;
/// with `--analyze`, also run the query and print per-operator actual
/// counters beside the estimate (the envelope should bracket them —
/// `tests/cost_soundness.rs` asserts exactly that property).
fn cmd_explain(
    db: &Database,
    text: &str,
    analyze: bool,
    optimized: bool,
    budget: Budget,
    trace: &TraceOpts,
) -> Result<String, CliError> {
    let query =
        semistructured::query::parse_query(text).map_err(|e| CliError::Failed(e.to_string()))?;
    let est = db.estimate_query(text).map_err(CliError::Failed)?;
    let mut out = format!(
        "plan ({} binding(s), {}):\n",
        query.bindings.len(),
        if optimized {
            "optimized"
        } else {
            "unoptimized"
        }
    );
    let access = db.select_access(&query);
    let paths = access.binding_access(query.bindings.len());
    for (i, b) in query.bindings.iter().enumerate() {
        let matches = est
            .per_binding
            .get(i)
            .map(|iv| format!("  est-matches {iv}"))
            .unwrap_or_default();
        let path = paths
            .get(i)
            .map(|a| format!("  access={a}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  binding {i}: {} <- {}{matches}{path}\n",
            b.var, b.path
        ));
    }
    if let Some(reason) = access.fallback_reason() {
        out.push_str(&format!("-- SSD050: interpreter retained: {reason}\n"));
    }
    out.push_str(&format!("-- estimated cost: {}", est.envelope));
    if !analyze {
        return Ok(out);
    }
    let budget = ensure_metered(budget);
    let (tracer, ring) = trace.build_always()?;
    let guard = budget.guard();
    let result = db
        .query_traced(text, Some(&guard), optimized, Some(&tracer))
        .map_err(CliError::Failed)?;
    tracer.flush();
    let stats = result.stats();
    out.push_str(&format!(
        "\n-- actual cost: fuel={} memory={} results={}\n",
        guard.steps_used(),
        guard.memory_used(),
        stats.results_constructed
    ));
    out.push_str("per-operator (actuals):\n");
    for bp in &stats.per_binding {
        out.push_str(&format!(
            "  {} <- {}: tried={} matched={} fuel={}\n",
            bp.var, bp.path, bp.tried, bp.matched, bp.fuel
        ));
    }
    out.push_str("phase totals (spans fuel):\n");
    for line in semistructured::trace::phase_totals(&ring.snapshot()).lines() {
        out.push_str(&format!("  {line}\n"));
    }
    let mut out = out.trim_end().to_owned();
    trace.append(&ring, &mut out);
    Ok(out)
}

fn cmd_datalog(
    db: &Database,
    program: &str,
    pred: Option<&str>,
    guard: &Guard,
    tracer: Option<&semistructured::trace::Tracer>,
) -> Result<String, CliError> {
    let eval = if tracer.is_some() {
        db.datalog_traced(program, Some(guard), tracer)
    } else {
        db.datalog_with(program, guard)
    }
    .map_err(CliError::Failed)?;
    let mut out = String::new();
    if eval.truncated.is_some() {
        out = prepend_truncation(guard, out);
    }
    let mut preds: Vec<&String> = eval.facts.keys().collect();
    preds.sort();
    for p in preds {
        if pred.is_some_and(|want| want != p) {
            continue;
        }
        // Skip the EDB unless explicitly requested.
        if pred.is_none() && matches!(p.as_str(), "edge" | "node" | "root") {
            continue;
        }
        out.push_str(&format!("{p}: {} tuple(s)\n", eval.count(p)));
        for t in eval.tuples(p).take(20) {
            let row: Vec<String> = t.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!("  ({})\n", row.join(", ")));
        }
        if eval.count(p) > 20 {
            out.push_str("  ...\n");
        }
    }
    out.push_str(&format!(
        "-- {} iteration(s), {} rule evaluation(s)",
        eval.iterations, eval.rule_evaluations
    ));
    Ok(out)
}

fn cmd_browse(db: &Database, mode: &str, arg: &str) -> Result<String, CliError> {
    let symbols_fmt = |hit: &semistructured::query::browse::Hit| {
        let path: Vec<String> = hit
            .path
            .iter()
            .map(|l| l.display(db.graph().symbols()).to_string())
            .collect();
        format!(
            "  {} at root.{}",
            hit.label.display(db.graph().symbols()),
            path.join(".")
        )
    };
    match mode {
        "string" => {
            let hits = db.find_string(arg);
            let mut out = format!("{} occurrence(s) of {arg:?}\n", hits.len());
            for h in &hits {
                out.push_str(&symbols_fmt(h));
                out.push('\n');
            }
            Ok(out.trim_end().to_owned())
        }
        "ints" => {
            let threshold: i64 = arg
                .parse()
                .map_err(|_| CliError::Usage(format!("'{arg}' is not an integer")))?;
            let hits = db.ints_greater(threshold);
            let mut out = format!("{} integer(s) greater than {threshold}\n", hits.len());
            for (v, h) in &hits {
                out.push_str(&format!(
                    "  {v}{}\n",
                    symbols_fmt(h).trim_start_matches(' ')
                ));
            }
            Ok(out.trim_end().to_owned())
        }
        "attrs" => {
            let hits = db.attrs_with_prefix(arg);
            let mut out = format!("{} attribute edge(s) with prefix {arg:?}\n", hits.len());
            for h in &hits {
                out.push_str(&symbols_fmt(h));
                out.push('\n');
            }
            Ok(out.trim_end().to_owned())
        }
        other => Err(CliError::Usage(format!(
            "browse mode must be string|ints|attrs, got '{other}'"
        ))),
    }
}

fn cmd_dataguide(db: &Database, guide: &semistructured::DataGuide) -> String {
    let mut out = format!(
        "DataGuide: {} state(s) summarising {} data node(s)\n",
        guide.node_count(),
        db.stats().nodes
    );
    out.push_str("paths up to length 3:\n");
    let mut paths = guide.paths_up_to(3);
    paths.sort_by_key(|p| {
        p.iter()
            .map(|l| l.display(db.graph().symbols()).to_string())
            .collect::<Vec<_>>()
            .join(".")
    });
    for p in paths.iter().take(40) {
        let shown: Vec<String> = p
            .iter()
            .map(|l| l.display(db.graph().symbols()).to_string())
            .collect();
        let targets = guide.path_targets(p).len();
        out.push_str(&format!("  {} -> {} node(s)\n", shown.join("."), targets));
    }
    if paths.len() > 40 {
        out.push_str(&format!("  ... and {} more\n", paths.len() - 40));
    }
    out.trim_end().to_owned()
}

// Re-export the pieces `main.rs` uses.
pub use CliError as Error;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_str(args: &[&str], stdin: &str) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        run(&owned, &mut Cursor::new(stdin.as_bytes()))
    }

    const DATA: &str = r#"{Entry: {Movie: {Title: "Casablanca",
                                      Cast: {Actors: "Bogart"},
                                      Year: 1942}}}"#;

    #[test]
    fn help_and_unknown() {
        assert!(run_str(&["help"], "").unwrap().contains("ssd stats"));
        assert!(run_str(&[], "").unwrap().contains("ssd stats"));
        assert!(matches!(
            run_str(&["frobnicate"], ""),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stats_from_stdin() {
        let out = run_str(&["stats", "-"], DATA).unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("dataguide states"));
    }

    #[test]
    fn query_from_stdin() {
        let out = run_str(
            &["query", "-", "select T from db.Entry.Movie.Title T"],
            DATA,
        )
        .unwrap();
        assert!(out.contains("Casablanca"));
        assert!(out.contains("1 result(s)"));
    }

    #[test]
    fn optimized_query_flag() {
        let out = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--optimized",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("Casablanca"));
    }

    #[test]
    fn query_error_is_failure_not_usage() {
        let err = run_str(&["query", "-", "select banana"], DATA).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
    }

    #[test]
    fn datalog_from_stdin() {
        let out = run_str(
            &[
                "datalog",
                "-",
                "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("reach:"));
        assert!(out.contains("iteration"));
    }

    #[test]
    fn datalog_pred_filter() {
        let out = run_str(
            &["datalog", "-", "a(X) :- root(X).\nb(X) :- root(X).", "a"],
            DATA,
        )
        .unwrap();
        assert!(out.contains("a: 1"));
        assert!(!out.contains("b: 1"));
    }

    #[test]
    fn check_clean_query_has_no_diagnostics() {
        let out = run_str(
            &[
                "check",
                "-",
                "query",
                "select T from db.Entry.Movie.Title T",
            ],
            DATA,
        )
        .unwrap();
        assert_eq!(out, "no diagnostics");
    }

    #[test]
    fn check_warnings_render_but_pass() {
        let out = run_str(
            &["check", "-", "query", "select M from db.Entry M, M.Movie N"],
            DATA,
        )
        .unwrap();
        assert!(out.contains("warning[SSD004]"), "{out}");
        assert!(out.contains("0 error(s), 1 warning(s)"), "{out}");
    }

    #[test]
    fn check_deny_warnings_fails() {
        let err = run_str(
            &[
                "check",
                "-",
                "query",
                "select M from db.Entry M, M.Movie N",
                "--deny-warnings",
            ],
            DATA,
        )
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD004")),
            "{err}"
        );
    }

    #[test]
    fn check_errors_fail_with_spans() {
        let err = run_str(&["check", "-", "query", "select X from db.Entry _E"], DATA).unwrap_err();
        match err {
            CliError::Failed(m) => {
                assert!(m.contains("error[SSD001]"), "{m}");
                assert!(m.contains('^'), "{m}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn check_explain_prints_binding_types() {
        let out = run_str(
            &[
                "check",
                "-",
                "query",
                "select T from db.Entry.Movie.Title T",
                "--explain",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("binding 0"), "{out}");
        assert!(out.contains("`T`"), "{out}");
    }

    #[test]
    fn check_schema_impossible_path_warns() {
        let out = run_str(
            &["check", "-", "query", "select X from db.Bogus.Nowhere X"],
            DATA,
        )
        .unwrap();
        assert!(out.contains("warning[SSD010]"), "{out}");
    }

    #[test]
    fn check_datalog_diagnostics() {
        let err = run_str(
            &["check", "-", "datalog", "q(X, Y, Z) :- edge(X, Y)."],
            DATA,
        )
        .unwrap_err();
        match err {
            CliError::Failed(m) => {
                assert!(m.contains("SSD020"), "{m}");
                assert!(m.contains("SSD021"), "{m}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        let clean = run_str(&["check", "-", "datalog", "reach(X) :- root(X)."], DATA).unwrap();
        assert_eq!(clean, "no diagnostics");
    }

    #[test]
    fn check_usage_errors() {
        assert!(matches!(
            run_str(&["check", "-", "query"], DATA),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["check", "-", "sparql", "x"], DATA),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn lint_explain_knows_lint_codes_only() {
        let out = run_str(&["lint", "--explain", "SSD903"], "").unwrap();
        assert!(out.starts_with("SSD903"), "{out}");
        assert!(matches!(
            run_str(&["lint", "--explain", "SSD001"], ""),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["lint", "--explain"], ""),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn lint_passes_on_the_workspace_and_fails_on_the_fixture() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let out = run_str(&["lint", root, "--deny-warnings"], "").unwrap();
        assert!(out.contains("clean"), "{out}");
        let bad = format!("{root}/tests/fixtures/lint-bad");
        let err = run_str(&["lint", &bad], "").unwrap_err();
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD901") && m.contains("SSD905")),
            "{err}"
        );
        // The interprocedural band fires through the CLI too.
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD910") && m.contains("SSD914")),
            "{err}"
        );
    }

    #[test]
    fn lint_json_renders_one_object_per_line() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let bad = format!("{root}/tests/fixtures/lint-bad");
        let CliError::Failed(json) = run_str(&["lint", &bad, "--json"], "").unwrap_err() else {
            panic!("fixture lint should fail");
        };
        assert!(!json.is_empty());
        for line in json.lines() {
            assert!(
                line.starts_with("{\"code\":\"SSD9") && line.ends_with('}'),
                "malformed JSON line: {line}"
            );
            for key in ["\"severity\":", "\"file\":", "\"line\":", "\"message\":"] {
                assert!(line.contains(key), "missing {key}: {line}");
            }
        }
        // A clean workspace renders an empty JSON stream.
        let out = run_str(&["lint", root, "--json"], "").unwrap();
        assert_eq!(out, "");
    }

    #[test]
    fn query_surfaces_analyzer_warnings() {
        let out = run_str(&["query", "-", "select M from db.Entry M, M.Movie N"], DATA).unwrap();
        assert!(out.contains("warning[SSD004]"), "{out}");
    }

    #[test]
    fn browse_modes() {
        let s = run_str(&["browse", "-", "string", "Casablanca"], DATA).unwrap();
        assert!(s.contains("1 occurrence"));
        assert!(s.contains("Entry.Movie.Title"));
        let i = run_str(&["browse", "-", "ints", "1900"], DATA).unwrap();
        assert!(i.contains("1 integer"));
        let a = run_str(&["browse", "-", "attrs", "Act"], DATA).unwrap();
        assert!(a.contains("1 attribute"));
        assert!(matches!(
            run_str(&["browse", "-", "bogus", "x"], DATA),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["browse", "-", "ints", "NaN"], DATA),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn rewrite_from_stdin() {
        let out = run_str(&["rewrite", "-", "rewrite case Cast => collapse"], DATA).unwrap();
        assert!(out.contains("Actors"));
        assert!(!out.contains("Cast"));
    }

    #[test]
    fn schema_and_dataguide() {
        let s = run_str(&["schema", "-"], DATA).unwrap();
        assert!(s.contains("schema (root"));
        let g = run_str(&["dataguide", "-"], DATA).unwrap();
        assert!(g.contains("DataGuide:"));
        assert!(g.contains("Entry.Movie.Title"));
    }

    #[test]
    fn dot_and_fmt() {
        let d = run_str(&["dot", "-"], DATA).unwrap();
        assert!(d.starts_with("digraph"));
        let f = run_str(&["fmt", "-"], DATA).unwrap();
        // Round trips.
        let again = run_str(&["fmt", "-"], &f).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn file_arguments() {
        let dir = std::env::temp_dir().join("ssd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.ssd");
        std::fs::write(&data_path, DATA).unwrap();
        let query_path = dir.join("q.ssdq");
        std::fs::write(&query_path, "select T from db.Entry.Movie.Title T").unwrap();
        let out = run_str(
            &[
                "query",
                data_path.to_str().unwrap(),
                &format!("@{}", query_path.display()),
            ],
            "",
        )
        .unwrap();
        assert!(out.contains("Casablanca"));
        let missing = run_str(&["stats", "/nonexistent/nope.ssd"], "");
        assert!(matches!(missing, Err(CliError::Failed(_))));
    }

    #[test]
    fn query_step_limit_renders_diagnostic() {
        let err = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1",
            ],
            DATA,
        )
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD101")),
            "{err}"
        );
    }

    #[test]
    fn admission_strict_rejects_before_evaluation() {
        let err = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1",
                "--admission=strict",
            ],
            DATA,
        )
        .unwrap_err();
        match err {
            CliError::Failed(m) => {
                assert!(m.contains("error[SSD030]"), "{m}");
                // Rejected statically — no runtime-exhaustion diagnostic.
                assert!(!m.contains("SSD101"), "{m}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // A budget the envelope fits sails through.
        let ok = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1000000",
                "--admission=strict",
            ],
            DATA,
        )
        .unwrap();
        assert!(ok.contains("Casablanca"), "{ok}");
    }

    #[test]
    fn strict_admission_takes_precedence_over_partial() {
        // --partial cannot soften a strict rejection: the job never
        // starts, and the SSD034 note says so explicitly.
        let err = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1",
                "--partial",
                "--admission=strict",
            ],
            DATA,
        )
        .unwrap_err();
        match err {
            CliError::Failed(m) => {
                assert!(m.contains("error[SSD030]"), "{m}");
                assert!(m.contains("note[SSD034]"), "{m}");
                assert!(!m.contains("SSD107"), "no truncation ran: {m}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // Without --partial the note would be noise; it is absent.
        let err = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1",
                "--admission=strict",
            ],
            DATA,
        )
        .unwrap_err();
        match err {
            CliError::Failed(m) => assert!(!m.contains("SSD034"), "{m}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn serve_and_client_round_trip() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let db = Database::from_literal(DATA).unwrap();
        let server = std::thread::spawn(move || {
            serve_on(
                db,
                ssd_serve::ServeConfig::default(),
                ssd_serve::SessionQuota::default(),
                listener,
                true,
                true,
            )
        });

        // Session 1: query + stats; client waits for the job, then BYE.
        let out = client_script(
            port,
            "HELLO fuel=1000000\nQUERY select T from db.Entry.Movie.Title T\nSTATS\n",
        )
        .unwrap();
        assert!(out.contains("OK session s1"), "{out}");
        assert!(out.contains("OK job=1"), "{out}");
        assert!(out.contains("Casablanca"), "{out}");
        assert!(out.contains("JOB 1 DONE"), "{out}");
        assert!(out.contains("admitted"), "{out}");
        assert!(out.contains("OK bye"), "{out}");

        // Session 2: a per-job ceiling the envelope cannot fit → SSD030,
        // rejected before any engine work.
        let out = client_script(
            port,
            "HELLO job-fuel=1\nQUERY select T from db.Entry.Movie.Title T\n",
        )
        .unwrap();
        assert!(out.contains("ERR error[SSD030]"), "{out}");

        let out = client_script(port, "SHUTDOWN\n").unwrap();
        assert!(out.contains("OK shutting down"), "{out}");
        let dump = server.join().unwrap().unwrap();
        assert!(dump.contains("admitted 1"), "{dump}");
        assert!(dump.contains("rejected 1"), "{dump}");
        assert!(dump.contains("completed 1"), "{dump}");
    }

    #[test]
    fn admission_warn_runs_anyway() {
        let out = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1",
                "--partial",
                "--admission",
                "warn",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("warning[SSD030]"), "{out}");
        assert!(out.contains("result(s)"), "{out}");
    }

    #[test]
    fn admission_strict_gates_datalog_too() {
        let err = run_str(
            &[
                "datalog",
                "-",
                "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).",
                "--max-steps",
                "1",
                "--admission=strict",
            ],
            DATA,
        )
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD030")),
            "{err}"
        );
    }

    #[test]
    fn admission_usage_errors() {
        assert!(matches!(
            run_str(
                &["query", "-", "select T from db.T T", "--admission=later"],
                DATA
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["query", "-", "select T from db.T T", "--admission"], DATA),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn check_estimate_prints_envelope_and_passes_deny_warnings() {
        let out = run_str(
            &[
                "check",
                "-",
                "query",
                "select T from db.Entry.Movie.Title T",
                "--estimate",
                "--deny-warnings",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("estimated cost:"), "{out}");
        assert!(out.contains("fuel ["), "{out}");
    }

    #[test]
    fn check_estimate_surfaces_cost_diagnostics() {
        // A cross product: SSD032 appears only with --estimate.
        let plain = run_str(
            &[
                "check",
                "-",
                "query",
                "select {a: M, b: N} from db.Entry M, db.Entry N",
            ],
            DATA,
        )
        .unwrap();
        assert!(!plain.contains("SSD032"), "{plain}");
        let est = run_str(
            &[
                "check",
                "-",
                "query",
                "select {a: M, b: N} from db.Entry M, db.Entry N",
                "--estimate",
            ],
            DATA,
        )
        .unwrap();
        assert!(est.contains("warning[SSD032]"), "{est}");
        assert!(est.contains("`M`") && est.contains("`N`"), "{est}");
        // Datalog recursion: SSD031 under --estimate.
        let dl = run_str(
            &[
                "check",
                "-",
                "datalog",
                "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).",
                "--estimate",
            ],
            DATA,
        )
        .unwrap();
        assert!(dl.contains("warning[SSD031]"), "{dl}");
        assert!(dl.contains("estimated cost:"), "{dl}");
    }

    #[test]
    fn query_partial_keeps_result_and_warns() {
        let out = run_str(
            &[
                "query",
                "-",
                "select T from db.Entry.Movie.Title T",
                "--max-steps",
                "1",
                "--partial",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("SSD107"), "{out}");
        assert!(out.contains("result(s)"), "{out}");
    }

    #[test]
    fn datalog_deadline_renders_diagnostic() {
        let err = run_str(
            &[
                "datalog",
                "-",
                "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).",
                "--timeout",
                "0",
            ],
            DATA,
        )
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD103")),
            "{err}"
        );
    }

    #[test]
    fn datalog_partial_is_well_formed() {
        let out = run_str(
            &[
                "datalog",
                "-",
                "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).",
                "--max-steps",
                "2",
                "--partial",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("SSD107"), "{out}");
        assert!(out.contains("iteration"), "{out}");
    }

    #[test]
    fn schema_and_dataguide_accept_limits() {
        let s = run_str(&["schema", "-", "--max-steps", "100000"], DATA).unwrap();
        assert!(s.contains("schema (root"), "{s}");
        let g = run_str(&["dataguide", "-", "--max-steps", "100000"], DATA).unwrap();
        assert!(g.contains("DataGuide:"), "{g}");
        let err = run_str(&["dataguide", "-", "--max-steps", "1"], DATA).unwrap_err();
        assert!(
            matches!(&err, CliError::Failed(m) if m.contains("SSD101")),
            "{err}"
        );
    }

    #[test]
    fn rewrite_accepts_limits() {
        let out = run_str(
            &[
                "rewrite",
                "-",
                "rewrite case Cast => collapse",
                "--max-steps",
                "100000",
            ],
            DATA,
        )
        .unwrap();
        assert!(out.contains("Actors"), "{out}");
    }

    #[test]
    fn budget_flag_usage_errors() {
        assert!(matches!(
            run_str(&["query", "-", "select T from db.T T", "--max-steps"], DATA),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(
                &["query", "-", "select T from db.T T", "--timeout", "soon"],
                DATA
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn engine_panic_is_isolated_as_ssd111() {
        let err = run_str(&["__panic"], "").unwrap_err();
        match err {
            CliError::Failed(m) => {
                assert!(m.contains("SSD111"), "{m}");
                assert!(m.contains("deliberate test panic"), "{m}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn conforms_between_files() {
        let dir = std::env::temp_dir().join("ssd-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.ssd");
        std::fs::write(&a, DATA).unwrap();
        let b = dir.join("b.ssd");
        std::fs::write(
            &b,
            r#"{Entry: {Movie: {Title: "Other", Cast: {Actors: "X"}, Year: 2000}}}"#,
        )
        .unwrap();
        let out = run_str(&["conforms", a.to_str().unwrap(), b.to_str().unwrap()], "").unwrap();
        assert_eq!(out, "true");
        let c = dir.join("c.ssd");
        std::fs::write(&c, r#"{Ship: {Name: "Nostromo"}}"#).unwrap();
        let out2 = run_str(&["conforms", c.to_str().unwrap(), a.to_str().unwrap()], "").unwrap();
        assert_eq!(out2, "false");
    }
}

#[cfg(test)]
mod json_cli_tests {
    use super::*;
    use std::io::Cursor;

    fn run_str(args: &[&str], stdin: &str) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        run(&owned, &mut Cursor::new(stdin.as_bytes()))
    }

    #[test]
    fn json_export_and_import() {
        let out = run_str(&["json", "-"], r#"{Movie: {Title: "C", Year: 1942}}"#).unwrap();
        assert!(out.contains(r#""Title":"C""#));
        let lit = run_str(&["import-json", "-"], &out).unwrap();
        assert!(lit.contains("Title"));
    }

    #[test]
    fn json_refuses_cycles() {
        let err = run_str(&["json", "-"], "@x = {next: @x}").unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
    }
}

#[cfg(test)]
mod diff_cli_tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn diff_between_files() {
        let dir = std::env::temp_dir().join("ssd-cli-diff");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.ssd");
        std::fs::write(&a, r#"{Movie: {Title: "C"}}"#).unwrap();
        let b = dir.join("b.ssd");
        std::fs::write(&b, r#"{Movie: {Title: "C", Year: 1942}}"#).unwrap();
        let args: Vec<String> = ["diff", a.to_str().unwrap(), b.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args, &mut Cursor::new(b"")).unwrap();
        assert!(out.contains("+ Movie.Year"), "{out}");
        let args2: Vec<String> = ["diff", a.to_str().unwrap(), a.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let same = run(&args2, &mut Cursor::new(b"")).unwrap();
        assert!(same.contains("identical"));
    }
}

#[cfg(test)]
mod xml_cli_tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn xml_export_import() {
        let args: Vec<String> = vec!["xml".into(), "-".into()];
        let out = run(
            &args,
            &mut Cursor::new(br#"{movie: {title: "C", year: 1942}}"#.as_slice()),
        )
        .unwrap();
        assert!(out.contains("<title>C</title>"), "{out}");
        let args2: Vec<String> = vec!["import-xml".into(), "-".into()];
        let lit = run(&args2, &mut Cursor::new(out.as_bytes())).unwrap();
        assert!(lit.contains("title"));
    }
}

#[cfg(test)]
mod repl_tests {
    use super::*;

    fn db() -> Database {
        Database::from_literal(r#"{Entry: {Movie: {Title: "Casablanca", Year: 1942}}}"#).unwrap()
    }

    #[test]
    fn repl_runs_commands_in_order() {
        let script = "\
# a comment\n\
stats\n\
query select T from db.Entry.Movie.Title T\n\
browse string Casablanca\n\
quit\n\
query never-reached\n";
        let out = run_repl(&db(), script);
        assert!(out.contains("nodes"));
        assert!(out.contains("Casablanca"));
        assert!(!out.contains("never-reached"));
    }

    #[test]
    fn repl_reports_errors_inline_and_continues() {
        let script = "query select banana\nstats\n";
        let out = run_repl(&db(), script);
        assert!(out.contains("! line 1"));
        assert!(out.contains("nodes"), "session must continue after error");
    }

    #[test]
    fn repl_rewrite_and_json() {
        let script = "rewrite case Year => delete\njson\n";
        let out = run_repl(&db(), script);
        assert!(!out.lines().next().unwrap().contains("Year"));
        assert!(out.contains("\"Title\":\"Casablanca\""));
    }

    #[test]
    fn repl_datalog_and_help() {
        let script = "datalog reach(X) :- root(X).\nhelp\nunknowncmd\n";
        let out = run_repl(&db(), script);
        assert!(out.contains("reach: 1"));
        assert!(out.contains("commands:"));
        assert!(out.contains("unknown repl command"));
    }

    #[test]
    fn repl_via_run_requires_file() {
        let args: Vec<String> = vec!["repl".into(), "-".into()];
        assert!(matches!(
            run(&args, &mut std::io::Cursor::new(b"")),
            Err(CliError::Usage(_))
        ));
    }
}
