//! # semistructured — a reproduction of Buneman, *Semistructured Data* (PODS '97)
//!
//! One-stop facade over the reproduction stack:
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | edge-labeled graph model | [`graph`] (`ssd-graph`) | §2 |
//! | relational substrate + graph datalog | [`triples`] (`ssd-triples`) | §3 |
//! | query language, structural recursion, optimizer | [`query`] (`ssd-query`) | §3, §4 |
//! | schemas, simulation, DataGuides | [`schema`] (`ssd-schema`) | §5 |
//! | workload generators | [`data`] (`ssd-data`) | §1 |
//!
//! The [`Database`] type bundles a data graph with lazily built auxiliary
//! structures (edge index, DataGuide, triple store) and exposes the whole
//! feature set behind a compact API:
//!
//! ```
//! use semistructured::Database;
//!
//! let db = Database::from_literal(
//!     r#"{Entry: {Movie: {Title: "Casablanca", Director: "Curtiz"}}}"#,
//! ).unwrap();
//! let titles = db.query("select T from db.Entry.Movie.Title T").unwrap();
//! assert_eq!(titles.graph().values_at(titles.graph().root()).len(), 1);
//! ```

pub use ssd_data as data;
pub use ssd_diag as diag;
pub use ssd_graph as graph;
pub use ssd_guard as guard;
pub use ssd_query as query;
pub use ssd_schema as schema;
pub use ssd_trace as trace;
pub use ssd_triples as triples;

pub use ssd_graph::{Graph, Label, LabelKind, NodeId, SymbolId, Value};
pub use ssd_guard::{Bound, Budget, CancelToken, CostEnvelope, Exhausted, Guard, Interval};
pub use ssd_index::TripleIndex;
pub use ssd_query::analyze::{CostAnalysis, CostContext};
pub use ssd_query::{AccessPlan, EvalOptions, Rpe, SelectQuery};
pub use ssd_schema::{DataGuide, DataStats, Pred, Schema};
pub use ssd_triples::TripleStore;

use ssd_graph::index::GraphIndex;
use std::sync::OnceLock;

/// A semistructured database: a rooted data graph plus lazily constructed
/// auxiliary structures.
pub struct Database {
    graph: Graph,
    index: OnceLock<GraphIndex>,
    guide: OnceLock<DataGuide>,
    /// The columnar triple index (SPO/POS/OSP). `None` inside the cell
    /// means building it failed (SSD051 dictionary overflow) and every
    /// query on this snapshot uses the interpreter.
    triple_index: OnceLock<Option<TripleIndex>>,
    /// Plain (schema-free) data statistics, cached for the access-path
    /// planner so repeated queries don't re-collect them.
    plan_stats: OnceLock<DataStats>,
    /// Storage generation this snapshot belongs to: 0 for a freestanding
    /// database, and the committed-transaction count when the database
    /// is a snapshot handed out by `ssd-store` (each commit swaps in a
    /// new generation; readers that pinned an older `Arc<Database>` keep
    /// seeing their generation unchanged).
    generation: u64,
}

/// The result of a query: a fresh rooted graph.
pub struct QueryResult {
    graph: Graph,
    stats: ssd_query::EvalStats,
}

impl QueryResult {
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub fn stats(&self) -> &ssd_query::EvalStats {
        &self.stats
    }

    /// Serialize the result in the literal data syntax.
    pub fn to_literal(&self) -> String {
        ssd_graph::literal::write_graph(&self.graph)
    }

    /// Extensional equality with another result.
    pub fn bisimilar_to(&self, other: &QueryResult) -> bool {
        ssd_graph::bisim::graphs_bisimilar(&self.graph, &other.graph)
    }

    /// Lazily serialize the result in chunks of at most `n` root
    /// subtrees, each a standalone literal document.
    ///
    /// This is the streaming seam `ssd-serve` uses to ship large result
    /// sets frame by frame instead of buffering one giant literal:
    /// chunk *k* covers root edges `[k·n, (k+1)·n)`, and the union of
    /// all chunks' root edge sets is exactly the full result's.
    /// Substructure shared between chunks is duplicated into each (a
    /// chunk must stand alone); sharing *within* a chunk is preserved by
    /// the literal writer's `@` markers.
    pub fn chunks(&self, n: usize) -> ResultChunks<'_> {
        ResultChunks {
            graph: &self.graph,
            pos: 0,
            n: n.max(1),
        }
    }
}

/// Iterator over standalone literal chunks of a [`QueryResult`]; see
/// [`QueryResult::chunks`].
pub struct ResultChunks<'a> {
    graph: &'a Graph,
    pos: usize,
    n: usize,
}

impl Iterator for ResultChunks<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let edges = self.graph.edges(self.graph.root());
        if self.pos >= edges.len() {
            return None;
        }
        let end = (self.pos + self.n).min(edges.len());
        let mut out = Graph::with_symbols(self.graph.symbols_handle());
        for e in &edges[self.pos..end] {
            let sub = ssd_graph::ops::copy_subgraph(self.graph, e.to, &mut out);
            out.add_edge(out.root(), e.label.clone(), sub);
        }
        self.pos = end;
        Some(ssd_graph::literal::write_graph(&out))
    }
}

impl Database {
    /// Wrap an existing graph.
    pub fn new(graph: Graph) -> Database {
        Database {
            graph,
            index: OnceLock::new(),
            guide: OnceLock::new(),
            triple_index: OnceLock::new(),
            plan_stats: OnceLock::new(),
            generation: 0,
        }
    }

    /// Stamp the storage generation this snapshot represents (used by
    /// `ssd-store` when swapping in the post-commit database).
    #[must_use]
    pub fn with_generation(mut self, generation: u64) -> Database {
        self.generation = generation;
        self
    }

    /// The storage generation of this snapshot; see [`Database::with_generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Parse the literal data syntax (`{Movie: {Title: "C"}}`, with
    /// `@x = ...` sharing/cycle markers).
    pub fn from_literal(src: &str) -> Result<Database, String> {
        ssd_graph::literal::parse_graph(src)
            .map(Database::new)
            .map_err(|e| e.to_string())
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The edge-level index (built on first use).
    pub fn index(&self) -> &GraphIndex {
        self.index.get_or_init(|| GraphIndex::build(&self.graph))
    }

    /// The columnar triple index (built on first use). `None` when the
    /// dictionary overflowed (SSD051) — queries then always interpret.
    pub fn triple_index(&self) -> Option<&TripleIndex> {
        self.triple_index
            .get_or_init(|| TripleIndex::build(&self.graph).ok())
            .as_ref()
    }

    /// The triple index only if it has already been built (or seeded) —
    /// never forces a build. `ssd-store` commits use this so snapshots
    /// that were never index-queried pay nothing at commit time.
    pub fn existing_index(&self) -> Option<&TripleIndex> {
        self.triple_index.get().and_then(|o| o.as_ref())
    }

    /// Pre-seed the triple index (used by `ssd-store` commits, which
    /// maintain the index incrementally with
    /// [`TripleIndex::merge_delta`] instead of rebuilding per snapshot).
    #[must_use]
    pub fn with_seeded_index(self, index: TripleIndex) -> Database {
        let _ = self.triple_index.set(Some(index));
        self
    }

    /// Plain data statistics, cached (the access-path planner's feed).
    pub fn plan_stats(&self) -> &DataStats {
        self.plan_stats
            .get_or_init(|| DataStats::collect(&self.graph))
    }

    /// Decide how a select query will be executed on this snapshot: the
    /// batched columnar pipeline when the shape is batchable *and* the
    /// cost model says the index wins, the interpreter otherwise (with
    /// the SSD050 reason).
    pub fn select_access(&self, query: &SelectQuery) -> AccessDecision {
        let Some(index) = self.triple_index() else {
            return AccessDecision::Interpreter {
                reason: "triple index unavailable (dictionary overflow)".to_owned(),
            };
        };
        match ssd_query::plan_access(&self.graph, index, self.plan_stats(), query) {
            Ok(plan) if plan.wins() => AccessDecision::Batched(plan),
            Ok(plan) => AccessDecision::Interpreter {
                reason: plan.keep_interpreter_reason(),
            },
            Err(reason) => AccessDecision::Interpreter { reason },
        }
    }

    /// Evaluate a parsed query through whichever access path
    /// [`Database::select_access`] picked. Fallbacks emit the SSD050 note
    /// as a `Phase::Index` trace instant when a tracer is attached.
    fn evaluate(
        &self,
        query: &SelectQuery,
        opts: &EvalOptions<'_>,
    ) -> Result<(Graph, ssd_query::EvalStats), String> {
        match self.select_access(query) {
            AccessDecision::Batched(plan) => {
                if let Some(index) = self.triple_index() {
                    return ssd_query::evaluate_batched(&self.graph, index, query, &plan, opts);
                }
                ssd_query::evaluate_select(&self.graph, query, opts)
            }
            AccessDecision::Interpreter { reason } => {
                let note = ssd_query::batch::fallback_note(&reason);
                trace::instant(
                    opts.tracer,
                    trace::Phase::Index,
                    "fallback",
                    vec![
                        ("code", note.code.as_str().into()),
                        ("reason", reason.as_str().into()),
                    ],
                );
                ssd_query::evaluate_select(&self.graph, query, opts)
            }
        }
    }

    /// The strong DataGuide (built on first use).
    pub fn dataguide(&self) -> &DataGuide {
        self.guide.get_or_init(|| DataGuide::build(&self.graph))
    }

    /// A freshly shredded triple store view.
    pub fn triples(&self) -> TripleStore {
        TripleStore::from_graph(&self.graph)
    }

    /// Parse and evaluate a select-from-where query with default options.
    pub fn query(&self, text: &str) -> Result<QueryResult, String> {
        let q = ssd_query::parse_query(text).map_err(|e| e.to_string())?;
        let (graph, stats) = self.evaluate(&q, &EvalOptions::default())?;
        Ok(QueryResult { graph, stats })
    }

    /// Parse and evaluate under a resource [`Guard`] (budget-governed:
    /// fuel, memory, deadline, depth, cancellation, fault injection).
    /// In partial mode exhaustion yields a truncated-but-well-formed
    /// result with `stats().truncated` set; otherwise an SSD1xx headline.
    pub fn query_with(&self, text: &str, guard: &Guard) -> Result<QueryResult, String> {
        let q = ssd_query::parse_query(text).map_err(|e| e.to_string())?;
        let opts = EvalOptions::default().with_guard(guard);
        let (graph, stats) = self.evaluate(&q, &opts)?;
        Ok(QueryResult { graph, stats })
    }

    /// Parse and evaluate with the optimizer on (pushdown, RPE
    /// simplification, DataGuide pruning).
    pub fn query_optimized(&self, text: &str) -> Result<QueryResult, String> {
        let q = ssd_query::parse_query(text).map_err(|e| e.to_string())?;
        let (graph, stats) = self.evaluate(&q, &EvalOptions::optimized(Some(self.dataguide())))?;
        Ok(QueryResult { graph, stats })
    }

    /// Optimized evaluation under a resource [`Guard`]. The lazily built
    /// DataGuide used for pruning is constructed under the same guard.
    pub fn query_optimized_with(&self, text: &str, guard: &Guard) -> Result<QueryResult, String> {
        let q = ssd_query::parse_query(text).map_err(|e| e.to_string())?;
        let guide = match self.guide.get() {
            Some(g) => g,
            None => {
                let built = DataGuide::try_build(&self.graph, guard).map_err(|e| e.headline())?;
                self.guide.get_or_init(|| built)
            }
        };
        let opts = EvalOptions::optimized(Some(guide)).with_guard(guard);
        let (graph, stats) = self.evaluate(&q, &opts)?;
        Ok(QueryResult { graph, stats })
    }

    /// Parse and evaluate with full structured tracing: spans for parse,
    /// estimate, optimize (when `optimize` is on), and evaluation (with
    /// per-binding actuals), plus a final `cost.actual` instant comparing
    /// the static [`CostEnvelope`] against the fuel/memory/cardinality the
    /// run actually consumed — the data behind `ssd explain --analyze`.
    ///
    /// When `guard` is `None` a *metered* guard
    /// ([`ssd_guard::Budget::metered`]) is used instead of an unlimited
    /// one, so fuel and memory counters are live and the trace carries
    /// real actuals. Estimation runs only when `tracer` is present; with
    /// `tracer = None` this degrades to [`Database::query_with`] /
    /// [`Database::query_optimized_with`] behaviour.
    pub fn query_traced(
        &self,
        text: &str,
        guard: Option<&Guard>,
        optimize: bool,
        tracer: Option<&trace::Tracer>,
    ) -> Result<QueryResult, String> {
        let metered = Budget::metered().guard();
        let guard = guard.unwrap_or(&metered);
        let q = {
            let _sp = trace::span(tracer, trace::Phase::Parse, "parse", Some(guard));
            ssd_query::parse_query(text).map_err(|e| e.to_string())?
        };
        let estimate = if tracer.is_some() {
            let _sp = trace::span(tracer, trace::Phase::Estimate, "estimate", Some(guard));
            self.estimate_query(text).ok()
        } else {
            None
        };
        let (q, mut opts) = if optimize {
            let (stats, schema) = self.data_stats();
            let (q2, _report) = ssd_query::optimizer::optimize_with_stats_traced(
                &q,
                Some(&schema),
                Some(&stats),
                tracer,
            );
            (q2, EvalOptions::optimized(Some(self.dataguide())))
        } else {
            (q, EvalOptions::default())
        };
        opts = opts.with_guard(guard);
        if let Some(t) = tracer {
            opts = opts.with_tracer(t);
        }
        let (graph, stats) = self.evaluate(&q, &opts)?;
        if let Some(t) = tracer {
            t.instant(
                trace::Phase::Estimate,
                "cost.actual",
                cost_actual_fields(estimate.as_ref(), guard, stats.results_constructed as u64),
            );
        }
        Ok(QueryResult { graph, stats })
    }

    /// Evaluate a regular path expression from the root.
    pub fn eval_path(&self, rpe: &Rpe) -> Vec<NodeId> {
        ssd_query::eval_rpe(&self.graph, self.graph.root(), rpe)
    }

    /// §1.3 browse: where is this string? (index-backed)
    pub fn find_string(&self, text: &str) -> Vec<ssd_query::browse::Hit> {
        ssd_query::browse::find_string_indexed(&self.graph, self.index(), text)
    }

    /// §1.3 browse: integers greater than a threshold (index-backed).
    pub fn ints_greater(&self, threshold: i64) -> Vec<(i64, ssd_query::browse::Hit)> {
        ssd_query::browse::ints_greater_indexed(&self.graph, self.index(), threshold)
    }

    /// §1.3 browse: attribute names starting with a prefix (index-backed).
    pub fn attrs_with_prefix(&self, prefix: &str) -> Vec<ssd_query::browse::Hit> {
        ssd_query::browse::attrs_with_prefix_indexed(&self.graph, self.index(), prefix)
    }

    /// Run a graph-datalog program over the edge relation.
    pub fn datalog(&self, program: &str) -> Result<ssd_triples::datalog::Evaluation, String> {
        let p = ssd_triples::datalog::parse_program(program, self.graph.symbols())?;
        ssd_triples::datalog::evaluate(&p, &self.triples()).map_err(|e| e.to_string())
    }

    /// Run a graph-datalog program under a resource [`Guard`].
    pub fn datalog_with(
        &self,
        program: &str,
        guard: &Guard,
    ) -> Result<ssd_triples::datalog::Evaluation, String> {
        let p = ssd_triples::datalog::parse_program(program, self.graph.symbols())?;
        ssd_triples::datalog::evaluate_with(&p, &self.triples(), guard).map_err(|e| e.to_string())
    }

    /// As [`Database::datalog_with`], with structured tracing: parse and
    /// estimate spans, per-fixpoint-round spans, and the final
    /// `cost.actual` instant. A `None` guard gets a metered fallback, as
    /// in [`Database::query_traced`].
    pub fn datalog_traced(
        &self,
        program: &str,
        guard: Option<&Guard>,
        tracer: Option<&trace::Tracer>,
    ) -> Result<ssd_triples::datalog::Evaluation, String> {
        let metered = Budget::metered().guard();
        let guard = guard.unwrap_or(&metered);
        let p = {
            let _sp = trace::span(tracer, trace::Phase::Parse, "parse", Some(guard));
            ssd_triples::datalog::parse_program(program, self.graph.symbols())?
        };
        let estimate = if tracer.is_some() {
            let _sp = trace::span(tracer, trace::Phase::Estimate, "estimate", Some(guard));
            self.estimate_datalog(program).ok()
        } else {
            None
        };
        let eval = ssd_triples::datalog::evaluate_traced(&p, &self.triples(), guard, tracer)
            .map_err(|e| e.to_string())?;
        if let Some(t) = tracer {
            let derived: usize = eval
                .facts
                .values()
                .map(std::collections::BTreeSet::len)
                .sum();
            t.instant(
                trace::Phase::Estimate,
                "cost.actual",
                cost_actual_fields(estimate.as_ref(), guard, derived as u64),
            );
        }
        Ok(eval)
    }

    /// Statically analyze a query against this database's extracted
    /// schema (`ssd check`): variable diagnostics plus schema-aware path
    /// typing that certifies provably empty bindings.
    pub fn check_query(&self, text: &str) -> Result<ssd_query::QueryAnalysis, String> {
        let schema = self.extract_schema();
        ssd_query::analyze_query_src(text, Some(&schema))
            .map(|(_, _, analysis)| analysis)
            .map_err(|e| e.to_string())
    }

    /// Statically analyze a graph-datalog program (`ssd check`): safety,
    /// arity, stratification, and reachability lints with source spans.
    pub fn check_datalog(&self, program: &str) -> Result<Vec<ssd_diag::Diagnostic>, String> {
        ssd_query::analyze::analyze_datalog_src(program, self.graph.symbols(), None)
    }

    /// Data statistics refined by the extracted schema — the estimator's
    /// input. The extracted schema conforms by construction, so the
    /// per-schema-node extents are usable as cardinality bounds.
    pub fn data_stats(&self) -> (DataStats, Schema) {
        let schema = self.extract_schema();
        let stats = DataStats::collect_with_schema(&self.graph, &schema);
        (stats, schema)
    }

    /// Statically estimate a query's cost envelope (ssd-cost): interval
    /// bounds on cardinality, guard fuel, and guard-accounted memory,
    /// plus the SSD03x diagnostics. Pass the envelope to
    /// [`Budget::admit`] for admission control.
    pub fn estimate_query(&self, text: &str) -> Result<CostAnalysis, String> {
        let (q, spans) = ssd_query::lang::parse_query_spanned(text).map_err(|e| e.to_string())?;
        let (stats, schema) = self.data_stats();
        let ctx = CostContext {
            stats: Some(&stats),
            schema: Some(&schema),
        };
        Ok(ssd_query::analyze::analyze_query_cost(
            &q,
            Some(&spans),
            &ctx,
        ))
    }

    /// Statically estimate a graph-datalog program's cost envelope.
    pub fn estimate_datalog(&self, program: &str) -> Result<CostAnalysis, String> {
        let (p, spans) =
            ssd_triples::datalog::parse_program_spanned(program, self.graph.symbols())?;
        let stats = DataStats::collect(&self.graph);
        let ctx = CostContext {
            stats: Some(&stats),
            schema: None,
        };
        Ok(ssd_query::analyze::analyze_datalog_cost(
            &p,
            Some(&spans),
            None,
            &ctx,
        ))
    }

    /// Run a `rewrite` program (the surface syntax for structural
    /// recursion) over the whole database, returning the transformed
    /// database:
    ///
    /// ```
    /// # use semistructured::Database;
    /// let db = Database::from_literal(r#"{Cast: {Credit: {Actors: "Allen"}}}"#).unwrap();
    /// let flat = db.rewrite("rewrite case Credit => collapse").unwrap();
    /// assert_eq!(flat.to_literal(), r#"{Cast: {Actors: "Allen"}}"#);
    /// ```
    pub fn rewrite(&self, program: &str) -> Result<Database, String> {
        let t = ssd_query::lang::parse_rewrite(program).map_err(|e| e.to_string())?;
        Ok(Database::new(ssd_query::recursion::gext(
            &self.graph,
            self.graph.root(),
            &t,
        )))
    }

    /// As [`Database::rewrite`], under a resource [`Guard`].
    pub fn rewrite_with(&self, program: &str, guard: &Guard) -> Result<Database, String> {
        let t = ssd_query::lang::parse_rewrite(program).map_err(|e| e.to_string())?;
        ssd_query::recursion::gext_guarded(&self.graph, self.graph.root(), &t, guard)
            .map(Database::new)
            .map_err(|e| e.headline())
    }

    /// Deep restructuring: relabel edges matching a predicate (returns a
    /// new database; the original is untouched).
    pub fn relabel(&self, pred: Pred, new_name: &str) -> Database {
        Database::new(ssd_query::restructure::relabel_edges(
            &self.graph,
            pred,
            new_name,
        ))
    }

    /// Deep restructuring: delete matching edges.
    pub fn delete_edges(&self, pred: Pred) -> Database {
        Database::new(ssd_query::restructure::delete_edges(&self.graph, pred))
    }

    /// Deep restructuring: collapse matching edges.
    pub fn collapse_edges(&self, pred: Pred) -> Database {
        Database::new(ssd_query::restructure::collapse_edges(&self.graph, pred))
    }

    /// Does this database conform to the schema (simulation, §5)?
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        ssd_schema::conforms(&self.graph, schema)
    }

    /// Extract a schema describing this database (§5).
    pub fn extract_schema(&self) -> Schema {
        ssd_schema::extract_schema_default(&self.graph)
    }

    /// As [`Database::extract_schema`], under a resource [`Guard`].
    pub fn extract_schema_with(&self, guard: &Guard) -> Result<Schema, String> {
        ssd_schema::try_extract_schema(&self.graph, &ssd_schema::ExtractOptions::default(), guard)
            .map_err(|e| e.headline())
    }

    /// Serialize in the literal data syntax.
    pub fn to_literal(&self) -> String {
        ssd_graph::literal::write_graph(&self.graph)
    }

    /// Import a JSON document (§1.2 data exchange: objects → symbol
    /// edges, arrays → integer-labeled edges, scalars → atoms).
    pub fn from_json(src: &str) -> Result<Database, String> {
        ssd_graph::json::from_json(src)
            .map(Database::new)
            .map_err(|e| e.to_string())
    }

    /// Export as JSON. Fails on cyclic databases (JSON has no references;
    /// use [`Database::to_literal`] for those).
    pub fn to_json(&self) -> Result<String, String> {
        ssd_graph::json::graph_to_json(&self.graph).map_err(|e| e.to_string())
    }

    /// Import an XML document (elements → symbol edges, attributes →
    /// `@name` edges, text → string atoms).
    pub fn from_xml(src: &str) -> Result<Database, String> {
        ssd_graph::xml::from_xml(src)
            .map(Database::new)
            .map_err(|e| e.to_string())
    }

    /// Export as XML. Fails on cyclic databases and on labels XML cannot
    /// name.
    pub fn to_xml(&self) -> Result<String, String> {
        ssd_graph::xml::to_xml(&self.graph).map_err(|e| e.to_string())
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self) -> String {
        ssd_graph::dot::to_dot_default(&self.graph)
    }

    /// Union with another database: a new database whose root edge set is
    /// the union of both roots' (the edge-labeled model's "party trick",
    /// §2 — trivial here, awkward in node-labeled models).
    pub fn union(&self, other: &Database) -> Database {
        Database::new(ssd_graph::ops::graph_union(&self.graph, &other.graph))
    }

    /// Union with another database, *preserving this database's node
    /// ids*: surviving nodes keep their ids, `other`'s fragment and the
    /// fresh union root are appended after them, and no gc runs. The
    /// result is bisimilar to [`Database::union`]'s; the id stability is
    /// what lets `ssd-store` maintain the triple index incrementally
    /// ([`TripleIndex::merge_delta`]) across commits.
    pub fn union_id_stable(&self, other: &Database) -> Database {
        let mut g = self.graph.clone();
        let img = ssd_graph::ops::copy_subgraph(&other.graph, other.graph.root(), &mut g);
        let root = g.root();
        let u = ssd_graph::ops::union(&mut g, root, img);
        g.set_root(u);
        Database::new(g)
    }

    /// Delete matching edges *in place on a clone*, preserving node ids
    /// (no gc, no rebuild) — the id-stable counterpart of
    /// [`Database::delete_edges`], bisimilar on the reachable fragment.
    pub fn delete_edges_id_stable(&self, pred: &Pred) -> Database {
        let mut g = self.graph.clone();
        for n in g.reachable() {
            let edges = g.edges(n).to_vec();
            let kept: Vec<ssd_graph::Edge> = edges
                .iter()
                .filter(|e| !pred.matches(&e.label, g.symbols()))
                .cloned()
                .collect();
            if kept.len() != edges.len() {
                g.set_edges(n, kept);
            }
        }
        Database::new(g)
    }

    /// Basic statistics.
    pub fn stats(&self) -> DbStats {
        DbStats {
            nodes: self.graph.reachable().len(),
            edges: self.graph.edge_count(),
            symbols: self.graph.symbols().len(),
            cyclic: self.graph.has_cycle(),
        }
    }
}

/// How a select query will execute on a [`Database`] snapshot; see
/// [`Database::select_access`].
#[derive(Debug, Clone)]
pub enum AccessDecision {
    /// The batched columnar pipeline over the triple index, with the
    /// chosen per-binding access plan.
    Batched(AccessPlan),
    /// The one-binding-at-a-time interpreter, with the reason batched
    /// execution was declined (the body of the SSD050 note).
    Interpreter { reason: String },
}

impl AccessDecision {
    /// Per-binding access-path names for `ssd explain`: one entry per
    /// query binding, `index(spo)`/`index(pos)`/`index(spo+pos)` for the
    /// batched path, `interpreter(nfa-scan)` otherwise.
    pub fn binding_access(&self, bindings: usize) -> Vec<String> {
        match self {
            AccessDecision::Batched(plan) => plan.bindings.iter().map(|b| b.access()).collect(),
            AccessDecision::Interpreter { .. } => {
                vec!["interpreter(nfa-scan)".to_owned(); bindings]
            }
        }
    }

    /// The SSD050 fallback reason, when the interpreter was kept.
    pub fn fallback_reason(&self) -> Option<&str> {
        match self {
            AccessDecision::Batched(_) => None,
            AccessDecision::Interpreter { reason } => Some(reason),
        }
    }
}

/// Fields of the `cost.actual` instant: the run's actual fuel, memory,
/// and result cardinality, with the static estimate's interval bounds
/// alongside when an estimate is available — so one event shows whether
/// the envelope bracketed reality.
fn cost_actual_fields(
    estimate: Option<&CostAnalysis>,
    guard: &Guard,
    cardinality: u64,
) -> Vec<(&'static str, trace::FieldValue)> {
    let mut fields: Vec<(&'static str, trace::FieldValue)> = vec![
        ("fuel_actual", guard.steps_used().into()),
        ("mem_actual", guard.memory_used().into()),
        ("cardinality_actual", cardinality.into()),
    ];
    if let Some(est) = estimate {
        fields.push(("fuel_lo", est.envelope.fuel.lo.into()));
        fields.push(("fuel_hi", est.envelope.fuel.hi.to_string().into()));
        fields.push(("mem_lo", est.envelope.memory.lo.into()));
        fields.push(("mem_hi", est.envelope.memory.hi.to_string().into()));
        fields.push(("cardinality_lo", est.envelope.cardinality.lo.into()));
        fields.push((
            "cardinality_hi",
            est.envelope.cardinality.hi.to_string().into(),
        ));
    }
    fields
}

/// Summary statistics of a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    pub nodes: usize,
    pub edges: usize,
    pub symbols: usize,
    pub cyclic: bool,
}

impl std::fmt::Display for DbStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} symbols{}",
            self.nodes,
            self.edges,
            self.symbols,
            if self.cyclic { ", cyclic" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new(ssd_data::movies::figure1())
    }

    #[test]
    fn facade_query() {
        let db = db();
        let r = db.query("select T from db.Entry.%.Title T").unwrap();
        assert_eq!(r.graph().out_degree(r.graph().root()), 3);
    }

    #[test]
    fn optimized_query_agrees() {
        let db = db();
        let a = db.query("select T from db.Entry.Movie.Title T").unwrap();
        let b = db
            .query_optimized("select T from db.Entry.Movie.Title T")
            .unwrap();
        assert!(a.bisimilar_to(&b));
    }

    #[test]
    fn browse_queries() {
        let db = db();
        assert_eq!(db.find_string("Casablanca").len(), 1);
        // figure1's only ints are the guest indices 1 and 2.
        assert_eq!(db.ints_greater(0).len(), 2);
        assert_eq!(db.ints_greater(2).len(), 0);
        assert!(!db.attrs_with_prefix("Act").is_empty());
    }

    #[test]
    fn datalog_reachability() {
        let db = db();
        let eval = db
            .datalog(
                "reach(X) :- root(X).\n\
                 reach(Y) :- reach(X), edge(X, _L, Y).",
            )
            .unwrap();
        assert_eq!(eval.count("reach"), db.stats().nodes);
    }

    #[test]
    fn estimate_and_admit() {
        let db = db();
        let a = db
            .estimate_query("select T from db.Entry.Movie.Title T")
            .unwrap();
        assert!(a.envelope.fuel.is_bounded(), "{:?}", a.envelope);
        // A generous budget admits it; a one-step budget cannot.
        assert!(Budget::unlimited()
            .max_steps(1_000_000_000)
            .admit(&a.envelope)
            .is_ok());
        let rejected = Budget::unlimited().max_steps(1).admit(&a.envelope);
        assert_eq!(rejected.unwrap_err().code, diag::Code::CostExceedsBudget);

        let d = db
            .estimate_datalog(
                "reach(X) :- root(X).\n\
                 reach(Y) :- reach(X), edge(X, _L, Y).",
            )
            .unwrap();
        assert!(d.envelope.fuel.is_bounded(), "{:?}", d.envelope);
        assert!(d
            .diagnostics
            .iter()
            .any(|x| x.code == diag::Code::UnboundedCost));
    }

    #[test]
    fn chunked_results_cover_the_full_literal() {
        let db = db();
        let r = db.query("select T from db.Entry.%.Title T").unwrap();
        let chunks: Vec<String> = r.chunks(2).collect();
        // 3 titles in chunks of 2 -> sizes [2, 1].
        assert_eq!(chunks.len(), 2);
        // Each chunk is a standalone literal, and re-assembling every
        // chunk's roots reproduces the full result extensionally.
        let mut merged = ssd_graph::Graph::new();
        for c in &chunks {
            let part = Database::from_literal(c).unwrap();
            let root = merged.root();
            for e in part.graph().edges(part.graph().root()).to_vec() {
                let sub = ssd_graph::ops::copy_subgraph(part.graph(), e.to, &mut merged);
                let lbl = ssd_graph::ops::translate_label(part.graph(), &e.label, &merged);
                merged.add_edge(root, lbl, sub);
            }
        }
        assert!(ssd_graph::bisim::graphs_bisimilar(r.graph(), &merged));
        // Empty results produce zero chunks.
        let empty = db.query("select T from db.Nope T").unwrap();
        assert_eq!(empty.chunks(4).count(), 0);
    }

    #[test]
    fn restructure_and_schema() {
        let db = db();
        let fixed = db.relabel(Pred::Symbol("TV_Show".into()), "Show");
        assert!(fixed.to_literal().contains("Show"));
        let schema = db.extract_schema();
        assert!(db.conforms_to(&schema));
    }

    #[test]
    fn stats_and_dot() {
        let db = db();
        let s = db.stats();
        assert!(s.cyclic);
        assert!(s.to_string().contains("cyclic"));
        assert!(db.to_dot().starts_with("digraph"));
    }

    #[test]
    fn literal_round_trip() {
        let db = db();
        let text = db.to_literal();
        let db2 = Database::from_literal(&text).unwrap();
        assert!(ssd_graph::bisim::graphs_bisimilar(db.graph(), db2.graph()));
    }

    #[test]
    fn from_literal_error() {
        assert!(Database::from_literal("{oops").is_err());
    }
}
