//! E13 — ablations of the design choices DESIGN.md §3 calls out.
//!
//! * **Bisimulation algorithm**: partition refinement (the workhorse) vs
//!   the naive greatest-fixpoint oracle — the reason the subtle algorithm
//!   earns its complexity.
//! * **DFA vs NFA** word acceptance for RPEs with overlapping
//!   alternatives — the determinisation trade-off.
//! * **Serialization**: literal-syntax round trip vs JSON round trip —
//!   the cost of cycle/sharing support.
//! * **Summaries**: strong DataGuide vs 1-index construction on regular
//!   (movie) and ragged (ACeDB) data — the determinism-vs-size trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::graph::bisim::{bisimilarity_classes, naive_bisimilar};
use semistructured::graph::json;
use semistructured::graph::literal;
use semistructured::query::{Nfa, Rpe};
use semistructured::schema::OneIndex;
use semistructured::{DataGuide, Label};
use ssd_bench::movies;
use ssd_data::acedb::{acedb, AcedbConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_ablation");
    group.sample_size(20);

    // Bisimulation: partition refinement vs naive, small sizes only (the
    // naive algorithm is O(n^2 m)).
    for &size in &[5usize, 15] {
        let g = movies(size);
        group.bench_with_input(BenchmarkId::new("bisim_partition", size), &g, |b, g| {
            b.iter(|| bisimilarity_classes(g))
        });
        group.bench_with_input(BenchmarkId::new("bisim_naive", size), &g, |b, g| {
            b.iter(|| naive_bisimilar(g, g.root(), g, g.root()))
        });
    }

    // DFA vs NFA acceptance on a word set.
    let g = movies(100);
    let rpe = Rpe::seq(vec![
        Rpe::alt(vec![Rpe::symbol("Entry"), Rpe::symbol("Movie")]).star(),
        Rpe::alt(vec![
            Rpe::symbol("Title"),
            Rpe::seq(vec![Rpe::symbol("Cast"), Rpe::symbol("Actors")]),
        ]),
    ]);
    let nfa = Nfa::compile(&rpe);
    let dfa = nfa.to_dfa();
    let words: Vec<Vec<Label>> = {
        let syms = g.symbols();
        let alphabet = ["Entry", "Movie", "Title", "Cast", "Actors"];
        let mut out = Vec::new();
        for a in &alphabet {
            for b_ in &alphabet {
                for c_ in &alphabet {
                    out.push(vec![
                        Label::symbol(syms, a),
                        Label::symbol(syms, b_),
                        Label::symbol(syms, c_),
                    ]);
                }
            }
        }
        out
    };
    group.bench_function("accept_nfa_125_words", |b| {
        b.iter(|| words.iter().filter(|w| nfa.accepts(w, g.symbols())).count())
    });
    group.bench_function("accept_dfa_125_words", |b| {
        b.iter(|| words.iter().filter(|w| dfa.accepts(w, g.symbols())).count())
    });

    // Serialization round trips (acyclic fragment for JSON fairness).
    let tree = acedb(&AcedbConfig {
        objects: 40,
        max_depth: 6,
        branching: 3,
        seed: 4,
    });
    group.bench_function("roundtrip_literal", |b| {
        b.iter(|| {
            let text = literal::write_graph(&tree);
            literal::parse_graph(&text).unwrap()
        })
    });
    group.bench_function("roundtrip_json", |b| {
        b.iter(|| {
            let text = json::graph_to_json(&tree).unwrap();
            json::from_json(&text).unwrap()
        })
    });

    // Summary structures on regular vs ragged data.
    let regular = movies(100);
    group.bench_function("summary_dataguide_regular", |b| {
        b.iter(|| DataGuide::build(&regular))
    });
    group.bench_function("summary_oneindex_regular", |b| {
        b.iter(|| OneIndex::build(&regular))
    });
    group.bench_function("summary_dataguide_ragged", |b| {
        b.iter(|| DataGuide::build(&tree))
    });
    group.bench_function("summary_oneindex_ragged", |b| {
        b.iter(|| OneIndex::build(&tree))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
