//! E1 / Figure 1 — construct and exercise the paper's one figure.
//!
//! Measures: building the exact Figure-1 instance; serializing it;
//! checking bisimilarity of two independent constructions (the extensional
//! equality §2 needs); conformance against the hand-written schema.

use criterion::{criterion_group, criterion_main, Criterion};
use semistructured::graph::bisim::graphs_bisimilar;
use semistructured::graph::literal::{parse_graph, write_graph};
use ssd_data::movies::figure1;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_figure1");
    group.bench_function("construct", |b| b.iter(figure1));
    let g = figure1();
    group.bench_function("serialize", |b| b.iter(|| write_graph(&g)));
    let text = write_graph(&g);
    group.bench_function("parse", |b| b.iter(|| parse_graph(&text).unwrap()));
    let g2 = figure1();
    group.bench_function("bisimilarity_check", |b| {
        b.iter(|| graphs_bisimilar(&g, &g2))
    });
    let schema = ssd_schema::figure1_schema();
    group.bench_function("schema_conformance", |b| {
        b.iter(|| ssd_schema::conforms(&g, &schema))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
