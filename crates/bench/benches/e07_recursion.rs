//! E7 — structural recursion (gext): total, linear-time graph
//! transformation, including on cyclic inputs.
//!
//! Expected shape: cost linear in input edges, independent of unfolding
//! depth (a cyclic graph whose unfolding is infinite transforms in finite,
//! small time — the point of the ε-edge technique of \[10\]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::recursion::{gext, EdgeTemplate, Transducer};
use semistructured::Pred;
use ssd_bench::{movies, MOVIE_SIZES};
use ssd_data::movies::{movie_database, MovieDbConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_recursion");
    let identity = Transducer::new();
    let relabel = Transducer::new().case(
        Pred::Symbol("Actors".into()),
        EdgeTemplate::relabel_symbol("Performer"),
    );
    let delete = Transducer::new().case(Pred::Symbol("Cast".into()), EdgeTemplate::Delete);
    let collapse = Transducer::new().case(Pred::Symbol("Credit".into()), EdgeTemplate::Collapse);
    for &size in MOVIE_SIZES {
        let g = movies(size);
        for (name, t) in [
            ("identity", &identity),
            ("relabel", &relabel),
            ("delete", &delete),
            ("collapse", &collapse),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &g, |b, g| {
                b.iter(|| gext(g, g.root(), t))
            });
        }
    }
    // Cyclic input: dense reference cycles; identity transform must stay
    // linear though the unfolding is infinite.
    let cyclic = movie_database(&MovieDbConfig {
        reference_prob: 0.8,
        ..MovieDbConfig::sized(100)
    });
    group.bench_function("identity_on_cyclic_100", |b| {
        b.iter(|| gext(&cyclic, cyclic.root(), &identity))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
