//! E14 — guard overhead: budget checking must cost ≤5% on the E3 select
//! and E6 datalog workloads.
//!
//! Three variants per workload: no guard at all (the pre-guard API),
//! an inactive guard (no limits configured — the one-branch fast path),
//! and an active guard with limits far above what the workload uses
//! (the full checking path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::{evaluate_select, parse_query};
use semistructured::triples::datalog::{evaluate, evaluate_with, parse_program};
use semistructured::triples::TripleStore;
use semistructured::{Budget, EvalOptions, Guard};
use ssd_bench::{movies, web};

const JOIN: &str = r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
                      where exists M.Cast"#;
const TC: &str = "path(X, Y) :- edge(X, _L, Y).\n\
                  path(X, Y) :- edge(X, _L, Z), path(Z, Y).";

/// A budget that never trips on these workloads but keeps every check arm.
fn roomy() -> Budget {
    Budget::unlimited()
        .max_steps(u64::MAX / 2)
        .max_memory_mb(1 << 20)
        .max_depth(1 << 20)
        .timeout(std::time::Duration::from_secs(3600))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_guard");

    // E3 select workload.
    let g = movies(1000);
    let q = parse_query(JOIN).unwrap();
    group.bench_with_input(BenchmarkId::new("select_unguarded", 1000), &g, |b, g| {
        b.iter(|| evaluate_select(g, &q, &EvalOptions::default()).unwrap())
    });
    let inactive = Guard::unlimited();
    group.bench_with_input(
        BenchmarkId::new("select_inactive_guard", 1000),
        &g,
        |b, g| {
            b.iter(|| {
                evaluate_select(g, &q, &EvalOptions::default().with_guard(&inactive)).unwrap()
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("select_active_guard", 1000), &g, |b, g| {
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_select(g, &q, &EvalOptions::default().with_guard(&guard)).unwrap()
        })
    });

    // E6 datalog workload.
    group.sample_size(10);
    let g = web(40);
    let store = TripleStore::from_graph(&g);
    let program = parse_program(TC, g.symbols()).unwrap();
    group.bench_with_input(BenchmarkId::new("tc_unguarded", 40), &store, |b, s| {
        b.iter(|| evaluate(&program, s).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("tc_inactive_guard", 40), &store, |b, s| {
        b.iter(|| evaluate_with(&program, s, &inactive).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("tc_active_guard", 40), &store, |b, s| {
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_with(&program, s, &guard).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
