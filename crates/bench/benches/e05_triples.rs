//! E5 — the relational strategy (§3): the same queries over the triple
//! store / relational algebra vs native graph traversal.
//!
//! Expected shape: the relational route wins on bulk label selection (one
//! index probe) but loses on deep path navigation (each step is a join),
//! which is why \[19\] translates only a fragment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::{eval_rpe, Rpe};
use semistructured::triples::{Datum, Relation, TripleStore};
use semistructured::Label;
use ssd_bench::{movies, MOVIE_SIZES};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_triples");
    for &size in MOVIE_SIZES {
        let g = movies(size);
        let store = TripleStore::from_graph(&g);
        let edge_rel = Relation::edge_relation(&store);
        let movie = Label::symbol(g.symbols(), "Movie");

        group.bench_with_input(BenchmarkId::new("shred", size), &g, |b, g| {
            b.iter(|| TripleStore::from_graph(g))
        });
        // Bulk label selection.
        group.bench_with_input(
            BenchmarkId::new("label_select_relational", size),
            &edge_rel,
            |b, rel| {
                b.iter(|| {
                    rel.select_eq("label", &Datum::Label(movie.clone()))
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("label_select_store_index", size),
            &store,
            |b, s| b.iter(|| s.with_label(&movie).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("label_select_traversal", size),
            &g,
            |b, g| {
                b.iter(|| {
                    eval_rpe(
                        g,
                        g.root(),
                        &Rpe::seq(vec![Rpe::symbol("Entry"), Rpe::symbol("Movie")]),
                    )
                })
            },
        );
        // Deep path: 3 steps as joins vs traversal.
        group.bench_with_input(
            BenchmarkId::new("path3_relational_joins", size),
            &edge_rel,
            |b, rel| {
                b.iter(|| {
                    let entry = Label::symbol(g.symbols(), "Entry");
                    let movie = Label::symbol(g.symbols(), "Movie");
                    let title = Label::symbol(g.symbols(), "Title");
                    let e1 = rel
                        .select_eq("label", &Datum::Label(entry))
                        .unwrap()
                        .project(&["src", "dst"])
                        .unwrap()
                        .rename("dst", "n1")
                        .unwrap();
                    let e2 = rel
                        .select_eq("label", &Datum::Label(movie))
                        .unwrap()
                        .project(&["src", "dst"])
                        .unwrap()
                        .rename("src", "n1")
                        .unwrap()
                        .rename("dst", "n2")
                        .unwrap();
                    let e3 = rel
                        .select_eq("label", &Datum::Label(title))
                        .unwrap()
                        .project(&["src", "dst"])
                        .unwrap()
                        .rename("src", "n2")
                        .unwrap()
                        .rename("dst", "n3")
                        .unwrap();
                    e1.natural_join(&e2)
                        .natural_join(&e3)
                        .project(&["n3"])
                        .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("path3_traversal", size), &g, |b, g| {
            b.iter(|| {
                eval_rpe(
                    g,
                    g.root(),
                    &Rpe::seq(vec![
                        Rpe::symbol("Entry"),
                        Rpe::symbol("Movie"),
                        Rpe::symbol("Title"),
                    ]),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
