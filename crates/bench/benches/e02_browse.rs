//! E2 — the §1.3 browsing queries: full scan vs index, size sweep.
//!
//! Expected shape: index wins by a widening factor as the database grows
//! (scan is O(edges); the index answers from the value btree / symbol
//! table). The *locate* phase is measured; path annotation (common to
//! both) is benchmarked once as `annotate`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::graph::index::GraphIndex;
use semistructured::query::browse;
use ssd_bench::{movies, MOVIE_SIZES};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_browse");
    for &size in MOVIE_SIZES {
        let g = movies(size);
        let idx = GraphIndex::build(&g);
        group.bench_with_input(BenchmarkId::new("q1_string_scan", size), &g, |b, g| {
            b.iter(|| browse::locate_string_scan(g, "Actor 3"))
        });
        group.bench_with_input(BenchmarkId::new("q1_string_index", size), &g, |b, g| {
            b.iter(|| browse::locate_string_indexed(g, &idx, "Actor 3"))
        });
        group.bench_with_input(BenchmarkId::new("q2_ints_scan", size), &g, |b, g| {
            b.iter(|| browse::locate_ints_greater_scan(g, 1 << 16))
        });
        group.bench_with_input(BenchmarkId::new("q2_ints_index", size), &g, |b, g| {
            b.iter(|| browse::locate_ints_greater_indexed(g, &idx, 1 << 16))
        });
        group.bench_with_input(BenchmarkId::new("q3_prefix_scan", size), &g, |b, g| {
            b.iter(|| browse::locate_attrs_prefix_scan(g, "Act"))
        });
        group.bench_with_input(BenchmarkId::new("q3_prefix_index", size), &g, |b, g| {
            b.iter(|| browse::locate_attrs_prefix_indexed(g, &idx, "Act"))
        });
        group.bench_with_input(BenchmarkId::new("index_build", size), &g, |b, g| {
            b.iter(|| GraphIndex::build(g))
        });
        group.bench_with_input(BenchmarkId::new("q1_with_paths", size), &g, |b, g| {
            b.iter(|| browse::find_string_indexed(g, &idx, "Actor 3"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
