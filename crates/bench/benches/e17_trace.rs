//! E17 — tracing overhead: with tracing disabled (`tracer = None`) the
//! traced entry points must cost ≤2% over the untraced baselines on the
//! E3 select and E6 datalog workloads; with tracing enabled into a
//! `RingSink` (the `--trace` path) or a `JsonlSink` writing to a sink
//! that discards bytes (the `--trace-out` path, minus the filesystem),
//! the overhead must stay ≤10%.
//!
//! Four variants per workload: baseline (untraced API), disabled
//! (traced API, `None` tracer), ring (SharedRing sink), jsonl
//! (JsonlSink into `io::sink()`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::{evaluate_select, parse_query};
use semistructured::trace::{JsonlSink, SharedRing, Tracer};
use semistructured::triples::datalog::{evaluate_traced, evaluate_with, parse_program};
use semistructured::triples::TripleStore;
use semistructured::{Budget, EvalOptions};
use ssd_bench::{movies, web};

const JOIN: &str = r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
                      where exists M.Cast"#;
const TC: &str = "path(X, Y) :- edge(X, _L, Y).\n\
                  path(X, Y) :- edge(X, _L, Z), path(Z, Y).";

/// An active budget that never trips on these workloads. Tracing reads
/// fuel/memory deltas off the guard, so every variant uses the same
/// active guard — the comparison isolates the tracer, not the guard.
fn roomy() -> Budget {
    Budget::unlimited()
        .max_steps(u64::MAX / 2)
        .max_memory_mb(1 << 20)
        .max_depth(1 << 20)
        .timeout(std::time::Duration::from_secs(3600))
}

fn ring_tracer() -> (Tracer, SharedRing) {
    let ring = SharedRing::new(semistructured::trace::DEFAULT_RING_CAP);
    let tracer = Tracer::with_sink(Box::new(ring.clone()));
    (tracer, ring)
}

fn jsonl_tracer() -> Tracer {
    Tracer::with_sink(Box::new(JsonlSink::new(std::io::sink())))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_trace");

    // E3 select workload.
    let g = movies(1000);
    let q = parse_query(JOIN).unwrap();
    group.bench_with_input(BenchmarkId::new("select_baseline", 1000), &g, |b, g| {
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_select(g, &q, &EvalOptions::default().with_guard(&guard)).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("select_disabled", 1000), &g, |b, g| {
        b.iter(|| {
            let guard = roomy().guard();
            // Same code path the tracer hooks run through, `None` tracer:
            // every hook must collapse to one branch.
            evaluate_select(g, &q, &EvalOptions::default().with_guard(&guard)).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("select_ring", 1000), &g, |b, g| {
        let (tracer, ring) = ring_tracer();
        b.iter(|| {
            let guard = roomy().guard();
            let out = evaluate_select(
                g,
                &q,
                &EvalOptions::default()
                    .with_guard(&guard)
                    .with_tracer(&tracer),
            )
            .unwrap();
            ring.take();
            out
        })
    });
    group.bench_with_input(BenchmarkId::new("select_jsonl", 1000), &g, |b, g| {
        let tracer = jsonl_tracer();
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_select(
                g,
                &q,
                &EvalOptions::default()
                    .with_guard(&guard)
                    .with_tracer(&tracer),
            )
            .unwrap()
        })
    });

    // E6 datalog workload.
    group.sample_size(10);
    let g = web(40);
    let store = TripleStore::from_graph(&g);
    let program = parse_program(TC, g.symbols()).unwrap();
    group.bench_with_input(BenchmarkId::new("tc_baseline", 40), &store, |b, s| {
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_with(&program, s, &guard).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("tc_disabled", 40), &store, |b, s| {
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_traced(&program, s, &guard, None).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("tc_ring", 40), &store, |b, s| {
        let (tracer, ring) = ring_tracer();
        b.iter(|| {
            let guard = roomy().guard();
            let out = evaluate_traced(&program, s, &guard, Some(&tracer)).unwrap();
            ring.take();
            out
        })
    });
    group.bench_with_input(BenchmarkId::new("tc_jsonl", 40), &store, |b, s| {
        let tracer = jsonl_tracer();
        b.iter(|| {
            let guard = roomy().guard();
            evaluate_traced(&program, s, &guard, Some(&tracer)).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
