//! E8 — the relational fragment: SPJRU through the graph engine vs the
//! native row-set evaluator, plus encode/decode overheads.
//!
//! Expected shape: the graph route pays a constant-factor overhead (tuples
//! become subgraphs, joins become nested RPE loops) but returns identical
//! results — the expressiveness claim of §3 with its price tag.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::relational_fragment as rf;
use semistructured::Value;
use ssd_data::relational::{orders_and_customers, wide_relation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_relational");
    group.sample_size(20);
    for rows in [50, 200] {
        let rel = wide_relation(rows, 3, 10, 2);
        let g = rf::database_of(std::slice::from_ref(&rel));
        group.bench_with_input(BenchmarkId::new("encode", rows), &rel, |b, rel| {
            b.iter(|| rf::database_of(std::slice::from_ref(rel)))
        });
        group.bench_with_input(BenchmarkId::new("select_graph", rows), &g, |b, g| {
            b.iter(|| rf::select_eq(g, &rel, "c1", &Value::Int(3)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("select_native", rows), &rel, |b, rel| {
            b.iter(|| rf::native_select_eq(rel, "c1", &Value::Int(3)))
        });
        group.bench_with_input(BenchmarkId::new("project_graph", rows), &g, |b, g| {
            b.iter(|| rf::project(g, &rel, &["c1", "c2"]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("project_native", rows), &rel, |b, rel| {
            b.iter(|| rf::native_project(rel, &["c1", "c2"]))
        });
    }
    for orders in [30, 100] {
        let (ord, cust) = orders_and_customers(orders, 10, 5);
        let g = rf::database_of(&[ord.clone(), cust.clone()]);
        group.bench_with_input(BenchmarkId::new("join_graph", orders), &g, |b, g| {
            b.iter(|| rf::join(g, &ord, &cust, "customer", "name").unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("join_native", orders),
            &(ord.clone(), cust.clone()),
            |b, (o, c)| b.iter(|| rf::native_join(o, c, "customer", "name")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
