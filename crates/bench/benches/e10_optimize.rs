//! E10 — optimizations (§4): selection pushdown, RPE simplification, and
//! DataGuide pruning vs the unoptimized evaluator, across selectivities.
//!
//! Expected shape: pushdown wins big when the early conjunct is selective
//! (kills assignments before later bindings enumerate); guide pruning
//! turns provably-empty queries into O(guide) no-ops; on non-selective
//! queries the optimized path ties the baseline (overhead is noise).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::{evaluate_select, parse_query};
use semistructured::{DataGuide, EvalOptions};
use ssd_bench::{movies, MOVIE_SIZES};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_optimize");
    // Selective early filter (Year < 1935 keeps ~7% of movies).
    let selective = parse_query(
        r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T, M.Cast.%* X
           where Y < 1935"#,
    )
    .unwrap();
    // Non-selective (Year < 2100 keeps all).
    let unselective = parse_query(
        r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T, M.Cast.%* X
           where Y < 2100"#,
    )
    .unwrap();
    // Provably empty path.
    let empty = parse_query("select T from db.NoSuchThing.%* T").unwrap();
    for &size in MOVIE_SIZES {
        let g = movies(size);
        let guide = DataGuide::build(&g);
        for (name, q) in [
            ("selective", &selective),
            ("unselective", &unselective),
            ("empty", &empty),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_baseline"), size),
                &g,
                |b, g| b.iter(|| evaluate_select(g, q, &EvalOptions::default()).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_optimized"), size),
                &g,
                |b, g| {
                    b.iter(|| evaluate_select(g, q, &EvalOptions::optimized(Some(&guide))).unwrap())
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("guide_build", size), &g, |b, g| {
            b.iter(|| DataGuide::build(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
