//! E9 — deep restructuring (§3): the Bacall repair, collapse,
//! short-circuit, and interchange at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::restructure;
use semistructured::{Pred, Value};
use ssd_bench::{movies, MOVIE_SIZES};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_restructure");
    for &size in MOVIE_SIZES {
        let g = movies(size);
        group.bench_with_input(BenchmarkId::new("relabel_value", size), &g, |b, g| {
            b.iter(|| {
                restructure::relabel_edges_to_value(
                    g,
                    Pred::ValueEq(Value::Str("Actor 1".into())),
                    "Renamed 1",
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("collapse_credit", size), &g, |b, g| {
            b.iter(|| restructure::collapse_edges(g, Pred::Symbol("Credit".into())))
        });
        group.bench_with_input(BenchmarkId::new("delete_boxoffice", size), &g, |b, g| {
            b.iter(|| restructure::delete_edges(g, Pred::Symbol("BoxOffice".into())))
        });
        group.bench_with_input(BenchmarkId::new("shortcut_cast", size), &g, |b, g| {
            b.iter(|| {
                restructure::shortcut(
                    g,
                    &Pred::Symbol("Cast".into()),
                    &Pred::Symbol("Actors".into()),
                    "CastMember",
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("interchange", size), &g, |b, g| {
            b.iter(|| {
                restructure::interchange(
                    g,
                    &Pred::Symbol("Cast".into()),
                    &Pred::Symbol("Actors".into()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
