//! E11 — query decomposition over sites (\[35\]): sequential vs k-way
//! parallel evaluation on a partition-friendly clustered graph.
//!
//! Expected shape: near-linear speedup while sites ≫ cores and cross
//! edges are few (block partition of the cluster chain); hash partitioning
//! destroys locality and with it most of the win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::decompose::{eval_decomposed_nfa, Partition};
use semistructured::query::rpe::eval::eval_nfa;
use semistructured::query::{Nfa, Rpe, Step};
use ssd_bench::clusters;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_parallel");
    group.sample_size(10);
    let g = clusters(16, 400);
    let rpe = Rpe::seq(vec![
        Rpe::step(Step::wildcard()).star(),
        Rpe::symbol("stop"),
    ]);
    let nfa = Nfa::compile(&rpe);
    group.bench_function("sequential", |b| b.iter(|| eval_nfa(&g, g.root(), &nfa)));
    for k in [2, 4, 8] {
        let blocks = Partition::index_blocks(&g, k);
        group.bench_with_input(BenchmarkId::new("cluster_blocks", k), &blocks, |b, part| {
            b.iter(|| eval_decomposed_nfa(&g, &nfa, part))
        });
        let hash = Partition::hash(&g, k);
        group.bench_with_input(BenchmarkId::new("hash", k), &hash, |b, part| {
            b.iter(|| eval_decomposed_nfa(&g, &nfa, part))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
