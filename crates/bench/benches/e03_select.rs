//! E3 — the select-from-where language: parse + evaluate, size sweep.
//!
//! Three query shapes: a fixed path, a multi-binding join tying paths
//! together through a shared variable (§3's motivation for variables),
//! and a label-variable query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::{evaluate_select, parse_query};
use semistructured::EvalOptions;
use ssd_bench::{movies, MOVIE_SIZES};

const FIXED: &str = "select T from db.Entry.Movie.Title T";
const JOIN: &str = r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
                      where exists M.Cast"#;
const LABEL_VAR: &str = r#"select L from db.Entry.Movie.^L X where L like "Dir%""#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_select");
    group.bench_function("parse_only", |b| b.iter(|| parse_query(JOIN).unwrap()));
    for &size in MOVIE_SIZES {
        let g = movies(size);
        for (name, text) in [
            ("fixed_path", FIXED),
            ("join", JOIN),
            ("label_var", LABEL_VAR),
        ] {
            let q = parse_query(text).unwrap();
            group.bench_with_input(BenchmarkId::new(name, size), &g, |b, g| {
                b.iter(|| evaluate_select(g, &q, &EvalOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
