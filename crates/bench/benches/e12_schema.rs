//! E12 — schemas (§5): simulation conformance, schema extraction,
//! DataGuide construction, and schema-pruned vs unpruned path queries
//! (\[20\]).
//!
//! Expected shape: conformance and extraction are near-linear; pruning an
//! impossible path through the schema automaton is orders cheaper than
//! discovering emptiness by traversal; DataGuide size stays modest on the
//! regular movie data but grows on ragged ACeDB trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::optimizer::schema_allows;
use semistructured::query::{eval_rpe, Rpe};
use semistructured::schema::OneIndex;
use semistructured::DataGuide;
use ssd_bench::{movies, MOVIE_SIZES};
use ssd_data::acedb::{acedb, AcedbConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_schema");
    group.sample_size(20);
    for &size in MOVIE_SIZES {
        let g = movies(size);
        let schema = ssd_schema::extract_schema_default(&g);
        group.bench_with_input(BenchmarkId::new("extract_schema", size), &g, |b, g| {
            b.iter(|| ssd_schema::extract_schema_default(g))
        });
        group.bench_with_input(BenchmarkId::new("conformance", size), &g, |b, g| {
            b.iter(|| ssd_schema::conforms(g, &schema))
        });
        group.bench_with_input(BenchmarkId::new("dataguide_build", size), &g, |b, g| {
            b.iter(|| DataGuide::build(g))
        });
        group.bench_with_input(BenchmarkId::new("oneindex_build", size), &g, |b, g| {
            b.iter(|| OneIndex::build(g))
        });
        // Emptiness of an impossible deep path: schema refutation vs
        // full traversal.
        let impossible = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::symbol("Nonexistent"),
            Rpe::symbol("Title"),
        ]);
        group.bench_with_input(
            BenchmarkId::new("emptiness_by_schema", size),
            &schema,
            |b, s| b.iter(|| schema_allows(s, &impossible)),
        );
        group.bench_with_input(
            BenchmarkId::new("emptiness_by_traversal", size),
            &g,
            |b, g| b.iter(|| eval_rpe(g, g.root(), &impossible).is_empty()),
        );
    }
    // Ragged trees stress the guide.
    let bio = acedb(&AcedbConfig {
        objects: 60,
        max_depth: 8,
        branching: 3,
        seed: 11,
    });
    group.bench_function("dataguide_acedb", |b| b.iter(|| DataGuide::build(&bio)));
    group.bench_function("oneindex_acedb", |b| b.iter(|| OneIndex::build(&bio)));
    group.bench_function("extract_schema_acedb", |b| {
        b.iter(|| ssd_schema::extract_schema_default(&bio))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
