//! E16 — serving: the per-job cost of going through the
//! admission-controlled server (estimate → admit → dispatch → stream →
//! refund) versus calling the engine directly, and the cost of a
//! rejection (which must not touch the engine at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::{evaluate_select, parse_query};
use semistructured::{Database, EvalOptions};
use ssd_bench::movies;
use ssd_serve::{JobKind, ServeConfig, Server, SessionQuota};
use std::sync::Arc;

const PATH3: &str = "select T from db.Entry.Movie.Title T";

fn roomy() -> SessionQuota {
    SessionQuota {
        fuel: None,
        memory: None,
        max_concurrent: 4,
        job_fuel: 1 << 40,
        job_memory: 1 << 32,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_serve");
    let db = Arc::new(Database::new(movies(100)));

    // Bare-engine baseline for the same workload.
    let q = parse_query(PATH3).unwrap();
    group.bench_with_input(BenchmarkId::new("engine_path3", 100), &db, |b, db| {
        b.iter(|| evaluate_select(db.graph(), &q, &EvalOptions::default()).unwrap())
    });

    // Through the server: submit → admit → dispatch → stream → wait.
    let server = Server::start(Arc::clone(&db), ServeConfig::default());
    let sess = server.open_session(roomy());
    group.bench_with_input(BenchmarkId::new("served_path3", 100), &(), |b, ()| {
        b.iter(|| {
            let outcome = sess.submit(JobKind::Query, PATH3).unwrap().wait();
            assert!(outcome.error.is_none(), "{:?}", outcome.error);
            outcome.chunks.len()
        })
    });

    // Rejection path: a 1-fuel per-job ceiling fails admission before
    // any engine work — this is the "rejection is free" half of E16.
    let tight = server.open_session(SessionQuota {
        job_fuel: 1,
        ..roomy()
    });
    group.bench_with_input(BenchmarkId::new("rejected_submit", 100), &(), |b, ()| {
        b.iter(|| tight.submit(JobKind::Query, PATH3).is_err())
    });
    let tight_books = tight.counters().expect("session counters");
    assert_eq!(tight_books.fuel_spent, 0, "rejections must cost no fuel");
    tight.close();
    sess.close();

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
