//! E4 — regular path expressions: NFA product traversal, the
//! Allen/Casablanca negated-step query, wildcard-star, and DFA vs NFA.
//!
//! Expected shape: evaluation cost tracks the product size — wildcard-star
//! visits every (node, state) pair, the constrained (!Movie)* query much
//! less; DFA evaluation beats NFA when the automaton has overlapping
//! alternatives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::query::rpe::eval::{eval_nfa, eval_nfa_with_stats};
use semistructured::query::{Nfa, Rpe, Step};
use ssd_bench::{movies, MOVIE_SIZES};

fn allen_query() -> Rpe {
    Rpe::seq(vec![
        Rpe::symbol("Entry"),
        Rpe::symbol("Movie"),
        Rpe::step(Step::not_symbol("Movie")).star(),
        Rpe::step(Step::value("Actor 1")),
    ])
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_rpe");
    let exprs: Vec<(&str, Rpe)> = vec![
        (
            "fixed_path",
            Rpe::seq(vec![
                Rpe::symbol("Entry"),
                Rpe::symbol("Movie"),
                Rpe::symbol("Title"),
            ]),
        ),
        ("negated_star", allen_query()),
        ("wildcard_star", Rpe::step(Step::wildcard()).star()),
        (
            "alternation",
            Rpe::seq(vec![
                Rpe::step(Step::wildcard()).star(),
                Rpe::symbol("Cast"),
                Rpe::alt(vec![
                    Rpe::symbol("Actors"),
                    Rpe::seq(vec![Rpe::symbol("Credit"), Rpe::symbol("Actors")]),
                ]),
            ]),
        ),
    ];
    group.bench_function("compile_nfa", |b| b.iter(|| Nfa::compile(&allen_query())));
    for &size in MOVIE_SIZES {
        let g = movies(size);
        for (name, rpe) in &exprs {
            let nfa = Nfa::compile(rpe);
            group.bench_with_input(BenchmarkId::new(*name, size), &g, |b, g| {
                b.iter(|| eval_nfa(g, g.root(), &nfa))
            });
        }
        // Sanity: both queries terminate and visit a bounded product.
        let (_, narrow) = eval_nfa_with_stats(&g, g.root(), &Nfa::compile(&exprs[1].1));
        let (_, broad) = eval_nfa_with_stats(&g, g.root(), &Nfa::compile(&exprs[2].1));
        assert!(narrow > 0 && broad > 0);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
