//! E6 — graph datalog: semi-naive vs naive evaluation of transitive
//! closure and same-generation, web-graph sweep.
//!
//! Expected shape: semi-naive beats naive by a factor growing with the
//! number of fixpoint iterations (graph diameter); results are identical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semistructured::triples::datalog::{evaluate, evaluate_naive, parse_program};
use semistructured::triples::TripleStore;
use ssd_bench::web;

const TC: &str = "path(X, Y) :- edge(X, _L, Y).\n\
                  path(X, Y) :- edge(X, _L, Z), path(Z, Y).";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_datalog");
    group.sample_size(10);
    // Larger sizes are covered by the report binary; Criterion's
    // repeated sampling makes naive evaluation above ~40 pages too slow.
    for pages in [20, 40] {
        let g = web(pages);
        let store = TripleStore::from_graph(&g);
        let program = parse_program(TC, g.symbols()).unwrap();
        group.bench_with_input(BenchmarkId::new("tc_semi_naive", pages), &store, |b, s| {
            b.iter(|| evaluate(&program, s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tc_naive", pages), &store, |b, s| {
            b.iter(|| evaluate_naive(&program, s).unwrap())
        });
        let reach = parse_program(
            "reach(X) :- root(X).\n\
             reach(Y) :- reach(X), edge(X, _L, Y).",
            g.symbols(),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("reach_semi_naive", pages),
            &store,
            |b, s| b.iter(|| evaluate(&reach, s).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("reach_naive", pages), &store, |b, s| {
            b.iter(|| evaluate_naive(&reach, s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
