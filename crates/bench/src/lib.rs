//! Shared fixtures for the E1–E12 benchmark suite.
//!
//! Every experiment is indexed in DESIGN.md §4 and reported in
//! EXPERIMENTS.md. Workloads come from `ssd-data` with fixed seeds so runs
//! are reproducible.

use semistructured::{Database, Graph};
use ssd_data::movies::{movie_database, MovieDbConfig};
use ssd_data::webgraph::{clustered_graph, web_graph, WebGraphConfig};

/// Movie databases at the standard sweep sizes (entries).
pub const MOVIE_SIZES: &[usize] = &[30, 100, 300];

/// Build the standard movie database of a given entry count.
pub fn movies(entries: usize) -> Graph {
    movie_database(&MovieDbConfig::sized(entries))
}

/// Standard web graph.
pub fn web(pages: usize) -> Graph {
    web_graph(&WebGraphConfig {
        pages,
        mean_links: 4,
        skew: 0.7,
        seed: 7,
    })
}

/// Chain-of-clusters graph for the decomposition experiment.
pub fn clusters(k: usize, size: usize) -> Graph {
    clustered_graph(k, size, 3)
}

/// Facade wrapper.
pub fn movie_db(entries: usize) -> Database {
    Database::new(movies(entries))
}
